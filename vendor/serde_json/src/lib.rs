//! Workspace-local shim for the subset of the `serde_json` API this
//! repository uses: the [`Value`] tree, the [`json!`] object/array macro,
//! and [`to_string_pretty`]. Conversion into `Value` goes through the
//! [`ToJson`] trait instead of serde's `Serialize` (the build environment
//! has no crates.io access, so the real crate is unavailable).

#![allow(clippy::all)]

use std::fmt;

/// A JSON document. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Error type for serialization; the shim never actually fails, but the
/// upstream signature returns `Result`, so callers can keep their `?`/
/// `expect` handling.
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Stand-in for `Serialize`: anything the shim can turn into a [`Value`].
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

macro_rules! impl_to_json_num {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Convert any [`ToJson`] value into a [`Value`].
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json())
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no Inf/NaN; upstream errors here, the shim degrades.
        "null".to_owned()
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + STEP, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Single-line JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

/// Build a [`Value`] from JSON-shaped syntax. Supports objects, arrays,
/// `null`/`true`/`false` literals, nesting, and arbitrary `ToJson`
/// expressions as values (taken by reference, like upstream). The
/// token-munching structure follows upstream `serde_json` so multi-token
/// value expressions (`t.id`, `a + b`) parse correctly.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };

    // --- array munching: accumulate finished elements in [..] ---
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // --- object munching: key tokens accumulate in (), then value ---
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((($($key)+).to_string(), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((($($key)+).to_string(), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_objects() {
        let rows: Vec<Vec<String>> = vec![vec!["a".into(), "b".into()]];
        let v = json!({
            "id": "e1",
            "n": 3u32,
            "rows": rows,
            "flag": true,
            "missing": null,
            "list": [1, "two", false],
        });
        match &v {
            Value::Object(fields) => {
                assert_eq!(fields.len(), 6);
                assert_eq!(fields[0].0, "id");
                assert_eq!(fields[1].1, Value::Number(3.0));
            }
            other => panic!("expected object, got {other:?}"),
        }
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"rows\""));
        assert!(text.contains("\"two\""));
    }

    #[test]
    fn escaping_and_numbers() {
        let v = json!({"k": "line\n\"quote\"\t"});
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"k\":\"line\\n\\\"quote\\\"\\t\"}");
        assert_eq!(number_to_string(3.0), "3");
        assert_eq!(number_to_string(3.5), "3.5");
    }

    #[test]
    fn arrays_of_values_serialize() {
        let v: Vec<Value> = vec![json!({"a": 1}), json!({"a": 2})];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.contains("\"a\": 2"));
    }
}
