//! Workspace-local shim for the subset of the `proptest` 1.x API this
//! repository uses. The build environment has no crates.io access, so the
//! real crate is replaced by a minimal random-testing engine: the same
//! `proptest!` / `prop_assert*` / strategy-combinator surface, driven by a
//! seeded PRNG, **without shrinking** (a failing case prints its inputs via
//! `Debug` instead of minimizing them).
//!
//! Supported surface (everything the repo's test suites touch):
//! `proptest!` with `#![proptest_config(...)]`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, `Just`, integer/float
//! range strategies, string-literal regex strategies (character classes and
//! `{m,n}`/`*`/`+`/`?` quantifiers), tuple strategies, `prop_map`,
//! `prop_recursive`, and `proptest::collection::{vec, hash_set}`.

#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::rc::Rc;

/// The RNG driving every strategy.
pub type TestRng = StdRng;

/// A failed property (carried to the harness, which panics with it).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run configuration, selected with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Seed for a named test: deterministic per test name, overridable with
/// `PROPTEST_SEED` for reproduction.
pub fn rng_for_test(name: &str) -> TestRng {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return TestRng::seed_from_u64(seed);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

// ------------------------------------------------------------ strategies --

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Depth-bounded recursive composition. `_desired_size` and
    /// `_expected_branch_size` are accepted for signature compatibility; the
    /// shim bounds growth by `depth` plus the branching strategies'
    /// own size ranges.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: BoxedStrategy::new(self),
            recurse: Rc::new(move |inner| BoxedStrategy::new(recurse(inner))),
            depth,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

trait StrategyObj<T> {
    fn generate_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<T>>);

impl<T> BoxedStrategy<T> {
    fn new<S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(s))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` combinator: uniform choice among same-typed strategies.
pub struct Union<S>(pub Vec<S>);

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// `prop_recursive` combinator: layer the recursion `depth` times over the
/// base strategy; each layer's branching strategies decide the actual shape.
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut strat = self.base.clone();
        let layers = rng.gen_range(0..=self.depth);
        for _ in 0..layers {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

// Integer/float ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// Tuples of strategies are strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ------------------------------------------------------------- arbitrary --

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rand::RngCore::next_u64(rng) as u128) << 64 | rand::RngCore::next_u64(rng) as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide magnitude range.
        let mag = rng.gen_range(-300i32..300) as f64;
        let mantissa = rng.gen_range(-1.0f64..1.0);
        mantissa * 10f64.powf(mag / 2.0)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Printable ASCII most of the time, occasional multibyte.
        const EXTRA: &[char] = &['é', 'ß', '字', '🦀'];
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7F).try_into().unwrap_or('a')
        } else {
            EXTRA[rng.gen_range(0..EXTRA.len())]
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy form of [`Arbitrary`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// ----------------------------------------------------- regex strategies --

/// String literals are strategies: a small regex-shaped generator covering
/// the patterns this repository uses (character classes, `{m,n}`/`*`/`+`/`?`
/// quantifiers, `\PC` for printable characters, and literal characters).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    /// Candidate characters to draw from.
    Class(Vec<char>),
    /// Any printable character (`\PC`).
    Printable,
    Literal(char),
}

fn printable_char(rng: &mut TestRng) -> char {
    const EXTRA: &[char] = &['é', 'ß', '字', '→', '🦀'];
    if rng.gen_bool(0.85) {
        char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap_or('a')
    } else {
        EXTRA[rng.gen_range(0..EXTRA.len())]
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '-' => {
                // Range if bracketed by characters, literal '-' otherwise.
                match (prev, chars.peek().copied()) {
                    (Some(lo), Some(hi)) if hi != ']' => {
                        chars.next();
                        for x in lo as u32 + 1..=hi as u32 {
                            if let Some(ch) = char::from_u32(x) {
                                out.push(ch);
                            }
                        }
                        prev = None;
                    }
                    _ => {
                        out.push('-');
                        prev = Some('-');
                    }
                }
            }
            c => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
    out
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut atoms: Vec<(Atom, u32, u32)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: anything outside the control category.
                    chars.next();
                    Atom::Printable
                }
                Some(esc) => Atom::Literal(esc),
                None => Atom::Literal('\\'),
            },
            '.' => Atom::Printable,
            c => Atom::Literal(c),
        };
        // Optional quantifier.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8)),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push((atom, lo, hi));
    }

    let mut out = String::new();
    for (atom, lo, hi) in atoms {
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            match &atom {
                Atom::Class(cs) if !cs.is_empty() => out.push(cs[rng.gen_range(0..cs.len())]),
                Atom::Class(_) => {}
                Atom::Printable => out.push(printable_char(rng)),
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

// ------------------------------------------------------------ collection --

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Size specifications accepted by the collection strategies.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    pub struct HashSetStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            // Duplicate draws may fall short of `target`; bound the retries
            // so tiny domains still terminate.
            let mut attempts = 0;
            while out.len() < target && attempts < 10 * (target + 1) {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `HashSet` of (about) `size` distinct elements drawn from `elem`.
    pub fn hash_set<S, R>(elem: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: SizeRange,
    {
        HashSetStrategy { elem, size }
    }
}

// ---------------------------------------------------------------- macros --

/// Property-test harness macro: runs each test body over `cases` random
/// draws of its parameter strategies. No shrinking — failures print the
/// case number; re-run with `PROPTEST_SEED` to reproduce a specific stream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {}/{}: {}",
                           stringify!($name), case + 1, config.cases, e);
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Uniform choice among strategy arms sharing a `Value` type. Arms are
/// boxed so differently-typed combinator chains can mix in one union.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

pub mod option {
    //! `proptest::option::of`: half the cases `Some`, half `None`.
    use crate::{Strategy, TestRng};
    use rand::Rng as _;

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::rng_for_test("ranges");
        let s = (0u8..4, 1usize..=3, any::<bool>());
        for _ in 0..100 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((1..=3).contains(&b));
        }
    }

    #[test]
    fn regex_patterns_match_shape() {
        let mut rng = crate::rng_for_test("regex");
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad char: {s:?}");

            let t = "[a-zA-Z][a-zA-Z0-9_-]{0,8}".generate(&mut rng);
            assert!(!t.is_empty());
            assert!(t.chars().next().unwrap().is_ascii_alphabetic());

            let free = "\\PC*".generate(&mut rng);
            assert!(free.chars().count() <= 8);
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(T::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(T::Node)
        });
        let mut rng = crate::rng_for_test("recursive");
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_and_binds_patterns(
            (a, b) in (any::<u8>(), any::<u8>()),
            v in crate::collection::vec(0u32..10, 0..5),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
