//! Workspace-local shim for the subset of the `criterion` 0.5 API this
//! repository uses. The build environment has no crates.io access, so the
//! real statistical harness is replaced by a small wall-clock timer: each
//! benchmark is warmed up, run for a fixed number of samples, and reported
//! as mean/min time per iteration on stdout. Good enough to compare orders
//! of magnitude; not a substitute for criterion's statistics.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim runs one routine call per
/// setup call regardless, so the variants only differ in name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark (`group.bench_with_input`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Per-benchmark measurement driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    /// Mean and min time per iteration, filled in by `iter`/`iter_batched`.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            result: None,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: one call, also guards against pathological first-run cost.
        black_box(routine());
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            samples.push(t0.elapsed());
        }
        self.record(samples);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed());
        }
        self.record(samples);
    }

    fn record(&mut self, samples: Vec<Duration>) {
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len().max(1) as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        self.result = Some((mean, min));
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    match b.result {
        Some((mean, min)) => {
            println!("{name:<48} mean {mean:>12.2?}   min {min:>12.2?}   ({sample_size} samples)")
        }
        None => println!("{name:<48} (no measurement recorded)"),
    }
}

/// Top-level harness. The shim has no CLI filtering or HTML reports.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_label());
        run_one(&name, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label);
        run_one(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and full `BenchmarkId`s, like upstream.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn waste_time(c: &mut Criterion) {
        c.bench_function("waste_time", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()))
        });
    }

    criterion_group!(smoke, waste_time);

    #[test]
    fn harness_runs() {
        smoke();
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("id", 7), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
