//! Workspace-local shim for the subset of the `rand` 0.8 API this repository
//! uses: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`rngs::mock::StepRng`].
//!
//! The build environment has no access to crates.io, so external
//! dependencies are replaced by minimal offline implementations (see the
//! workspace `Cargo.toml`). The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically strong for simulation purposes, NOT a
//! cryptographic RNG (the repository's cryptography lives in `exq-crypto`
//! and never draws from this crate). Streams differ from upstream `rand`,
//! which is fine: the repository only relies on determinism per seed, never
//! on a specific upstream stream.

#![allow(clippy::all)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types [`Rng::gen_range`] can produce.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, span)` by widening multiply (negligible bias is
/// irrelevant here; this shim backs simulations, not cryptography).
fn uniform_u64_below(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: a raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
    fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_closed(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_closed(rng, lo, hi)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 — the same
    /// seeding construction upstream `rand` uses for `seed_from_u64`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // A zero state would be a fixed point; SplitMix64 cannot emit
            // four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Deterministic counter "RNG" for tests that need a known stream.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, step: u64) -> StepRng {
                StepRng { v: initial, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=10u64);
            assert!((1..=10).contains(&y));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let n = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "p=0.5 gave {hits}/1000");
    }

    #[test]
    fn step_rng_counts() {
        let mut r = StepRng::new(0, 1);
        assert_eq!(r.next_u64(), 0);
        assert_eq!(r.next_u64(), 1);
        let mut z = StepRng::new(5, 0);
        assert_eq!(z.next_u64(), 5);
        assert_eq!(z.next_u64(), 5);
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
