//! Workspace-local placeholder for `serde`. The workspace declares the
//! dependency (with the `derive` feature) but no crate currently derives or
//! implements its traits; structured output goes through the hand-rolled
//! codec in `exq-core` and the JSON shim in `vendor/serde_json`. This stub
//! exists only so dependency resolution succeeds offline.

#![allow(clippy::all)]
