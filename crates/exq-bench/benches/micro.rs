//! Criterion microbenchmarks for the substrates: the cipher, PRF, OPE,
//! OPESS planning, B-tree, DSI labeling, structural joins, XML parsing, and
//! vertex-cover solvers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_core::cover::{solve_clarkson, solve_exact, ConstraintGraph};
use exq_crypto::{ChaCha20, OpeKey, OpessPlan, Prf};
use exq_index::dsi::DsiLabeling;
use exq_index::sjoin::{join_anc_desc, sort_intervals};
use exq_index::BTree;
use exq_workload::{nasa, xmark};
use exq_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_chacha(c: &mut Criterion) {
    let cipher = ChaCha20::new(&[7u8; 32], &[1u8; 12]);
    let mut data = vec![0xA5u8; 16 * 1024];
    c.bench_function("chacha20/keystream_16k", |b| {
        b.iter(|| cipher.apply_keystream(0, black_box(&mut data)))
    });
}

fn bench_prf(c: &mut Criterion) {
    let prf = Prf::new([3u8; 32]);
    c.bench_function("prf/eval_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(prf.eval_u64(&i.to_le_bytes()))
        })
    });
}

fn bench_ope(c: &mut Criterion) {
    let key = OpeKey::new([5u8; 32]);
    c.bench_function("ope/encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(key.encrypt(x))
        })
    });
}

fn bench_opess(c: &mut Criterion) {
    let values: Vec<(f64, u32)> = (0..200).map(|i| (i as f64, (i % 37 + 2) as u32)).collect();
    c.bench_function("opess/build_plan_200_values", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            black_box(OpessPlan::build(&values, OpeKey::new([5u8; 32]), &mut rng).unwrap())
        })
    });
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = BTree::new();
            for i in 0..10_000u32 {
                t.insert((i as u128).wrapping_mul(0x9E37_79B9) % 100_000, i);
            }
            black_box(t.len())
        })
    });
    let mut t = BTree::new();
    for i in 0..100_000u32 {
        t.insert((i as u128).wrapping_mul(0x9E37_79B9) % 1_000_000, i);
    }
    group.bench_function("range_scan_1pct_of_100k", |b| {
        b.iter(|| black_box(t.range(0, 10_000).len()))
    });
    group.finish();
}

fn bench_dsi(c: &mut Criterion) {
    let doc = nasa::generate_datasets(500, 3);
    c.bench_function("dsi/label_500_datasets", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            black_box(DsiLabeling::assign(&doc, &mut rng))
        })
    });
}

fn bench_sjoin(c: &mut Criterion) {
    let doc = nasa::generate_datasets(1000, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let l = DsiLabeling::assign(&doc, &mut rng);
    let mut anc: Vec<_> = doc
        .elements_by_tag("dataset")
        .iter()
        .map(|&n| l.interval(n).unwrap())
        .collect();
    let mut desc: Vec<_> = doc
        .elements_by_tag("last")
        .iter()
        .map(|&n| l.interval(n).unwrap())
        .collect();
    sort_intervals(&mut anc);
    sort_intervals(&mut desc);
    c.bench_function("sjoin/anc_desc_1k_datasets", |b| {
        b.iter(|| black_box(join_anc_desc(&anc, &desc).len()))
    });
}

fn bench_xml_parse(c: &mut Criterion) {
    let doc = xmark::generate_people(500, 3);
    let xml = doc.to_xml();
    c.bench_function("xml/parse_500_people", |b| {
        b.iter(|| black_box(Document::parse(&xml).unwrap().len()))
    });
}

fn bench_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_cover");
    for n in [10usize, 16, 22] {
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = ConstraintGraph::default();
        for i in 0..n {
            g.vertices.push(exq_core::cover::CoverVertex {
                path: exq_xpath::Path::parse(&format!("//v{i}")).unwrap(),
                weight: rng.gen_range(1..100),
                bound_nodes: 1,
            });
        }
        for a in 0..n {
            for b in a + 1..n {
                if rng.gen_bool(0.3) {
                    g.edges.push((a, b));
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("exact", n), &g, |b, g| {
            b.iter(|| black_box(solve_exact(g).len()))
        });
        group.bench_with_input(BenchmarkId::new("clarkson", n), &g, |b, g| {
            b.iter(|| black_box(solve_clarkson(g).len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chacha,
    bench_prf,
    bench_ope,
    bench_opess,
    bench_btree,
    bench_dsi,
    bench_sjoin,
    bench_xml_parse,
    bench_cover
);
criterion_main!(benches);
