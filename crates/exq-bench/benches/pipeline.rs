//! Criterion benchmarks for the end-to-end pipeline: outsourcing per scheme
//! and the secure-vs-naive query round trip (the criterion companions to
//! experiments E3/E4/E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_workload::{generate_queries, nasa, QueryClass};

fn bench_outsource(c: &mut Criterion) {
    let doc = nasa::generate_datasets(200, 5);
    let constraints = nasa::constraints();
    let mut group = c.benchmark_group("outsource_200_datasets");
    group.sample_size(10);
    for kind in SchemeKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| {
                Outsourcer::new(OutsourceConfig::default())
                    .outsource(&doc, &constraints, k, 11)
                    .unwrap()
                    .setup
                    .block_count
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let doc = nasa::generate_datasets(200, 5);
    let constraints = nasa::constraints();
    let mut group = c.benchmark_group("query_200_datasets");
    group.sample_size(20);
    for kind in SchemeKind::ALL {
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &constraints, kind, 11)
            .unwrap();
        let q = &generate_queries(&doc, QueryClass::Ql, 1, 7)[0];
        group.bench_with_input(BenchmarkId::new("secure", kind.name()), &hosted, |b, h| {
            b.iter(|| h.query(q).unwrap().results.len())
        });
    }
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &constraints, SchemeKind::Opt, 11)
        .unwrap();
    let q = &generate_queries(&doc, QueryClass::Ql, 1, 7)[0];
    group.bench_function("naive/opt", |b| {
        b.iter(|| hosted.query_naive(q).unwrap().results.len())
    });
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let doc = nasa::generate_datasets(100, 5);
    let constraints = nasa::constraints();
    let mut group = c.benchmark_group("updates_100_datasets");
    group.sample_size(10);
    group.bench_function("insert", |b| {
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &constraints, SchemeKind::Opt, 11)
            .unwrap();
        let (client, server) = hosted.split();
        let mut i = 0u64;
        b.iter_batched(
            || (client.clone(), server.clone()),
            |(mut client, mut server)| {
                i += 1;
                let rec = format!(
                    "<dataset><title>t{i}</title><author><initial>Q</initial>                     <last>L{i}</last><age>44</age></author></dataset>"
                );
                client.insert(&mut server, "/datasets", &rec, i).unwrap();
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("delete", |b| {
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &constraints, SchemeKind::Opt, 11)
            .unwrap();
        let (client, server) = hosted.split();
        b.iter_batched(
            || server.clone(),
            |mut server| {
                client
                    .delete(&mut server, "//dataset[date/year = 1990]")
                    .unwrap()
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let doc = nasa::generate_datasets(200, 5);
    let constraints = nasa::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &constraints, SchemeKind::Opt, 11)
        .unwrap();
    let (client, server) = hosted.split();
    let mut group = c.benchmark_group("persistence_200_datasets");
    group.sample_size(20);
    group.bench_function("server_save", |b| {
        b.iter(|| server.save_bytes().unwrap().len())
    });
    let bytes = server.save_bytes().unwrap();
    group.bench_function("server_load", |b| {
        b.iter(|| exq_core::Server::load_bytes(&bytes).unwrap().block_count())
    });
    group.bench_function("client_save", |b| b.iter(|| client.save_bytes().len()));
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    use exq_core::aggregate::Aggregate;
    let doc = nasa::generate_datasets(200, 5);
    let constraints = nasa::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &constraints, SchemeKind::Opt, 11)
        .unwrap();
    let (client, server) = hosted.split();
    let mut group = c.benchmark_group("aggregate_200_datasets");
    group.bench_function("max_encrypted", |b| {
        b.iter(|| {
            client
                .aggregate(&server, "//author/age", Aggregate::Max)
                .unwrap()
                .value
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_outsource,
    bench_query,
    bench_updates,
    bench_persistence,
    bench_aggregates
);
criterion_main!(benches);
