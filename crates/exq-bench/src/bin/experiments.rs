//! Regenerates every reproduced table and figure (see DESIGN.md §2).
//!
//! ```sh
//! cargo run --release -p exq-bench --bin experiments            # all
//! cargo run --release -p exq-bench --bin experiments -- --exp e4
//! cargo run --release -p exq-bench --bin experiments -- --size-mb 25 --trials 5
//! ```
//!
//! Tables are printed and written as CSV under `results/`, plus a combined
//! JSON dump `results/experiments.json`.

use exq_bench::experiments::registry;
use exq_bench::report::Table;
use exq_bench::ExpConfig;
use std::time::Instant;

fn main() {
    let mut cfg = ExpConfig::default();
    let mut only: Option<Vec<String>> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                only.get_or_insert_with(Vec::new)
                    .push(args[i].to_lowercase());
            }
            "--size-mb" => {
                i += 1;
                cfg.size_bytes =
                    (args[i].parse::<f64>().expect("--size-mb <float>") * 1024.0 * 1024.0) as usize;
            }
            "--size-kb" => {
                i += 1;
                cfg.size_bytes =
                    (args[i].parse::<f64>().expect("--size-kb <float>") * 1024.0) as usize;
            }
            "--trials" => {
                i += 1;
                cfg.trials = args[i].parse().expect("--trials <n>");
            }
            "--queries" => {
                i += 1;
                cfg.query_count = args[i].parse().expect("--queries <n>");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed <n>");
            }
            "--out" => {
                i += 1;
                cfg.out_dir = args[i].clone().into();
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--exp eN]... [--size-mb F] [--trials N] \
                     [--queries N] [--seed N] [--out DIR]"
                );
                return;
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    println!(
        "config: {} bytes/dataset, {} trials, {} queries/class, seed {}\n",
        cfg.size_bytes, cfg.trials, cfg.query_count, cfg.seed
    );

    let mut all_tables: Vec<Table> = Vec::new();
    for (id, title, runner) in registry() {
        if let Some(filter) = &only {
            if !filter.iter().any(|f| f == id) {
                continue;
            }
        }
        println!("--- {id}: {title}");
        let t0 = Instant::now();
        let tables = runner(&cfg);
        for t in &tables {
            print!("{}", t.render());
            if let Err(e) = t.write_csv(&cfg.out_dir) {
                eprintln!("  (csv write failed: {e})");
            }
        }
        println!("  [{id} took {:.2?}]\n", t0.elapsed());
        all_tables.extend(tables);
    }

    // Combined JSON dump for downstream tooling.
    let json = tables_to_json(&all_tables);
    let path = cfg.out_dir.join("experiments.json");
    if std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|_| std::fs::write(&path, json))
        .is_ok()
    {
        println!("wrote {}", path.display());
    }
}

fn tables_to_json(tables: &[Table]) -> String {
    use serde_json::{json, Value};
    let v: Vec<Value> = tables
        .iter()
        .map(|t| {
            json!({
                "id": t.id,
                "title": t.title,
                "columns": t.columns,
                "rows": t.rows,
            })
        })
        .collect();
    serde_json::to_string_pretty(&v).expect("json")
}
