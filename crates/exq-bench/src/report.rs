//! Tabular experiment output: aligned text + CSV persistence.

use std::fmt::Write as _;
use std::path::Path;

/// One experiment table (a paper table or figure's data).
#[derive(Debug, Clone)]
pub struct Table {
    /// Identifier, e.g. `e4_fig9_nasa_Qs`.
    pub id: String,
    /// Human title, e.g. `Figure 9 (Qs): query performance, NASA-like`.
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} [{}]", self.title, self.id);
        let hdr: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", hdr.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        out
    }

    /// CSV serialization.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<id>.csv` (directory created as needed).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1e6 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 10 * 1024 {
        format!("{b}B")
    } else if b < 10 * 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("t1", "demo", &["scheme", "time"]);
        t.row(vec!["opt".into(), "1.2ms".into()]);
        t.row(vec!["top".into(), "44.0ms".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("opt"));
        let csv = t.to_csv();
        assert!(csv.starts_with("scheme,time\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("t2", "demo", &["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["q\"uote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"uote\""));
    }

    #[test]
    fn formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_bytes(100), "100B");
        assert_eq!(fmt_bytes(100 * 1024), "100.0KiB");
    }
}
