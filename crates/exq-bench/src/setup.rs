//! Dataset construction shared across experiments.

use crate::ExpConfig;
use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::system::{HostedDatabase, OutsourceConfig, Outsourcer};
use exq_workload::{nasa, xmark};
use exq_xml::Document;

/// A named dataset: document plus its security constraints.
pub struct Dataset {
    pub name: &'static str,
    pub doc: Document,
    pub constraints: Vec<SecurityConstraint>,
}

impl Dataset {
    pub fn xmark(cfg: &ExpConfig) -> Dataset {
        Dataset {
            name: "xmark",
            doc: xmark::generate(&xmark::XmarkConfig {
                target_bytes: cfg.size_bytes,
                seed: cfg.seed,
            }),
            constraints: xmark::constraints(),
        }
    }

    pub fn nasa(cfg: &ExpConfig) -> Dataset {
        Dataset {
            name: "nasa",
            doc: nasa::generate(&nasa::NasaConfig {
                target_bytes: cfg.size_bytes,
                seed: cfg.seed,
            }),
            constraints: nasa::constraints(),
        }
    }

    /// Both paper datasets.
    pub fn both(cfg: &ExpConfig) -> Vec<Dataset> {
        vec![Dataset::xmark(cfg), Dataset::nasa(cfg)]
    }

    /// Outsources under one scheme. The server caches are disabled: the
    /// paper experiments measure recomputation, and repeat trials of the
    /// same query must not degenerate into response-cache hits (e16
    /// measures the caches on purpose and manages the knob itself).
    pub fn host(&self, kind: SchemeKind, seed: u64) -> HostedDatabase {
        let mut hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&self.doc, &self.constraints, kind, seed)
            .expect("outsourcing failed");
        hosted.server.set_cache_entries(Some(0));
        hosted
    }
}
