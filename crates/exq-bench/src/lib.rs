//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7) plus the security-theorem demonstrations and ablations.
//!
//! The `experiments` binary drives [`experiments`]; Criterion microbenches
//! live under `benches/`. Every experiment returns [`report::Table`]s that
//! are printed and persisted as CSV under `results/`.

pub mod experiments;
pub mod report;
pub mod setup;

use std::path::PathBuf;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Target document size in bytes for the scaling datasets.
    pub size_bytes: usize,
    /// Trials per measurement; the mean is taken after dropping the min and
    /// max (the paper's §7.1 protocol: 5 trials, drop extremes).
    pub trials: usize,
    /// Queries per query class (paper: 10).
    pub query_count: usize,
    pub seed: u64,
    /// Directory for CSV output.
    pub out_dir: PathBuf,
    /// Whether experiments may refresh trajectory files at the workspace
    /// root (`BENCH_*.json`). True for the experiments binary; tests run
    /// at tiny scale in debug mode and must not overwrite real numbers.
    pub write_root_artifacts: bool,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            size_bytes: 6 * 1024 * 1024,
            trials: 5,
            query_count: 10,
            seed: 2006,
            out_dir: PathBuf::from("results"),
            write_root_artifacts: true,
        }
    }
}

/// Mean of a duration sample after dropping the min and max (for ≥3 samples).
pub fn robust_mean(samples: &[std::time::Duration]) -> std::time::Duration {
    assert!(!samples.is_empty());
    if samples.len() < 3 {
        return samples.iter().sum::<std::time::Duration>() / samples.len() as u32;
    }
    let mut v = samples.to_vec();
    v.sort();
    let kept = &v[1..v.len() - 1];
    kept.iter().sum::<std::time::Duration>() / kept.len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn robust_mean_drops_extremes() {
        let s = [
            Duration::from_millis(100),
            Duration::from_millis(1),
            Duration::from_millis(10),
            Duration::from_millis(10),
            Duration::from_millis(10),
        ];
        assert_eq!(robust_mean(&s), Duration::from_millis(10));
    }

    #[test]
    fn robust_mean_small_samples() {
        let s = [Duration::from_millis(4), Duration::from_millis(8)];
        assert_eq!(robust_mean(&s), Duration::from_millis(6));
    }
}
