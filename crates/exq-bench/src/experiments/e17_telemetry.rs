//! E17 — extension: telemetry overhead on the hot-query replay.
//!
//! Not a paper figure: PR 4 retrofits a from-scratch telemetry subsystem
//! (sharded counter/gauge/histogram registry, per-query trace spans) onto
//! the query hot path, and observability is only free if nobody pays for
//! it. This experiment re-runs E16's Zipf-skewed hot-query replay through
//! the *full* client pipeline (`HostedDatabase::query`: translate → wire →
//! server → decrypt → post-process) in three telemetry configurations:
//!
//! * **disabled** — `telemetry::set_enabled(false)`: span recording off,
//!   the cheapest the subsystem can be without recompiling;
//! * **metrics** — the default shipping configuration: counters plus span
//!   histograms (atomic adds on the log-bucketed registry);
//! * **traced** — `telemetry::set_trace_all(true)`: every query also
//!   builds and discards a stitched span tree, the worst case short of
//!   actually writing a trace sink.
//!
//! Each configuration replays the identical schedule `ROUNDS` times over a
//! pre-warmed response cache, with measurements paired per query draw and
//! per-(configuration, draw) minima summed into the replay time (see
//! `measure` — whole-replay timing cannot resolve a sub-percent effect
//! on a machine with load waves). Answers are asserted byte-identical
//! across configurations: telemetry must be invisible in every output
//! bit. Results land in `BENCH_e17_telemetry.json`; the PR's acceptance
//! target is <2% traced overhead on this replay.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_core::system::{HostedDatabase, OutsourceConfig, Outsourcer};
use exq_core::telemetry;
use exq_workload::{hospital, xmark};
use std::time::{Duration, Instant};

/// Replay length per workload (matches E16: repeats dominate under Zipf).
const REPLAY_LEN: usize = 80;
const CACHE_ENTRIES: usize = 1024;
/// Timed replays per configuration; the minimum is reported. Measurements
/// are paired at the *query* level: each draw runs under all three
/// configurations back-to-back (a mode switch is two atomic stores), with
/// the order rotated per draw, so slow drift — allocator warm-up,
/// frequency scaling, a noisy neighbor — lands on every configuration
/// equally instead of biasing whichever one happened to run first.
const ROUNDS: usize = 7;

struct Sweep {
    name: &'static str,
    hosted: HostedDatabase,
    queries: Vec<&'static str>,
}

fn workloads(cfg: &ExpConfig) -> Vec<Sweep> {
    let host = |doc, cs: &[_], tag: u64| {
        Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, cs, SchemeKind::Opt, cfg.seed ^ tag)
            .expect("outsource")
    };
    vec![
        Sweep {
            name: "hospital",
            hosted: host(
                hospital::scaled(240, cfg.seed),
                &hospital::constraints(),
                0x17,
            ),
            queries: vec![
                "//patient/pname",
                "//patient[age > 40]/pname",
                "//patient[.//disease = 'flu']/pname",
                "//treat[disease = 'flu']/doctor",
                "//insurance/policy",
                "//patient",
            ],
        },
        Sweep {
            name: "xmark",
            hosted: host(
                xmark::generate_people(160, cfg.seed),
                &xmark::constraints(),
                0x71,
            ),
            queries: vec![
                "//person/name",
                "//person/creditcard",
                "//person[age > 40]/name",
                "//person[age > 40]/creditcard",
                "//person/profile/income",
                "//person/address/city",
            ],
        },
    ]
}

/// Deterministic Zipf(1)-skewed schedule of query indices (same generator
/// as E16, so "the E16 hot-query replay" is literal, not approximate).
fn zipf_schedule(n_queries: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..n_queries).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(REPLAY_LEN);
    for _ in 0..REPLAY_LEN {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut pick = n_queries - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = r;
                break;
            }
        }
        out.push(pick);
    }
    out
}

/// Replays the schedule once through the full client pipeline, returning
/// wall time and the per-draw result sets (for equivalence checking).
fn replay(sweep: &Sweep, schedule: &[usize]) -> (Duration, Vec<Vec<String>>) {
    let started = Instant::now();
    let mut answers = Vec::with_capacity(schedule.len());
    for &qi in schedule {
        let out = sweep.hosted.query(sweep.queries[qi]).expect("query");
        answers.push(out.results);
    }
    (started.elapsed(), answers)
}

/// One telemetry configuration: a label plus the global switches to apply
/// before each of its replays.
struct Mode {
    name: &'static str,
    enabled: bool,
    trace_all: bool,
}

const MODES: [Mode; 3] = [
    Mode {
        name: "disabled",
        enabled: false,
        trace_all: false,
    },
    Mode {
        name: "metrics",
        enabled: true,
        trace_all: false,
    },
    Mode {
        name: "traced",
        enabled: true,
        trace_all: true,
    },
];

/// Runs `ROUNDS` replays with query-level mode pairing. Per (mode, draw)
/// the minimum time across rounds is kept — an OS preemption spike lands
/// on one draw in one round and the other rounds' minima discard it — and
/// the per-draw minima sum to the configuration's replay time. Returns
/// those sums plus each configuration's first-round answers.
fn measure(sweep: &Sweep, schedule: &[usize]) -> ([Duration; 3], [Vec<Vec<String>>; 3]) {
    let mut draw_best = [(); 3].map(|_| vec![Duration::MAX; schedule.len()]);
    let mut answers: [Vec<Vec<String>>; 3] = Default::default();
    for round in 0..ROUNDS {
        let mut got: [Vec<Vec<String>>; 3] = Default::default();
        for (di, &qi) in schedule.iter().enumerate() {
            for k in 0..MODES.len() {
                let mi = (di + round + k) % MODES.len();
                telemetry::set_enabled(MODES[mi].enabled);
                telemetry::set_trace_all(MODES[mi].trace_all);
                let started = Instant::now();
                let out = sweep.hosted.query(sweep.queries[qi]).expect("query");
                draw_best[mi][di] = draw_best[mi][di].min(started.elapsed());
                got[mi].push(out.results);
            }
        }
        for mi in 0..MODES.len() {
            if round == 0 {
                answers[mi] = std::mem::take(&mut got[mi]);
            } else {
                assert_eq!(
                    got[mi], answers[mi],
                    "{}: answers drifted between rounds",
                    sweep.name
                );
            }
        }
    }
    telemetry::set_enabled(true);
    telemetry::set_trace_all(false);
    (draw_best.map(|per_draw| per_draw.iter().sum()), answers)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"e17_telemetry\",\n  \"target_overhead_pct\": 2.0,\n  \"datasets\": [\n");

    for (wi, mut sweep) in workloads(cfg).into_iter().enumerate() {
        // Single-threaded on both ends: scheduler jitter from the decrypt
        // pool would swamp the sub-percent effect being measured.
        sweep.hosted.client.set_threads(1);
        sweep.hosted.server.set_threads(1);
        // Pin the cache on and pre-warm it so every measured replay sees
        // the identical all-hot state: the point is the telemetry delta,
        // not cold-start noise.
        sweep.hosted.server.set_cache_entries(Some(CACHE_ENTRIES));
        let schedule = zipf_schedule(sweep.queries.len(), cfg.seed ^ (wi as u64));
        let _ = replay(&sweep, &schedule);

        let ([off_time, metrics_time, traced_time], [reference, metrics_answers, traced_answers]) =
            measure(&sweep, &schedule);

        assert_eq!(
            metrics_answers, reference,
            "{}: span histograms changed an answer",
            sweep.name
        );
        assert_eq!(
            traced_answers, reference,
            "{}: trace collection changed an answer",
            sweep.name
        );

        let overhead =
            |t: Duration| (t.as_secs_f64() / off_time.as_secs_f64().max(1e-12) - 1.0) * 100.0;
        let metrics_overhead = overhead(metrics_time);
        let traced_overhead = overhead(traced_time);
        // Generous sanity bound (the artifact documents the real number
        // against the 2% target): a debug-build smoke run on a loaded CI
        // box is noisy, but an order-of-magnitude regression is a bug.
        assert!(
            traced_overhead < 50.0,
            "{}: traced replay {traced_overhead:.1}% over disabled — span \
             machinery is no longer hot-path cheap",
            sweep.name
        );

        let mut t = Table::new(
            &format!("e17_telemetry_{}", sweep.name),
            &format!(
                "Telemetry overhead on the {} hot-query replay ({} draws, \
                 Zipf-skewed, per-draw min over {} rounds, warm cache)",
                sweep.name,
                schedule.len(),
                ROUNDS
            ),
            &["config", "replay wall (ms)", "overhead", "answers"],
        );
        let rows = [
            (MODES[0].name, off_time, 0.0),
            (MODES[1].name, metrics_time, metrics_overhead),
            (MODES[2].name, traced_time, traced_overhead),
        ];
        if wi > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"replay_len\": {}, \"rounds\": {}, \"rows\": [\n",
            sweep.name,
            schedule.len(),
            ROUNDS
        ));
        for (ri, (config, time, over)) in rows.iter().enumerate() {
            t.row(vec![
                config.to_string(),
                format!("{:.3}", ms(*time)),
                format!("{over:+.2}%"),
                "identical".to_string(),
            ]);
            if ri > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "      {{ \"config\": \"{config}\", \"wall_ms\": {:.5}, \
                 \"overhead_pct\": {over:.3}, \"answers_identical\": true }}",
                ms(*time),
            ));
        }
        json.push_str("\n    ] }");
        tables.push(t);
    }

    json.push_str("\n  ]\n}\n");
    // Anchor to the workspace root so the trajectory file lands in the same
    // place no matter the working directory (cargo run vs. cargo test).
    if cfg.write_root_artifacts {
        let out = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_e17_telemetry.json"
        );
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e17: could not write {out}: {e}");
        }
    }
    tables
}
