//! E11 — §5.1 ablation: the DSI index vs the classic continuous interval
//! index.
//!
//! Two comparisons:
//!
//! 1. **grouping leak** — with continuous labels the gap-free layout lets
//!    the server compute exactly how many label events hide inside a grouped
//!    interval (`hi − lo − 1` is fully determined), so the candidate
//!    structure count collapses to 1; DSI's random gaps keep the count at
//!    the Theorem 5.1 value. We measure the attacker's success at inferring
//!    the exact number of nodes behind each grouped interval.
//! 2. **join speed** — structural joins run at the same asymptotic cost on
//!    both labelings (the security is free in query-processing terms).

use crate::report::{fmt_duration, Table};
use crate::ExpConfig;
use exq_index::dsi::DsiLabeling;
use exq_index::sjoin::{join_anc_desc, sort_intervals};
use exq_workload::nasa;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let doc = nasa::generate_datasets(400, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dsi = DsiLabeling::assign(&doc, &mut rng);
    let cont = DsiLabeling::assign_continuous(&doc);

    // --- 1. Grouping leak ------------------------------------------------
    // Group each dataset's author run (adjacent same-tag siblings) the way
    // the metadata builder would, then let the attacker infer the hidden
    // node count from the interval width.
    let mut t1 = Table::new(
        "e11_grouping_leak",
        "Continuous vs DSI: attacker inferring hidden node counts behind grouped intervals",
        &["labeling", "groups", "exact inferences", "success rate"],
    );
    for (name, labeling, deterministic_gap) in [("continuous", &cont, true), ("DSI", &dsi, false)] {
        let mut groups = 0usize;
        let mut exact = 0usize;
        for ds in doc.elements_by_tag("dataset") {
            let authors: Vec<_> = doc
                .node(ds)
                .children()
                .iter()
                .copied()
                .filter(|&c| doc.element_name(c) == Some("author"))
                .collect();
            if authors.len() < 2 {
                continue;
            }
            groups += 1;
            let lo = labeling.interval(authors[0]).unwrap().lo;
            let hi = labeling.interval(*authors.last().unwrap()).unwrap().hi;
            // The true number of structural events inside the grouped span:
            let truth: u64 = authors
                .iter()
                .map(|&a| doc.subtree_size(a) as u64 * 2)
                .sum();
            // Continuous labels advance by exactly 1 per event, so the
            // width reveals the event count exactly.
            let inferred = hi - lo + 1;
            if deterministic_gap {
                if inferred == truth {
                    exact += 1;
                }
            } else {
                // DSI attacker applies the same rule; gaps randomize it.
                if inferred == truth {
                    exact += 1;
                }
            }
        }
        t1.row(vec![
            name.to_owned(),
            groups.to_string(),
            exact.to_string(),
            format!("{:.2}", exact as f64 / groups.max(1) as f64),
        ]);
    }

    // --- 2. Join speed ----------------------------------------------------
    let mut t2 = Table::new(
        "e11_join_speed",
        "Structural-join speed: DSI vs continuous labels (dataset ⋈ author)",
        &["labeling", "pairs", "join time"],
    );
    for (name, labeling) in [("continuous", &cont), ("DSI", &dsi)] {
        let mut anc: Vec<_> = doc
            .elements_by_tag("dataset")
            .iter()
            .map(|&n| labeling.interval(n).unwrap())
            .collect();
        let mut desc: Vec<_> = doc
            .elements_by_tag("author")
            .iter()
            .map(|&n| labeling.interval(n).unwrap())
            .collect();
        sort_intervals(&mut anc);
        sort_intervals(&mut desc);
        let t0 = Instant::now();
        let mut pairs = 0usize;
        for _ in 0..20 {
            pairs = join_anc_desc(&anc, &desc).len();
        }
        let dt = t0.elapsed() / 20;
        t2.row(vec![name.to_owned(), pairs.to_string(), fmt_duration(dt)]);
    }
    vec![t1, t2]
}
