//! E15 — extension: the parallel query hot path (`--threads`).
//!
//! Not a paper figure: the paper's client is single-threaded, and its
//! dominant cost — block decryption plus XML re-parsing at 2006-era speeds
//! (§7.2) — is embarrassingly parallel across shipped blocks. This
//! experiment sweeps the thread knob over the hospital and XMark workloads
//! and reports, per thread count:
//!
//! * the measured wall time of the client block phase (decrypt + parse on
//!   the real pool) and of server-side candidate filtering;
//! * the era-modeled decrypt makespan (least-loaded-worker schedule over
//!   the same per-block 2006-era costs the serial model charges);
//! * the speedup of each over the single-thread run.
//!
//! Answers are asserted byte-identical across every thread count — the
//! knob must be purely a performance knob. On single-core hosts the
//! *measured* columns show no speedup (there is nothing to fan out onto);
//! the *modeled* columns characterize the schedule itself and are
//! hardware-independent. Results also land in `BENCH_e15_parallel.json`.

use crate::report::Table;
use crate::{robust_mean, ExpConfig};
use exq_core::scheme::SchemeKind;
use exq_core::system::{HostedDatabase, OutsourceConfig, Outsourcer};
use exq_workload::{hospital, xmark};
use std::time::Duration;

const THREADS: &[usize] = &[1, 2, 4, 8];

struct Sweep {
    name: &'static str,
    hosted: HostedDatabase,
    queries: Vec<&'static str>,
}

fn workloads(cfg: &ExpConfig) -> Vec<Sweep> {
    let host = |doc, cs: &[_], tag: u64| {
        Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, cs, SchemeKind::Opt, cfg.seed ^ tag)
            .expect("outsource")
    };
    vec![
        Sweep {
            name: "hospital",
            hosted: host(
                hospital::scaled(240, cfg.seed),
                &hospital::constraints(),
                0x15,
            ),
            queries: vec![
                "//patient/pname",
                "//patient[age > 40]/pname",
                "//patient[.//disease = 'flu']/pname",
                "//insurance/policy",
                "//patient",
            ],
        },
        Sweep {
            name: "xmark",
            hosted: host(
                xmark::generate_people(160, cfg.seed),
                &xmark::constraints(),
                0x51,
            ),
            queries: vec![
                "//person/name",
                "//person/creditcard",
                "//person[age > 40]/name",
                "//person/profile/income",
                "//person/address/city",
            ],
        },
    ]
}

struct Measured {
    /// Era-modeled + measured decrypt phase (the makespan column).
    decrypt: Duration,
    /// Measured client post-processing (re-evaluation + splice).
    post: Duration,
    /// Measured server processing (filtering + assembly).
    server: Duration,
    results: Vec<String>,
}

fn measure(sweep: &mut Sweep, threads: usize, trials: usize) -> Measured {
    sweep.hosted.client.set_threads(threads);
    sweep.hosted.server.set_threads(threads);
    // This experiment measures recomputation, not memoization: with the
    // response cache on, repeat trials would all be hits and the server
    // column would collapse to lookup time (e16 measures that instead).
    sweep.hosted.server.set_cache_entries(Some(0));
    let mut decrypt = Vec::new();
    let mut post = Vec::new();
    let mut server = Vec::new();
    let mut results = Vec::new();
    for q in &sweep.queries {
        let mut d = Vec::new();
        let mut p = Vec::new();
        let mut s = Vec::new();
        for _ in 0..trials.max(1) {
            let out = sweep.hosted.query(q).expect("query");
            d.push(out.timing.decrypt);
            p.push(out.timing.post_process);
            s.push(out.timing.server_process);
            if d.len() == 1 {
                results.extend(out.results);
            }
        }
        decrypt.push(robust_mean(&d));
        post.push(robust_mean(&p));
        server.push(robust_mean(&s));
    }
    Measured {
        decrypt: decrypt.iter().sum(),
        post: post.iter().sum(),
        server: server.iter().sum(),
        results,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"e15_parallel\",\n  \"datasets\": [\n");

    for (wi, mut sweep) in workloads(cfg).into_iter().enumerate() {
        let mut t = Table::new(
            &format!("e15_parallel_{}", sweep.name),
            &format!(
                "Thread sweep over the {} workload (opt scheme, era decrypt model)",
                sweep.name
            ),
            &[
                "threads",
                "decrypt (ms, modeled)",
                "decrypt speedup",
                "post (ms)",
                "server (ms)",
                "answers",
            ],
        );
        let baseline = measure(&mut sweep, 1, cfg.trials);
        if wi > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"rows\": [\n",
            sweep.name
        ));
        for (ti, &threads) in THREADS.iter().enumerate() {
            let m = if threads == 1 {
                Measured {
                    decrypt: baseline.decrypt,
                    post: baseline.post,
                    server: baseline.server,
                    results: baseline.results.clone(),
                }
            } else {
                measure(&mut sweep, threads, cfg.trials)
            };
            assert_eq!(
                m.results, baseline.results,
                "{}: answers diverged at {threads} threads",
                sweep.name
            );
            let speedup = baseline.decrypt.as_secs_f64() / m.decrypt.as_secs_f64().max(1e-12);
            t.row(vec![
                threads.to_string(),
                format!("{:.2}", ms(m.decrypt)),
                format!("{speedup:.2}x"),
                format!("{:.2}", ms(m.post)),
                format!("{:.2}", ms(m.server)),
                "identical".to_string(),
            ]);
            if ti > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "      {{ \"threads\": {threads}, \"decrypt_ms\": {:.4}, \
                 \"decrypt_speedup\": {:.3}, \"post_ms\": {:.4}, \"server_ms\": {:.4}, \
                 \"answers_identical\": true }}",
                ms(m.decrypt),
                speedup,
                ms(m.post),
                ms(m.server),
            ));
        }
        json.push_str("\n    ] }");
        tables.push(t);
    }

    json.push_str("\n  ]\n}\n");
    // Anchor to the workspace root so the trajectory file lands in the same
    // place no matter the working directory (cargo run vs. cargo test).
    if cfg.write_root_artifacts {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e15_parallel.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e15: could not write {out}: {e}");
        }
    }
    tables
}
