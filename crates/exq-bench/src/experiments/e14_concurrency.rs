//! E14 — extension: concurrent clients against one networked server.
//!
//! Not a paper figure (the paper's testbed is one client, one server), but
//! the question the transport layer exists to answer: with the server
//! behind a real TCP accept loop and a worker pool, how does aggregate
//! query throughput scale with the number of concurrent clients? Read-only
//! queries share the server's read lock, so throughput should rise with
//! client count until the worker pool or the structural-join CPU saturates.

use crate::report::{fmt_bytes, Table};
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::transport::{serve, ServeConfig, TcpTransport};
use exq_workload::hospital;
use std::net::TcpListener;
use std::sync::{Arc, RwLock};
use std::time::Instant;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "e14_concurrency",
        "Concurrent clients vs one TCP server (hospital workload, opt scheme)",
        &[
            "clients",
            "queries",
            "wall time (ms)",
            "queries/sec",
            "bytes/query",
        ],
    );
    let doc = hospital::document();
    let cs = hospital::constraints();
    let hosted = Outsourcer::new(OutsourceConfig::modern())
        .outsource(&doc, &cs, SchemeKind::Opt, cfg.seed)
        .expect("outsource");
    let (client, server) = hosted.split();
    let client = Arc::new(client);
    let shared = Arc::new(RwLock::new(server));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(
        listener,
        Arc::clone(&shared),
        ServeConfig {
            workers: 8,
            // Throughput of real recomputation: repeat trials must not
            // degenerate into response-cache hits (e16 measures those).
            cache_entries: Some(0),
            ..ServeConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    let queries = [
        "//patient/pname",
        "//patient[pname = 'Betty']/age",
        "//policy",
        "//patient[.//policy/@coverage = 1000000]",
    ];
    let per_client = (cfg.trials.max(1) * queries.len()).max(8);

    for clients in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let client = Arc::clone(&client);
                std::thread::spawn(move || {
                    let mut link = TcpTransport::connect_default(addr).expect("connect");
                    let mut bytes = 0u64;
                    for i in 0..per_client {
                        let q = queries[(c + i) % queries.len()];
                        let out = client.query_via(&mut link, q).expect("query");
                        assert!(!out.naive_fallback, "workload must stay on secure path");
                        bytes += (out.bytes_to_server + out.bytes_to_client) as u64;
                    }
                    bytes
                })
            })
            .collect();
        let total_bytes: u64 = workers.into_iter().map(|w| w.join().expect("client")).sum();
        let wall = start.elapsed();
        let total_queries = clients * per_client;
        let qps = total_queries as f64 / wall.as_secs_f64();
        t.row(vec![
            clients.to_string(),
            total_queries.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{qps:.0}"),
            fmt_bytes((total_bytes / total_queries as u64) as usize),
        ]);
    }
    handle.shutdown();
    vec![t]
}
