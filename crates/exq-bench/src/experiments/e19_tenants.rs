//! E19 — extension: multi-tenant fairness — one serve loop, one Zipf-hot
//! tenant, two quiet tenants.
//!
//! Not a paper figure: the paper hosts one sealed database per server. This
//! experiment runs three independently keyed hospital databases behind one
//! [`serve_multi`] loop over real sockets. A *hot* tenant is hammered by
//! several threads replaying a Zipf-skewed query schedule while two *quiet*
//! tenants issue sequential queries. Two admission policies are compared:
//!
//! * **none** — no in-flight limits: the hot tenant's burst freely occupies
//!   every worker, and quiet tenants queue behind it;
//! * **fair-share** — a global in-flight cap split evenly per tenant: the
//!   hot tenant sheds `Busy` at its share, quiet tenants keep their slots.
//!
//! Reported per tenant and policy: completed queries, p50/p99 latency, and
//! requests shed. Every quiet-tenant answer is asserted byte-identical to
//! an in-process reference — a neighbor's overload storm must never change
//! another tenant's results. Results also land in `BENCH_e19_tenants.json`.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::tenant::TenantRegistry;
use exq_core::transport::{serve_multi, ServeConfig, TcpTransport};
use exq_core::Client;
use exq_workload::hospital;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hot-tenant replay: threads × draws per thread.
const HOT_THREADS: usize = 4;
const HOT_DRAWS: usize = 30;
/// Quiet-tenant sequential queries per policy.
const QUIET_DRAWS: usize = 25;

const QUERIES: &[&str] = &[
    "//patient/pname",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//treat[disease = 'flu']/doctor",
    "//insurance/policy",
];

/// Deterministic Zipf(1) schedule (same generator family as E16/E18).
fn zipf_schedule(n_queries: usize, len: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..n_queries).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut pick = n_queries - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = r;
                break;
            }
        }
        out.push(pick);
    }
    out
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct TenantRun {
    name: &'static str,
    completed: usize,
    issued: usize,
    latencies: Vec<Duration>,
    shed: u64,
}

/// Builds the three-tenant registry fresh (per policy, so shed counters and
/// caches start from zero) and the paired clients.
fn build_registry(cfg: &ExpConfig, tag: &str) -> (Arc<TenantRegistry>, Vec<(String, Client)>) {
    let registry = Arc::new(TenantRegistry::new(&format!("e19-{tag}-hot")).unwrap());
    let mut clients = Vec::new();
    for (i, role) in ["hot", "quiet1", "quiet2"].iter().enumerate() {
        let name = format!("e19-{tag}-{role}");
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(
                &hospital::scaled(100, cfg.seed ^ i as u64),
                &hospital::constraints(),
                SchemeKind::Opt,
                cfg.seed ^ 0x19 ^ (i as u64) << 8,
            )
            .expect("outsource");
        let (client, server) = hosted.split();
        registry
            .create(&name, server, client.key_fingerprint(), 0)
            .unwrap();
        clients.push((name, client));
    }
    (registry, clients)
}

/// Runs one policy: hot threads hammer tenant 0, quiet tenants 1 and 2 run
/// sequentially, each checked against its own reference answers; returns
/// per-tenant outcomes (hot first).
fn run_policy(
    cfg: &ExpConfig,
    tag: &str,
    config: ServeConfig,
    references: &[Vec<Vec<String>>],
) -> Vec<TenantRun> {
    let (registry, clients) = build_registry(cfg, tag);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve_multi(listener, Arc::clone(&registry), config).unwrap();
    let addr = handle.addr();

    // Hot tenant: HOT_THREADS threads replaying the Zipf schedule. Busy
    // replies count as not-completed; no retry layer, so shedding is
    // visible as failed draws rather than hidden by backoff.
    let (hot_name, hot_client) = (clients[0].0.clone(), clients[0].1.clone());
    let hammers: Vec<_> = (0..HOT_THREADS)
        .map(|t| {
            let name = hot_name.clone();
            let client = hot_client.clone();
            let schedule = zipf_schedule(QUERIES.len(), HOT_DRAWS, cfg.seed ^ (t as u64) << 4);
            std::thread::spawn(move || {
                let mut tcp = TcpTransport::connect_default(addr)
                    .unwrap()
                    .with_db(&name)
                    .unwrap();
                let mut completed = 0usize;
                let mut latencies = Vec::with_capacity(schedule.len());
                for &qi in &schedule {
                    let started = Instant::now();
                    if client.query_via(&mut tcp, QUERIES[qi]).is_ok() {
                        completed += 1;
                        latencies.push(started.elapsed());
                    } else {
                        // Shed or dropped mid-storm: reconnect and move on.
                        tcp = match TcpTransport::connect_default(addr) {
                            Ok(t) => t.with_db(&name).unwrap(),
                            Err(_) => return (completed, latencies),
                        };
                    }
                }
                (completed, latencies)
            })
        })
        .collect();

    // Quiet tenants: sequential, answers checked against each tenant's own
    // in-process reference.
    let mut quiet_runs = Vec::new();
    for (qi_tenant, (name, client)) in clients.iter().enumerate().skip(1) {
        let reference = &references[qi_tenant - 1];
        let mut tcp = TcpTransport::connect_default(addr)
            .unwrap()
            .with_db(name)
            .unwrap();
        let mut latencies = Vec::with_capacity(QUIET_DRAWS);
        let mut completed = 0usize;
        for draw in 0..QUIET_DRAWS {
            let q = QUERIES[draw % QUERIES.len()];
            let started = Instant::now();
            let out = client.query_via(&mut tcp, q).expect("quiet tenant shed");
            latencies.push(started.elapsed());
            completed += 1;
            assert_eq!(
                out.results,
                reference[draw % QUERIES.len()],
                "tenant {name} diverged under the neighbor's storm"
            );
        }
        quiet_runs.push((qi_tenant, name.clone(), completed, latencies));
    }

    let mut hot_completed = 0usize;
    let mut hot_latencies = Vec::new();
    let mut hot_issued = 0usize;
    for h in hammers {
        let (completed, lat) = h.join().unwrap();
        hot_completed += completed;
        hot_issued += HOT_DRAWS;
        hot_latencies.extend(lat);
    }
    hot_latencies.sort();

    let mut runs = vec![TenantRun {
        name: "hot",
        completed: hot_completed,
        issued: hot_issued,
        latencies: hot_latencies,
        shed: registry.get(&hot_name).unwrap().shed_total(),
    }];
    for (idx, name, completed, mut latencies) in quiet_runs {
        latencies.sort();
        runs.push(TenantRun {
            name: if idx == 1 { "quiet1" } else { "quiet2" },
            completed,
            issued: QUIET_DRAWS,
            latencies,
            shed: registry.get(&name).unwrap().shed_total(),
        });
    }
    handle.shutdown();
    runs
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    // In-process reference answers for each quiet tenant's query set. The
    // tenant documents are generated with per-tenant seeds (shared across
    // policies), so one reference pass per quiet tenant suffices.
    let mut references = Vec::new();
    for i in 1..3u64 {
        let hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(
                &hospital::scaled(100, cfg.seed ^ i),
                &hospital::constraints(),
                SchemeKind::Opt,
                cfg.seed ^ 0x19 ^ i << 8,
            )
            .expect("outsource");
        let per_query: Vec<Vec<String>> = QUERIES
            .iter()
            .map(|q| hosted.query(q).expect("reference").results)
            .collect();
        references.push(per_query);
    }

    let policies: &[(&str, ServeConfig)] = &[
        (
            "none",
            ServeConfig {
                workers: 4,
                threads: 1,
                cache_entries: Some(0),
                ..ServeConfig::default()
            },
        ),
        (
            "fair-share",
            ServeConfig {
                workers: 4,
                threads: 1,
                cache_entries: Some(0),
                max_inflight: 3, // 3 tenants → 1 slot each
                ..ServeConfig::default()
            },
        ),
    ];

    let mut t = Table::new(
        "e19_tenants",
        &format!(
            "one serve loop, 3 independently keyed dbs: {HOT_THREADS}×{HOT_DRAWS} Zipf-hot \
             draws vs {QUIET_DRAWS} sequential quiet draws per tenant, by admission policy"
        ),
        &[
            "policy",
            "tenant",
            "issued",
            "completed",
            "p50 (ms)",
            "p99 (ms)",
            "shed",
            "answers",
        ],
    );
    let mut json = String::from("{\n  \"experiment\": \"e19_tenants\",\n  \"rows\": [\n");
    let mut first_row = true;
    for (policy, config) in policies {
        let runs = run_policy(cfg, policy, config.clone(), &references);
        for run in &runs {
            let p50 = percentile(&run.latencies, 0.50);
            let p99 = percentile(&run.latencies, 0.99);
            if run.name != "hot" {
                assert_eq!(
                    run.completed, run.issued,
                    "quiet tenant starved under policy {policy}"
                );
                assert_eq!(run.shed, 0, "quiet tenant shed under policy {policy}");
            }
            t.row(vec![
                policy.to_string(),
                run.name.to_string(),
                run.issued.to_string(),
                run.completed.to_string(),
                format!("{:.3}", ms(p50)),
                format!("{:.3}", ms(p99)),
                run.shed.to_string(),
                if run.name == "hot" { "-" } else { "identical" }.to_string(),
            ]);
            if !first_row {
                json.push_str(",\n");
            }
            first_row = false;
            json.push_str(&format!(
                "    {{ \"policy\": \"{policy}\", \"tenant\": \"{}\", \"issued\": {}, \
                 \"completed\": {}, \"p50_ms\": {:.5}, \"p99_ms\": {:.5}, \"shed\": {} }}",
                run.name,
                run.issued,
                run.completed,
                ms(p50),
                ms(p99),
                run.shed,
            ));
        }
    }
    json.push_str(&format!(
        "\n  ],\n  \"hot_threads\": {HOT_THREADS},\n  \"hot_draws\": {HOT_DRAWS},\n  \
         \"quiet_draws\": {QUIET_DRAWS},\n  \"distinct_queries\": {}\n}}\n",
        QUERIES.len()
    ));

    if cfg.write_root_artifacts {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e19_tenants.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e19: could not write {out}: {e}");
        }
    }
    vec![t]
}
