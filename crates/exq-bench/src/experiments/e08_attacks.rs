//! E8 — §3.3 attack model, operationally: the frequency-based attack against
//! (a) naive deterministic per-leaf encryption and (b) the system's OPESS
//! value index; plus the size-based attack against decoy-equalized blocks.
//!
//! Paper shape: (a) cracks every uniquely-frequent value, (b) cracks
//! (essentially) nothing; decoys make equal-plaintext blocks differ so the
//! size-based attack cannot separate candidates.

use crate::report::Table;
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::analysis::attack;
use exq_core::scheme::SchemeKind;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let small = ExpConfig {
        size_bytes: cfg.size_bytes.min(512 * 1024),
        ..cfg.clone()
    };
    let mut t = Table::new(
        "e8_frequency_attack",
        "Frequency-based attack: correct cracks (claims in parentheses)",
        &[
            "dataset",
            "attribute",
            "naive correct",
            "OPESS correct",
            "OPESS claimed",
            "distinct values",
        ],
    );
    for ds in Dataset::both(&small) {
        let hosted = ds.host(SchemeKind::Opt, cfg.seed);
        let plain_hists = ds.doc.value_histogram();
        // Attack every attribute that the system actually indexes.
        let state = hosted.client.state();
        let mut attrs: Vec<&String> = state.opess.keys().collect();
        attrs.sort();
        for attr in attrs {
            let Some(plain) = plain_hists.get(attr) else {
                continue;
            };
            // (a) naive: ciphertext histogram == plaintext histogram, with
            //     every owner exposed by the deterministic mapping.
            let naive_hist: Vec<(u64, Option<String>)> = plain
                .iter()
                .map(|(k, &c)| (c as u64, Some(k.clone())))
                .collect();
            let naive = attack::frequency_attack_strings(plain, &naive_hist);
            // (b) ours: the attacker reads the OPESS histogram; ground
            //     truth comes from the plan.
            let cipher_hist = attack::opess_cipher_histogram(&state.opess[attr], plain);
            let ours = attack::frequency_attack_strings(plain, &cipher_hist);
            t.row(vec![
                ds.name.to_owned(),
                attr.clone(),
                naive.correct.to_string(),
                ours.correct.to_string(),
                ours.claimed.to_string(),
                plain.len().to_string(),
            ]);
        }
    }

    // Size-based attack: candidate databases that differ only in sensitive
    // values have identical encrypted sizes thanks to padding-free stream
    // encryption of equal-length serializations + decoys making equal
    // plaintexts distinct.
    let mut t2 = Table::new(
        "e8_size_attack",
        "Size-based attack: blocks with equal plaintext values stay distinct and equal-sized",
        &[
            "dataset",
            "blocks",
            "distinct ciphertexts",
            "size-identical pairs",
        ],
    );
    for ds in Dataset::both(&small) {
        let hosted = ds.host(SchemeKind::Opt, cfg.seed);
        let sizes: Vec<usize> = (0..hosted.setup.block_count).map(|_| 0).collect();
        let _ = sizes;
        let mut distinct = std::collections::HashSet::new();
        let mut size_hist: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let resp = hosted.server.answer_naive().unwrap();
        for b in &resp.blocks {
            distinct.insert(b.ciphertext.clone());
            *size_hist.entry(b.ciphertext.len()).or_default() += 1;
        }
        let identical_pairs: usize = size_hist
            .values()
            .map(|&c| c * c.saturating_sub(1) / 2)
            .sum();
        t2.row(vec![
            ds.name.to_owned(),
            resp.blocks.len().to_string(),
            distinct.len().to_string(),
            identical_pairs.to_string(),
        ]);
    }
    vec![t, t2]
}
