//! E12 — extension ablation (paper §8 future work #3): incremental update
//! performance.
//!
//! Measures, on a NASA-like database hosted under the opt scheme:
//! per-record insert latency (client preparation + server application),
//! delta wire size vs re-outsourcing the whole database, delete latency,
//! and query correctness/latency after a batch of updates.

use crate::report::{fmt_bytes, fmt_duration, Table};
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use std::time::Instant;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let small = ExpConfig {
        size_bytes: cfg.size_bytes.min(2 * 1024 * 1024),
        ..cfg.clone()
    };
    let ds = Dataset::nasa(&small);
    let hosted = ds.host(SchemeKind::Opt, cfg.seed);
    let hosted_bytes = hosted.server.hosted_bytes();
    let (mut client, mut server) = hosted.split();

    let record = |i: usize| {
        format!(
            "<dataset><title>inserted catalog {i}</title><altname>INS-{i:05}</altname>\
             <date><year>199{}</year></date>\
             <author><initial>Q</initial><last>Newcomer{i}</last><age>4{}</age></author>\
             <journal><publisher>AstroPress</publisher><city>Vancouver</city></journal>\
             </dataset>",
            i % 10,
            i % 10
        )
    };

    // Inserts.
    let n_inserts = 50usize;
    let mut delta_bytes = 0usize;
    let t0 = Instant::now();
    for i in 0..n_inserts {
        let delta = client
            .insert(&mut server, "/datasets", &record(i), cfg.seed + i as u64)
            .expect("insert");
        delta_bytes += delta.wire_size();
    }
    let insert_time = t0.elapsed();

    // Queries over inserted data stay correct and fast.
    let t1 = Instant::now();
    let out = client
        .query(&server, "//dataset[.//last = 'Newcomer7']/altname")
        .expect("query");
    let post_insert_query = t1.elapsed();
    assert_eq!(out.results, ["<altname>INS-00007</altname>"]);

    // Deletes.
    let t2 = Instant::now();
    let del = client
        .delete(&mut server, "//dataset[date/year = 1990]")
        .expect("delete");
    let delete_time = t2.elapsed();

    let mut t = Table::new(
        "e12_updates",
        "Update-support ablation (NASA-like, opt scheme)",
        &["metric", "value"],
    );
    t.row(vec![
        "hosted bytes before updates".into(),
        fmt_bytes(hosted_bytes),
    ]);
    t.row(vec![
        format!("insert latency (mean of {n_inserts})"),
        fmt_duration(insert_time / n_inserts as u32),
    ]);
    t.row(vec![
        "delta bytes per insert (mean)".into(),
        fmt_bytes(delta_bytes / n_inserts),
    ]);
    t.row(vec![
        "delta/full-reoutsource ratio".into(),
        format!(
            "{:.5}",
            (delta_bytes as f64 / n_inserts as f64) / hosted_bytes as f64
        ),
    ]);
    t.row(vec![
        "query latency after inserts".into(),
        fmt_duration(post_insert_query),
    ]);
    t.row(vec![
        format!("delete latency ({} victims)", del.deleted),
        fmt_duration(delete_time),
    ]);
    vec![t]
}
