//! E16 — extension: server response/range caching (`--cache-entries`).
//!
//! Not a paper figure: the paper's server recomputes every query from
//! scratch, but deterministic tag encryption and OPESS make identical
//! client queries byte-identical on the wire — a memoization opportunity
//! the original system leaves on the table. This experiment replays a
//! Zipf-skewed hot-query workload (repeats dominate, as in real query
//! logs) against the hospital and XMark datasets in three configurations:
//!
//! * **disabled** — `--cache-entries 0`, the paper-faithful baseline;
//! * **cold** — caches enabled but empty at replay start, so first
//!   occurrences miss and repeats hit;
//! * **warm** — a second replay of the same schedule, all hits.
//!
//! Reported per configuration: total server `process_time` over the
//! replay, speedup over disabled, and response/range hit rates. Answers
//! are asserted byte-identical across all three configurations — the
//! cache must be purely a performance knob. Results also land in
//! `BENCH_e16_cache.json`.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_core::system::{HostedDatabase, OutsourceConfig, Outsourcer};
use exq_core::wire::ServerQuery;
use exq_workload::{hospital, xmark};
use std::time::Duration;

/// Replay length per workload: long enough that Zipf repeats dominate.
const REPLAY_LEN: usize = 80;
const CACHE_ENTRIES: usize = 1024;

struct Sweep {
    name: &'static str,
    hosted: HostedDatabase,
    queries: Vec<&'static str>,
}

fn workloads(cfg: &ExpConfig) -> Vec<Sweep> {
    let host = |doc, cs: &[_], tag: u64| {
        Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, cs, SchemeKind::Opt, cfg.seed ^ tag)
            .expect("outsource")
    };
    vec![
        Sweep {
            name: "hospital",
            hosted: host(
                hospital::scaled(240, cfg.seed),
                &hospital::constraints(),
                0x16,
            ),
            // The two `disease = 'flu'` queries differ structurally but
            // share an encrypted value predicate: the second's first
            // occurrence exercises the cross-query range cache even before
            // any response repeats.
            queries: vec![
                "//patient/pname",
                "//patient[age > 40]/pname",
                "//patient[.//disease = 'flu']/pname",
                "//treat[disease = 'flu']/doctor",
                "//insurance/policy",
                "//patient",
            ],
        },
        Sweep {
            name: "xmark",
            hosted: host(
                xmark::generate_people(160, cfg.seed),
                &xmark::constraints(),
                0x61,
            ),
            queries: vec![
                "//person/name",
                "//person/creditcard",
                "//person[age > 40]/name",
                "//person[age > 40]/creditcard",
                "//person/profile/income",
                "//person/address/city",
            ],
        },
    ]
}

/// Deterministic Zipf(1)-skewed schedule of query indices: rank `r` drawn
/// with probability ∝ 1/(r+1). A tiny splitmix/LCG keeps the experiment
/// dependency-free and byte-reproducible from the config seed.
fn zipf_schedule(n_queries: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..n_queries).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(REPLAY_LEN);
    for _ in 0..REPLAY_LEN {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut pick = n_queries - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = r;
                break;
            }
        }
        out.push(pick);
    }
    out
}

/// Replays the schedule once, returning total server process time and the
/// per-draw `pruned_xml` answers (for equivalence checking).
fn replay(
    sweep: &Sweep,
    translated: &[ServerQuery],
    schedule: &[usize],
) -> (Duration, Vec<String>) {
    let mut total = Duration::ZERO;
    let mut answers = Vec::with_capacity(schedule.len());
    for &qi in schedule {
        let resp = sweep.hosted.server.answer(&translated[qi]).unwrap();
        total += resp.process_time;
        answers.push(resp.pruned_xml);
    }
    (total, answers)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"e16_cache\",\n  \"datasets\": [\n");

    for (wi, mut sweep) in workloads(cfg).into_iter().enumerate() {
        sweep.hosted.server.set_threads(1);
        let translated: Vec<ServerQuery> = sweep
            .queries
            .iter()
            .map(|q| {
                sweep
                    .hosted
                    .client
                    .translate(q)
                    .expect("translate")
                    .server_query
                    .expect("server-evaluable query")
            })
            .collect();
        let schedule = zipf_schedule(translated.len(), cfg.seed ^ (wi as u64));

        // Paper-faithful baseline: caches off.
        sweep.hosted.server.set_cache_entries(Some(0));
        let (disabled_time, reference) = replay(&sweep, &translated, &schedule);

        // Cold: fresh cache, so first occurrences miss and repeats hit.
        sweep.hosted.server.set_cache_entries(Some(CACHE_ENTRIES));
        let (cold_time, cold_answers) = replay(&sweep, &translated, &schedule);
        let cold_stats = sweep.hosted.server.cache_stats();

        // Warm: every draw is a repeat of the cold replay.
        let before = sweep.hosted.server.cache_stats();
        let (warm_time, warm_answers) = replay(&sweep, &translated, &schedule);
        let after = sweep.hosted.server.cache_stats();
        let warm_hits = after.response_hits - before.response_hits;
        let warm_misses = after.response_misses - before.response_misses;

        assert_eq!(
            cold_answers, reference,
            "{}: cold-cache answers diverged from uncached",
            sweep.name
        );
        assert_eq!(
            warm_answers, reference,
            "{}: warm-cache answers diverged from uncached",
            sweep.name
        );
        assert_eq!(
            warm_misses, 0,
            "{}: warm replay missed the response cache",
            sweep.name
        );

        let cold_speedup = disabled_time.as_secs_f64() / cold_time.as_secs_f64().max(1e-12);
        let warm_speedup = disabled_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-12);
        assert!(
            warm_speedup >= 2.0,
            "{}: warm replay only {warm_speedup:.2}x over cache-disabled",
            sweep.name
        );

        let rate = |hits: u64, misses: u64| -> Option<f64> {
            let total = hits + misses;
            (total > 0).then(|| hits as f64 / total as f64)
        };
        // Deltas isolate each replay's own lookups. A warm replay performs
        // *no* range lookups at all — response-cache hits short-circuit
        // before the value pre-pass — which shows up as "-" below.
        let cold_hit_rate = rate(cold_stats.response_hits, cold_stats.response_misses);
        let cold_range_rate = rate(cold_stats.range_hits, cold_stats.range_misses);
        let warm_range_rate = rate(
            after.range_hits - before.range_hits,
            after.range_misses - before.range_misses,
        );

        let mut t = Table::new(
            &format!("e16_cache_{}", sweep.name),
            &format!(
                "Hot-query replay over the {} workload ({} draws, Zipf-skewed, {} distinct)",
                sweep.name,
                schedule.len(),
                translated.len()
            ),
            &[
                "config",
                "server process (ms)",
                "speedup",
                "resp hit rate",
                "range hit rate",
                "answers",
            ],
        );
        let rows = [
            ("disabled", disabled_time, 1.0, None, None),
            (
                "cold",
                cold_time,
                cold_speedup,
                cold_hit_rate,
                cold_range_rate,
            ),
            (
                "warm",
                warm_time,
                warm_speedup,
                Some(warm_hits as f64 / schedule.len() as f64),
                warm_range_rate,
            ),
        ];
        if wi > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"replay_len\": {}, \"distinct_queries\": {}, \"rows\": [\n",
            sweep.name,
            schedule.len(),
            translated.len()
        ));
        let pct = |r: &Option<f64>| match r {
            Some(v) => format!("{:.0}%", v * 100.0),
            None => "-".to_string(),
        };
        let num = |r: &Option<f64>| match r {
            Some(v) => format!("{v:.3}"),
            None => "null".to_string(),
        };
        for (ri, (config, time, speedup, resp_rate, range_rate)) in rows.iter().enumerate() {
            t.row(vec![
                config.to_string(),
                format!("{:.3}", ms(*time)),
                format!("{speedup:.2}x"),
                pct(resp_rate),
                pct(range_rate),
                "identical".to_string(),
            ]);
            if ri > 0 {
                json.push_str(",\n");
            }
            json.push_str(&format!(
                "      {{ \"config\": \"{config}\", \"process_ms\": {:.5}, \
                 \"speedup\": {speedup:.3}, \"response_hit_rate\": {}, \
                 \"range_hit_rate\": {}, \"answers_identical\": true }}",
                ms(*time),
                num(resp_rate),
                num(range_rate),
            ));
        }
        json.push_str("\n    ] }");
        tables.push(t);
    }

    json.push_str("\n  ]\n}\n");
    // Anchor to the workspace root so the trajectory file lands in the same
    // place no matter the working directory (cargo run vs. cargo test).
    if cfg.write_root_artifacts {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e16_cache.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e16: could not write {out}: {e}");
        }
    }
    tables
}
