//! E21 — extension: out-of-core paged hosting under shrinking buffer
//! budgets.
//!
//! Not a paper figure: the paper hosts the sealed database fully in RAM,
//! so database size is bounded by memory. This experiment hosts the same
//! encrypted hospital database through the paged storage engine (sealed
//! blocks + DSI posting lists in CRC'd pages behind a pinning buffer pool,
//! mutations in a write-ahead log) and sweeps the pool budget from
//! "everything resident" down to 1/8 of the on-disk footprint. At every
//! budget each answer is checked bit-for-bit against the all-in-RAM
//! reference — the experiment *fails* on any divergence, so the reported
//! latencies are verified answers, not best-effort reads.
//!
//! Two side measurements close the loop on the mutation path:
//!
//! * **O(update) vs O(database)** — an insert against the paged store is
//!   one WAL append + fsync; the legacy path re-encodes and rewrites the
//!   whole artifact. Both are timed on the same database.
//! * **warm vs cold full save** — the block-encoding memo means a full
//!   `save_bytes` after a mutation re-encodes only new blocks; the cold
//!   first save pays for every block.
//!
//! Results land in `BENCH_e21_outofcore.json`. `EXQ_E21_SMOKE=1` shrinks
//! the dataset for CI while keeping every assertion live.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_core::store::{checkpoint_once, PagedDb, StoreOptions};
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_workload::hospital;
use std::sync::RwLock;
use std::time::{Duration, Instant};

const QUERIES: &[&str] = &[
    "//patient/pname",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//treat[disease = 'flu']/doctor",
    "//insurance/policy",
];

fn smoke() -> bool {
    std::env::var("EXQ_E21_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Dataset + page size scale with the mode: the full run uses default 8 KiB
/// pages over ~a thousand patients; the smoke run shrinks both so the 1/8
/// budget still holds more than the pool's 4-frame floor.
fn scale(cfg: &ExpConfig) -> (usize, usize, usize) {
    if smoke() {
        (200, 1024, 2)
    } else {
        (1200, StoreOptions::default().page_size, cfg.trials.max(3))
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let (patients, page_size, trials) = scale(cfg);

    // One sealed database, answered twice: all-in-RAM (the reference) and
    // through the paged store at every budget.
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(
            &hospital::scaled(patients, cfg.seed),
            &hospital::constraints(),
            SchemeKind::Opt,
            cfg.seed ^ 0x21,
        )
        .expect("outsource");
    let (mut client, resident) = hosted.split();
    let references: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| client.query(&resident, q).expect("reference").results)
        .collect();

    // Cold vs warm full save: the first encode pays for every sealed
    // block; the memo makes later saves touch only what changed. Measured
    // before any other save so the cold run really starts cold.
    let cold_started = Instant::now();
    let cold_bytes = resident.save_bytes().unwrap();
    let save_cold = cold_started.elapsed();
    let warm_started = Instant::now();
    let warm_bytes = resident.save_bytes().unwrap();
    let save_warm = warm_started.elapsed();
    assert_eq!(cold_bytes, warm_bytes, "warm save diverged from cold save");

    let dir = std::env::temp_dir().join(format!("exq-e21-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let legacy = dir.join("db.exq");
    resident.save(&legacy).unwrap();

    // Migrate once (full budget), then measure the on-disk footprint that
    // anchors the budget sweep.
    let opts_full = StoreOptions {
        page_size,
        cache_bytes: usize::MAX / 2,
    };
    let (_s, db, _) = PagedDb::open_or_migrate(&legacy, "e21", opts_full).unwrap();
    let disk_bytes = db.footprint().disk_bytes as usize;
    let page_count = db.footprint().page_count;
    drop(_s);
    drop(db);
    let pages = PagedDb::pages_dir(&legacy);

    let mut t = Table::new(
        "e21_outofcore",
        &format!(
            "{patients}-patient sealed database ({disk_bytes} bytes, {page_count} pages on \
             disk) served through the paged store; verified answers at shrinking pool budgets"
        ),
        &[
            "budget",
            "budget (KiB)",
            "db/budget",
            "resident pages",
            "pool hits",
            "pool misses",
            "evictions",
            "mean query (ms)",
            "vs resident",
        ],
    );

    // Reference latency: the all-in-RAM server on the same queries.
    let mut resident_lat = Vec::new();
    for _ in 0..trials {
        for q in QUERIES {
            let started = Instant::now();
            let _ = client.query(&resident, q).unwrap();
            resident_lat.push(started.elapsed());
        }
    }
    let resident_mean = resident_lat.iter().sum::<Duration>() / resident_lat.len().max(1) as u32;

    let budgets: Vec<(&str, usize)> = vec![
        ("full", disk_bytes.next_power_of_two()),
        ("1/2", disk_bytes / 2),
        ("1/4", disk_bytes / 4),
        ("1/8", disk_bytes / 8),
    ];
    let mut json_rows = Vec::new();
    let mut max_ratio = 0.0f64;
    for (name, budget) in &budgets {
        let opts = StoreOptions {
            page_size,
            cache_bytes: *budget,
        };
        let (server, db, replay) = PagedDb::open(&pages, "e21", opts).unwrap();
        assert_eq!(replay.replayed, 0, "{name}: unexpected WAL replay");

        let mut lat = Vec::new();
        for _ in 0..trials {
            for (qi, q) in QUERIES.iter().enumerate() {
                let started = Instant::now();
                let got = client.query(&server, q).unwrap().results;
                lat.push(started.elapsed());
                assert_eq!(
                    got, references[qi],
                    "budget {name}: answer diverged for {q}"
                );
            }
        }
        let mean = lat.iter().sum::<Duration>() / lat.len().max(1) as u32;
        let fp = db.footprint();
        let stats = db.pool_stats();
        let held = (fp.capacity_pages.min(fp.page_count) as usize) * page_size;
        let ratio = disk_bytes as f64 / held.max(1) as f64;
        max_ratio = max_ratio.max(ratio);
        t.row(vec![
            name.to_string(),
            format!("{}", budget / 1024),
            format!("{ratio:.1}x"),
            format!("{} of {}", fp.resident_pages, fp.page_count),
            stats.hits.to_string(),
            stats.misses.to_string(),
            stats.evictions.to_string(),
            format!("{:.3}", ms(mean)),
            format!("{:.2}x", ms(mean) / ms(resident_mean).max(1e-9)),
        ]);
        json_rows.push(format!(
            "    {{ \"budget\": \"{name}\", \"budget_bytes\": {budget}, \
             \"db_over_budget\": {ratio:.2}, \"resident_pages\": {}, \
             \"page_count\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"mean_query_ms\": {:.4} }}",
            fp.resident_pages,
            fp.page_count,
            stats.hits,
            stats.misses,
            stats.evictions,
            ms(mean),
        ));
    }
    assert!(
        max_ratio >= 4.0,
        "sweep never reached a 4x database/budget ratio (max {max_ratio:.1}x)"
    );

    // Mutation cost. O(update): one logged insert against the paged store
    // (WAL append + fsync). O(database): the legacy path's full-artifact
    // rewrite for the same logical change.
    let opts = StoreOptions {
        page_size,
        cache_bytes: disk_bytes / 8,
    };
    let (server, db, _) = PagedDb::open(&pages, "e21", opts).unwrap();
    let record = "<patient><pname>Bench</pname><SSN>424242</SSN><age>33</age>\
                  <insurance><policy coverage=\"7000\">11111</policy></insurance></patient>";
    let mut paged = server;
    let insert_started = Instant::now();
    client
        .insert(&mut paged, "/hospital", record, cfg.seed ^ 0x5a)
        .unwrap();
    let insert_paged = insert_started.elapsed();
    let fp_after_insert = db.footprint();
    assert_eq!(
        fp_after_insert.wal_depth, 1,
        "insert did not land in the WAL"
    );

    let mut legacy_server = resident;
    let legacy_started = Instant::now();
    client
        .insert(&mut legacy_server, "/hospital", record, cfg.seed ^ 0x5a)
        .unwrap();
    legacy_server.save(&dir.join("legacy-after.exq")).unwrap();
    let insert_legacy = legacy_started.elapsed();

    // Fold the WAL (the background checkpointer's job, timed here once so
    // the off-path cost is visible) and prove the mutated paged state
    // matches the mutated legacy state bit-for-bit.
    let lock = RwLock::new(paged);
    let ckpt_started = Instant::now();
    assert!(
        checkpoint_once(&lock).unwrap(),
        "checkpoint had nothing to fold"
    );
    let ckpt = ckpt_started.elapsed();
    assert_eq!(db.footprint().wal_depth, 0);
    let paged = lock.into_inner().unwrap();
    assert_eq!(
        paged.save_bytes().unwrap(),
        legacy_server.save_bytes().unwrap(),
        "mutated paged state diverged from the legacy path"
    );

    let mut m = Table::new(
        "e21_mutation",
        "one insert: WAL append (paged, on-path) vs full-artifact rewrite (legacy); \
         checkpoint cost is off the serving path",
        &["path", "wall (ms)", "persisted bytes touched"],
    );
    m.row(vec![
        "paged insert (WAL append)".into(),
        format!("{:.3}", ms(insert_paged)),
        format!("{} (one log record)", fp_after_insert.wal_bytes),
    ]);
    m.row(vec![
        "legacy insert (full rewrite)".into(),
        format!("{:.3}", ms(insert_legacy)),
        format!(
            "{}",
            std::fs::metadata(dir.join("legacy-after.exq"))
                .unwrap()
                .len()
        ),
    ]);
    m.row(vec![
        "background checkpoint (off-path)".into(),
        format!("{:.3}", ms(ckpt)),
        "dirty pages only".into(),
    ]);
    m.row(vec![
        "full save, cold encode".into(),
        format!("{:.3}", ms(save_cold)),
        format!("{}", cold_bytes.len()),
    ]);
    m.row(vec![
        "full save, warm memo".into(),
        format!("{:.3}", ms(save_warm)),
        format!("{}", warm_bytes.len()),
    ]);

    if cfg.write_root_artifacts {
        let json = format!(
            "{{\n  \"experiment\": \"e21_outofcore\",\n  \"patients\": {patients},\n  \
             \"disk_bytes\": {disk_bytes},\n  \"page_size\": {page_size},\n  \
             \"page_count\": {page_count},\n  \"rows\": [\n{}\n  ],\n  \
             \"resident_mean_query_ms\": {:.4},\n  \
             \"insert_paged_ms\": {:.4},\n  \"insert_legacy_ms\": {:.4},\n  \
             \"checkpoint_ms\": {:.4},\n  \
             \"save_cold_ms\": {:.4},\n  \"save_warm_ms\": {:.4}\n}}\n",
            json_rows.join(",\n"),
            ms(resident_mean),
            ms(insert_paged),
            ms(insert_legacy),
            ms(ckpt),
            ms(save_cold),
            ms(save_warm),
        );
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_e21_outofcore.json"
            ),
            json,
        )
        .expect("write BENCH_e21_outofcore.json");
    }

    let _ = std::fs::remove_dir_all(&dir);
    vec![t, m]
}
