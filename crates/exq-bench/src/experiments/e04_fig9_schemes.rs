//! E4 — Figure 9: query performance of the four encryption schemes on the
//! NASA-like dataset, per query class (Qs, Qm, Ql), reporting the three
//! phases the paper plots: query processing time on the server, decryption
//! time on the client, and query (post-)processing time on the client.
//!
//! Paper shape: every phase decreases in the order top > sub > app ≥ opt;
//! decryption is the largest factor; the server-side phase shrinks more
//! slowly than the client-side phases; app stays within ~1.1–1.3× of opt.

use crate::experiments::{measure_query, sum_phases};
use crate::report::{fmt_duration, Table};
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_core::system::PhaseTiming;
use exq_workload::{generate_queries, QueryClass};

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let ds = Dataset::nasa(cfg);
    let hosted: Vec<_> = SchemeKind::ALL
        .iter()
        .map(|&k| (k, ds.host(k, cfg.seed)))
        .collect();
    let mut tables = Vec::new();
    for class in QueryClass::ALL {
        let queries = generate_queries(&ds.doc, class, cfg.query_count, cfg.seed);
        let mut t = Table::new(
            &format!("e4_fig9_{}", class.name()),
            &format!(
                "Figure 9 ({}): per-scheme phase times, NASA-like {}B, {} queries",
                class.name(),
                ds.doc.serialized_size(),
                queries.len()
            ),
            &[
                "scheme",
                "server process",
                "client decrypt",
                "client post",
                "total",
            ],
        );
        for (kind, h) in &hosted {
            let phases: Vec<PhaseTiming> = queries
                .iter()
                .map(|q| measure_query(h, q, cfg.trials, false).0)
                .collect();
            let s = sum_phases(&phases);
            t.row(vec![
                kind.name().to_owned(),
                fmt_duration(s.server_translate + s.server_process),
                fmt_duration(s.decrypt),
                fmt_duration(s.post_process),
                fmt_duration(s.total()),
            ]);
        }
        tables.push(t);
    }
    tables
}
