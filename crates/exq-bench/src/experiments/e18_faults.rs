//! E18 — extension: fault tolerance — goodput and latency under injected
//! faults.
//!
//! Not a paper figure: the paper assumes a reliable channel between the
//! client and the untrusted server. This experiment replays a Zipf-skewed
//! hot-query workload over the hospital dataset through
//! [`FaultTransport`] + [`Retry`] while sweeping the injected fault rate
//! (dropped requests/responses, corrupted reply frames), and reports per
//! rate:
//!
//! * **goodput** — the fraction of logical queries that completed within
//!   the retry budget;
//! * **p50/p99 latency** per logical query (retries and backoff included);
//! * retry-layer work: attempts beyond the first and faults injected.
//!
//! Every completed answer is asserted byte-identical to the fault-free
//! replay — the retry layer must be purely an availability knob, never a
//! correctness one. Results also land in `BENCH_e18_faults.json`.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::fault::{FaultConfig, FaultTransport};
use exq_core::retry::{Retry, RetryConfig};
use exq_core::scheme::SchemeKind;
use exq_core::system::{HostedDatabase, OutsourceConfig, Outsourcer};
use exq_core::transport::InProcess;
use exq_workload::hospital;
use std::time::{Duration, Instant};

/// Replay length: long enough for percentiles to mean something while
/// keeping the sweep fast in debug-mode smoke tests.
const REPLAY_LEN: usize = 60;

/// Injected fault rates swept (0 = the reliable-channel baseline).
const RATES: &[f64] = &[0.0, 0.05, 0.15, 0.30];

const QUERIES: &[&str] = &[
    "//patient/pname",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//treat[disease = 'flu']/doctor",
    "//insurance/policy",
    "//patient",
];

/// Same deterministic Zipf(1) schedule generator as E16, kept local so the
/// two experiments stay independently tweakable.
fn zipf_schedule(n_queries: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..n_queries).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(REPLAY_LEN);
    for _ in 0..REPLAY_LEN {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut pick = n_queries - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = r;
                break;
            }
        }
        out.push(pick);
    }
    out
}

struct RateOutcome {
    completed: usize,
    latencies: Vec<Duration>,
    retries: u64,
    faults: u64,
}

/// Replays the schedule once at the given fault rate, checking every
/// completed answer against the fault-free reference.
fn replay(
    hosted: &HostedDatabase,
    schedule: &[usize],
    rate: f64,
    seed: u64,
    reference: Option<&Vec<Option<Vec<String>>>>,
) -> (RateOutcome, Vec<Option<Vec<String>>>) {
    let mut out = RateOutcome {
        completed: 0,
        latencies: Vec::with_capacity(schedule.len()),
        retries: 0,
        faults: 0,
    };
    let mut answers = Vec::with_capacity(schedule.len());
    for (draw, &qi) in schedule.iter().enumerate() {
        let fc = if rate == 0.0 {
            FaultConfig::quiet(seed ^ draw as u64)
        } else {
            FaultConfig {
                // No stalls: latency here should measure retry/backoff
                // cost, not injected sleeps.
                stall_rate: 0.0,
                stall: Duration::ZERO,
                ..FaultConfig::uniform(seed ^ (draw as u64) << 8, rate)
            }
        };
        let mut link = Retry::new(
            FaultTransport::new(InProcess::shared(&hosted.server), fc),
            RetryConfig {
                max_attempts: 6,
                base_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(2),
                jitter_seed: seed ^ draw as u64,
                ping_before_retry: false,
            },
        );
        let started = Instant::now();
        let answer = match hosted.client.run(&mut link, QUERIES[qi]) {
            Ok((_, _, post)) => {
                out.completed += 1;
                Some(post.results)
            }
            Err(_) => None,
        };
        out.latencies.push(started.elapsed());
        out.retries += link.retry_stats().retries;
        out.faults += link.into_inner().tally().total();
        if let (Some(refs), Some(ans)) = (reference, answer.as_ref()) {
            assert_eq!(
                Some(ans),
                refs[draw].as_ref(),
                "answer diverged under faults for {} (rate {rate})",
                QUERIES[qi]
            );
        }
        answers.push(answer);
    }
    (out, answers)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(
            &hospital::scaled(240, cfg.seed),
            &hospital::constraints(),
            SchemeKind::Opt,
            cfg.seed ^ 0x18,
        )
        .expect("outsource");
    // Server caching off: every draw pays full evaluation, so fault-rate
    // effects are not masked by response-cache hits.
    hosted.server.set_cache_entries(Some(0));
    hosted.server.set_threads(1);
    let schedule = zipf_schedule(QUERIES.len(), cfg.seed ^ 0xE18);

    // Fault-free reference pass.
    let (_, reference) = replay(&hosted, &schedule, 0.0, cfg.seed, None);
    assert!(
        reference.iter().all(Option::is_some),
        "fault-free replay must complete every query"
    );

    let mut t = Table::new(
        "e18_faults",
        &format!(
            "Zipf hot-query replay ({REPLAY_LEN} draws, {} distinct) through \
             FaultTransport + Retry (budget 6 attempts), by injected fault rate",
            QUERIES.len()
        ),
        &[
            "fault rate",
            "goodput",
            "p50 (ms)",
            "p99 (ms)",
            "retries",
            "faults injected",
            "answers",
        ],
    );
    let mut json = String::from("{\n  \"experiment\": \"e18_faults\",\n  \"rows\": [\n");
    for (ri, &rate) in RATES.iter().enumerate() {
        let (outcome, _) = replay(&hosted, &schedule, rate, cfg.seed, Some(&reference));
        let goodput = outcome.completed as f64 / schedule.len() as f64;
        let mut sorted = outcome.latencies.clone();
        sorted.sort();
        let p50 = percentile(&sorted, 0.50);
        let p99 = percentile(&sorted, 0.99);
        if rate == 0.0 {
            assert_eq!(outcome.faults, 0, "quiet schedule must inject nothing");
            assert!((goodput - 1.0).abs() < 1e-9);
        }
        t.row(vec![
            format!("{rate:.2}"),
            format!("{:.1}%", goodput * 100.0),
            format!("{:.3}", ms(p50)),
            format!("{:.3}", ms(p99)),
            outcome.retries.to_string(),
            outcome.faults.to_string(),
            "identical".to_string(),
        ]);
        if ri > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{ \"fault_rate\": {rate:.2}, \"goodput\": {goodput:.4}, \
             \"p50_ms\": {:.5}, \"p99_ms\": {:.5}, \"retries\": {}, \
             \"faults_injected\": {}, \"answers_identical\": true }}",
            ms(p50),
            ms(p99),
            outcome.retries,
            outcome.faults,
        ));
    }
    json.push_str(&format!(
        "\n  ],\n  \"replay_len\": {REPLAY_LEN},\n  \"distinct_queries\": {},\n  \
         \"retry_budget\": 6\n}}\n",
        QUERIES.len()
    ));

    // Anchor to the workspace root so the trajectory file lands in the same
    // place no matter the working directory (cargo run vs. cargo test).
    if cfg.write_root_artifacts {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e18_faults.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e18: could not write {out}: {e}");
        }
    }
    vec![t]
}
