//! E20 — extension: pipelined event-loop serving at 100 simulated clients.
//!
//! Not a paper figure: the paper's client/server split pays a full round
//! trip per query, so at scale the serve loop — not crypto — bounds
//! throughput. This experiment replays the E14/E16-style Zipf workload
//! from 100 concurrent connections against one hospital database under
//! four serving modes:
//!
//! * **baseline** — the thread-per-connection blocking loop, given one
//!   worker per client (its natural scaling mode, and its cost);
//! * **evloop-serial** — the readiness-based event loop with a small
//!   worker pool, one request in flight per connection;
//! * **evloop-pipelined** — same loop, every connection submits its whole
//!   schedule before reading the first reply (N in flight, correlated by
//!   the echoed request ids);
//! * **evloop-batch** — same loop, the schedule submitted as v5 `Batch`
//!   frames sharing one admission + cache-probe pass per group.
//!
//! Every reply is decrypted and checked against in-process reference
//! answers — the experiment *fails* on a dropped or wrong answer, so the
//! reported throughput is verified goodput. The latency metric is the
//! amortized per-query time on each connection (connection wall time over
//! queries carried): the quantity pipelining actually improves, since a
//! pipelined window trades per-query round trips for one shared flush.
//! Results land in `BENCH_e20_pipeline.json`.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::codec::Message;
use exq_core::evloop::serve_event;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::tenant::TenantRegistry;
use exq_core::transport::{serve_multi, Pipeline, ServeConfig, ServeHandle};
use exq_core::Client;
use exq_workload::hospital;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simulated clients (concurrent connections), `EXQ_E20_CLIENTS` env
/// override (default 100). The drivers below multiplex them over a thread
/// pool, so 1000 connections do not need 1000 driver threads — and since
/// the serve paths re-`listen(2)` with a widened kernel backlog, a burst
/// of 1000 simultaneous connects no longer overflows the SYN queue.
fn clients() -> usize {
    std::env::var("EXQ_E20_CLIENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(100)
        .max(1)
}
/// Queries per connection (one Zipf draw each).
const QUERIES_PER_CONN: usize = 20;
/// Driver threads multiplexing the client connections.
const DRIVERS: usize = 8;
/// Items per v5 `Batch` frame in the batch mode.
const BATCH: usize = 10;
/// Worker pool for the event-loop modes. Deliberately small: the point is
/// that 100 connections do not need 100 threads.
const EVLOOP_WORKERS: usize = 8;

const QUERIES: &[&str] = &[
    "//patient/pname",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//treat[disease = 'flu']/doctor",
    "//insurance/policy",
];

/// Deterministic Zipf(1) schedule (same generator family as E16/E19).
fn zipf_schedule(n_queries: usize, len: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..n_queries).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut pick = n_queries - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = r;
                break;
            }
        }
        out.push(pick);
    }
    out
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[derive(Clone, Copy)]
enum Mode {
    Serial,
    Pipelined,
    Batch,
}

struct ModeOutcome {
    completed: usize,
    dropped: usize,
    mismatched: usize,
    /// Amortized per-query latencies (conn wall / queries carried), one
    /// sample per query.
    latencies: Vec<Duration>,
    wall: Duration,
}

/// One connection's exchange: submits this connection's schedule in the
/// mode's window shape, returns (wall, replies). The wall covers the whole
/// exchange — submits, replies, and nothing else; decrypt/verify happens
/// outside so every mode is charged identically for it.
fn run_conn(
    addr: SocketAddr,
    mode: Mode,
    reqs: &[Message],
) -> Result<(Duration, Vec<Message>), exq_core::CoreError> {
    let mut pipe = Pipeline::connect_default(addr)?;
    let started = Instant::now();
    let replies = match mode {
        Mode::Serial => {
            let mut replies = Vec::with_capacity(reqs.len());
            for req in reqs {
                let id = pipe.submit(req)?;
                let (rid, reply) = pipe.recv()?;
                debug_assert_eq!(rid, id);
                replies.push(reply);
            }
            replies
        }
        Mode::Pipelined => pipe.roundtrip_many(reqs)?,
        Mode::Batch => {
            let mut replies = Vec::with_capacity(reqs.len());
            for chunk in reqs.chunks(BATCH) {
                replies.extend(pipe.batch(chunk)?);
            }
            replies
        }
    };
    Ok((started.elapsed(), replies))
}

/// Runs one serving mode: `clients` connections multiplexed over DRIVERS
/// threads, every answer decrypted and checked against `references`.
#[allow(clippy::too_many_arguments)]
fn run_mode(
    cfg: &ExpConfig,
    handle: &ServeHandle,
    mode: Mode,
    client: &Client,
    requests: &[Message],
    references: &[Vec<String>],
    clients: usize,
) -> ModeOutcome {
    let addr = handle.addr();
    let started = Instant::now();
    let drivers: Vec<_> = (0..DRIVERS)
        .map(|d| {
            let client = client.clone();
            let requests = requests.to_vec();
            let references = references.to_vec();
            let seed = cfg.seed;
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let (mut completed, mut dropped, mut mismatched) = (0usize, 0usize, 0usize);
                // Driver d owns connections d, d+DRIVERS, d+2·DRIVERS, …
                for conn in (d..clients).step_by(DRIVERS) {
                    let schedule =
                        zipf_schedule(QUERIES.len(), QUERIES_PER_CONN, seed ^ (conn as u64) << 3);
                    let reqs: Vec<Message> =
                        schedule.iter().map(|&qi| requests[qi].clone()).collect();
                    let (wall, replies) = match run_conn(addr, mode, &reqs) {
                        Ok(out) => out,
                        Err(_) => {
                            dropped += reqs.len();
                            continue;
                        }
                    };
                    for (&qi, reply) in schedule.iter().zip(&replies) {
                        let ok = match reply {
                            Message::Answer(resp) => client
                                .post_process(
                                    &client.translate(QUERIES[qi]).unwrap().post_query,
                                    resp,
                                )
                                .map(|post| post.results == references[qi])
                                .unwrap_or(false),
                            _ => false,
                        };
                        if ok {
                            completed += 1;
                        } else {
                            mismatched += 1;
                        }
                    }
                    dropped += reqs.len().saturating_sub(replies.len());
                    let amortized = wall / reqs.len().max(1) as u32;
                    latencies.extend(std::iter::repeat_n(amortized, replies.len()));
                }
                (completed, dropped, mismatched, latencies)
            })
        })
        .collect();

    let mut outcome = ModeOutcome {
        completed: 0,
        dropped: 0,
        mismatched: 0,
        latencies: Vec::new(),
        wall: Duration::ZERO,
    };
    for driver in drivers {
        let (completed, dropped, mismatched, latencies) = driver.join().unwrap();
        outcome.completed += completed;
        outcome.dropped += dropped;
        outcome.mismatched += mismatched;
        outcome.latencies.extend(latencies);
    }
    outcome.wall = started.elapsed();
    outcome.latencies.sort();
    outcome
}

/// A fresh single-db registry from the fixed seed, so every mode serves an
/// identical database with cold caches.
fn build_registry(cfg: &ExpConfig) -> (Arc<TenantRegistry>, Client) {
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(
            &hospital::scaled(100, cfg.seed),
            &hospital::constraints(),
            SchemeKind::Opt,
            cfg.seed ^ 0x20,
        )
        .expect("outsource");
    let (client, server) = hosted.split();
    let registry = Arc::new(TenantRegistry::new("e20").unwrap());
    registry
        .create("e20", server, client.key_fingerprint(), 0)
        .unwrap();
    (registry, client)
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let clients = clients();
    // In-process reference answers, from an identically seeded database.
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(
            &hospital::scaled(100, cfg.seed),
            &hospital::constraints(),
            SchemeKind::Opt,
            cfg.seed ^ 0x20,
        )
        .expect("outsource");
    let references: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| hosted.query(q).expect("reference").results)
        .collect();
    drop(hosted);

    // The four serving modes. The baseline gets one worker per client —
    // thread-per-connection scales by spending threads; the event loop
    // makes do with EVLOOP_WORKERS.
    // The event-loop queue bound is sized for the offered load (clients
    // connections × QUERIES_PER_CONN frames can all be in flight at once
    // when pipelined); the default auto bound of 8×workers would shed the
    // burst with `Busy`, which this experiment counts as a failure.
    let evloop_config = || ServeConfig {
        workers: EVLOOP_WORKERS,
        threads: 1,
        accept_backlog: 2 * clients * QUERIES_PER_CONN,
        ..ServeConfig::default()
    };
    let modes: Vec<(&str, bool, ServeConfig, Mode)> = vec![
        (
            "baseline-thread-per-conn",
            false,
            ServeConfig {
                workers: clients,
                threads: 1,
                ..ServeConfig::default()
            },
            Mode::Serial,
        ),
        ("evloop-serial", true, evloop_config(), Mode::Serial),
        ("evloop-pipelined", true, evloop_config(), Mode::Pipelined),
        ("evloop-batch", true, evloop_config(), Mode::Batch),
    ];

    let mut t = Table::new(
        "e20_pipeline",
        &format!(
            "{clients} concurrent connections × {QUERIES_PER_CONN} Zipf draws, verified \
             answers; amortized per-query latency by serving mode"
        ),
        &[
            "mode",
            "workers",
            "queries",
            "completed",
            "dropped",
            "mismatched",
            "p50 (ms)",
            "p99 (ms)",
            "wall (ms)",
            "queries/s",
        ],
    );

    let mut json = String::from("{\n  \"experiment\": \"e20_pipeline\",\n  \"rows\": [\n");
    let mut p99_by_mode: Vec<(String, f64)> = Vec::new();
    for (i, (name, event_loop, config, mode)) in modes.into_iter().enumerate() {
        let (registry, client) = build_registry(cfg);
        let workers = config.workers;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = if event_loop {
            serve_event(listener, Arc::clone(&registry), config).unwrap()
        } else {
            serve_multi(listener, Arc::clone(&registry), config).unwrap()
        };

        // Requests are translated once — every mode replays identical
        // frames, so mode differences are purely scheduling.
        let requests: Vec<Message> = QUERIES
            .iter()
            .map(|q| {
                Message::Query(
                    client
                        .translate(q)
                        .unwrap()
                        .server_query
                        .expect("server-evaluable"),
                )
            })
            .collect();

        let out = run_mode(cfg, &handle, mode, &client, &requests, &references, clients);
        handle.shutdown();

        assert_eq!(out.dropped, 0, "{name}: dropped answers");
        assert_eq!(out.mismatched, 0, "{name}: wrong answers");
        assert_eq!(
            out.completed,
            clients * QUERIES_PER_CONN,
            "{name}: lost queries"
        );

        let p50 = percentile(&out.latencies, 0.50);
        let p99 = percentile(&out.latencies, 0.99);
        let qps = out.completed as f64 / out.wall.as_secs_f64().max(1e-9);
        t.row(vec![
            name.to_string(),
            workers.to_string(),
            (clients * QUERIES_PER_CONN).to_string(),
            out.completed.to_string(),
            out.dropped.to_string(),
            out.mismatched.to_string(),
            format!("{:.3}", ms(p50)),
            format!("{:.3}", ms(p99)),
            format!("{:.1}", ms(out.wall)),
            format!("{qps:.0}"),
        ]);
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{ \"mode\": \"{name}\", \"workers\": {workers}, \"clients\": {clients}, \
             \"queries\": {}, \"completed\": {}, \"dropped\": {}, \"mismatched\": {}, \
             \"p50_ms\": {:.5}, \"p99_ms\": {:.5}, \"wall_ms\": {:.3}, \"qps\": {qps:.1} }}",
            clients * QUERIES_PER_CONN,
            out.completed,
            out.dropped,
            out.mismatched,
            ms(p50),
            ms(p99),
            ms(out.wall),
        ));
        p99_by_mode.push((name.to_string(), ms(p99)));
    }

    let baseline_p99 = p99_by_mode[0].1;
    let pipelined_p99 = p99_by_mode
        .iter()
        .find(|(n, _)| n == "evloop-pipelined")
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN);
    let batch_p99 = p99_by_mode
        .iter()
        .find(|(n, _)| n == "evloop-batch")
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN);
    let best = pipelined_p99.min(batch_p99);
    json.push_str(&format!(
        "\n  ],\n  \"clients\": {clients},\n  \"queries_per_conn\": {QUERIES_PER_CONN},\n  \
         \"baseline_p99_ms\": {baseline_p99:.5},\n  \"pipelined_p99_ms\": {pipelined_p99:.5},\n  \
         \"batch_p99_ms\": {batch_p99:.5},\n  \"p99_speedup\": {:.3}\n}}\n",
        baseline_p99 / best.max(1e-9),
    ));

    if cfg.write_root_artifacts {
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e20_pipeline.json");
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e20: could not write {out}: {e}");
        }
    }
    vec![t]
}
