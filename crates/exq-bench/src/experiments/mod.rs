//! One module per reproduced experiment (see DESIGN.md §2 for the index).

pub mod e01_opess_distribution;
pub mod e02_division_of_work;
pub mod e03_vs_naive;
pub mod e04_fig9_schemes;
pub mod e05_fig10_saving_ratios;
pub mod e06_encryption_cost;
pub mod e07_candidate_counts;
pub mod e08_attacks;
pub mod e09_belief;
pub mod e10_cover_ablation;
pub mod e11_dsi_ablation;
pub mod e12_updates;
pub mod e13_scaling;
pub mod e14_concurrency;
pub mod e15_parallel;
pub mod e16_cache;
pub mod e17_telemetry;
pub mod e18_faults;
pub mod e19_tenants;
pub mod e20_pipeline;
pub mod e21_outofcore;
pub mod e22_storageobs;
pub mod e23_diskfaults;

use crate::report::Table;
use crate::{robust_mean, ExpConfig};
use exq_core::system::{HostedDatabase, PhaseTiming};
use std::time::Duration;

/// An experiment entry: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn(&ExpConfig) -> Vec<Table>);

/// Every experiment id with its runner and a one-line description.
pub fn registry() -> Vec<Experiment> {
    vec![
        (
            "e1",
            "Figure 6: value distribution before/after OPESS",
            e01_opess_distribution::run,
        ),
        (
            "e2",
            "§7.2: division of work between client and server",
            e02_division_of_work::run,
        ),
        (
            "e3",
            "§7.3: our approach vs the naive method",
            e03_vs_naive::run,
        ),
        (
            "e4",
            "Figure 9: query performance of the four schemes",
            e04_fig9_schemes::run,
        ),
        (
            "e5",
            "Figure 10: app/opt saving ratios over top/sub",
            e05_fig10_saving_ratios::run,
        ),
        (
            "e6",
            "§7.4: encryption time and encrypted-document size",
            e06_encryption_cost::run,
        ),
        (
            "e7",
            "Theorems 4.1/5.1/5.2: exact candidate-database counts",
            e07_candidate_counts::run,
        ),
        (
            "e8",
            "§3.3: frequency- and size-based attacks",
            e08_attacks::run,
        ),
        (
            "e9",
            "Theorem 6.1: belief under query observation",
            e09_belief::run,
        ),
        (
            "e10",
            "§4.2 ablation: exact vs approximate vertex cover",
            e10_cover_ablation::run,
        ),
        (
            "e11",
            "§5.1 ablation: DSI vs continuous interval index",
            e11_dsi_ablation::run,
        ),
        (
            "e12",
            "extension: incremental update performance (§8 future work)",
            e12_updates::run,
        ),
        (
            "e13",
            "extension: document-size scalability sweep",
            e13_scaling::run,
        ),
        (
            "e14",
            "extension: concurrent TCP clients vs one server",
            e14_concurrency::run,
        ),
        (
            "e15",
            "extension: parallel hot path — threaded decrypt and server fan-out",
            e15_parallel::run,
        ),
        (
            "e16",
            "extension: server response/range caching — hot-query replay",
            e16_cache::run,
        ),
        (
            "e17",
            "extension: telemetry overhead — traced vs untraced hot-query replay",
            e17_telemetry::run,
        ),
        (
            "e18",
            "extension: fault tolerance — goodput and latency under injected faults",
            e18_faults::run,
        ),
        (
            "e19",
            "extension: multi-tenant fairness — hot tenant vs quiet tenants behind one serve loop",
            e19_tenants::run,
        ),
        (
            "e20",
            "extension: pipelined event-loop serving — 100 connections, verified answers",
            e20_pipeline::run,
        ),
        (
            "e21",
            "extension: out-of-core paged hosting — verified answers at shrinking pool budgets",
            e21_outofcore::run,
        ),
        (
            "e22",
            "extension: storage observability — overhead, exact profile/registry reconciliation, serial≡pipelined",
            e22_storageobs::run,
        ),
        (
            "e23",
            "extension: disk-fault torture — seeded kill-and-recover cycles, availability vs injected write-fault rate",
            e23_diskfaults::run,
        ),
    ]
}

/// Robust-mean phase timings for one query measured `trials` times.
pub(crate) fn measure_query(
    hosted: &HostedDatabase,
    query: &str,
    trials: usize,
    naive: bool,
) -> (PhaseTiming, usize, usize) {
    let mut samples: Vec<PhaseTiming> = Vec::with_capacity(trials);
    let mut bytes = 0;
    let mut blocks = 0;
    for _ in 0..trials.max(1) {
        let out = if naive {
            hosted.query_naive(query).expect("query failed")
        } else {
            hosted.query(query).expect("query failed")
        };
        bytes = out.bytes_to_client;
        blocks = out.blocks_shipped;
        samples.push(out.timing);
    }
    (combine(&samples), bytes, blocks)
}

fn combine(samples: &[PhaseTiming]) -> PhaseTiming {
    let pick =
        |f: fn(&PhaseTiming) -> Duration| robust_mean(&samples.iter().map(f).collect::<Vec<_>>());
    PhaseTiming {
        client_translate: pick(|t| t.client_translate),
        server_translate: pick(|t| t.server_translate),
        server_process: pick(|t| t.server_process),
        transmit: pick(|t| t.transmit),
        decrypt: pick(|t| t.decrypt),
        post_process: pick(|t| t.post_process),
    }
}

/// Sums phase timings across a query set (the per-class aggregate the paper
/// reports).
pub(crate) fn sum_phases(list: &[PhaseTiming]) -> PhaseTiming {
    let mut out = PhaseTiming::default();
    for t in list {
        out.client_translate += t.client_translate;
        out.server_translate += t.server_translate;
        out.server_process += t.server_process;
        out.transmit += t.transmit;
        out.decrypt += t.decrypt;
        out.post_process += t.post_process;
    }
    out
}
