//! E22 — extension: storage-aware observability — overhead, exact
//! profile/registry reconciliation, and serving-mode equivalence.
//!
//! Not a paper figure: PR 9 threads a per-query [`exq_core::telemetry::QueryProfile`] through
//! both serve paths, wires the paged store's pool/WAL/checkpoint events
//! into the registry, and keeps an always-on flight recorder — and all of
//! it is only admissible if it is invisible. Three closed-loop checks:
//!
//! * **Overhead** (E17 paired-minima style): the E16/E21 Zipf replay runs
//!   over TCP against a *paged* tenant under pool pressure, pairing every
//!   draw across two configurations — `off` (`telemetry::set_enabled
//!   (false)`: observers, profiles, and flight events all gated out) and
//!   `full` (the shipping default: engine observers + per-query profiles +
//!   flight recorder). Per-(mode, draw) minima over `ROUNDS` rounds sum to
//!   the replay time; answers are asserted identical. The artifact
//!   documents the real number against the 2% target;
//!   `EXQ_E22_MAX_OVERHEAD_PCT` tightens the assertion for CI smoke runs.
//! * **Reconciliation**: with tracing on, every request's profile is both
//!   recorded as `profile.*` spans and folded into the `exq_db_*_total
//!   {db="…"}` counters by the same `note_profile` call — so the sum of
//!   per-query span values must equal the registry counter deltas
//!   *exactly*, component by component (faults, decodes, WAL bytes from
//!   real inserts, …). Any drift means a second, unattributed accounting
//!   path exists.
//! * **Equivalence**: the same schedule served serially (one request in
//!   flight) and pipelined (whole schedule submitted before the first
//!   read) must produce bit-identical answer payloads with profiling on —
//!   encoded frames compared byte-for-byte after zeroing the server's
//!   timing fields, which legitimately vary run to run.
//!
//! Results land in `BENCH_e22_storageobs.json`. `EXQ_E22_SMOKE=1` shrinks
//! the dataset for CI while keeping every assertion live.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::codec::{Message, PROTOCOL_VERSION};
use exq_core::scheme::SchemeKind;
use exq_core::store::{PagedDb, StoreOptions};
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::telemetry;
use exq_core::tenant::TenantRegistry;
use exq_core::transport::{
    serve_multi, Pipeline, ServeConfig, ServeHandle, TcpTransport, Transport,
};
use exq_core::Client;
use exq_workload::hospital;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DB: &str = "e22";

const QUERIES: &[&str] = &[
    "//patient/pname",
    "//patient[age > 40]/pname",
    "//patient[.//disease = 'flu']/pname",
    "//treat[disease = 'flu']/doctor",
    "//insurance/policy",
];

/// Every profile component: `(field, span histogram, per-db counter)`.
/// The span name is what `finish_profile` records under an active trace;
/// the counter is what `note_profile` folds into the registry.
const COMPONENTS: &[(&str, &str, &str)] = &[
    (
        "pool_hits",
        "exq_span_profile_pool_hits",
        "exq_db_pool_hits_total",
    ),
    (
        "pool_misses",
        "exq_span_profile_pool_misses",
        "exq_db_pool_misses_total",
    ),
    (
        "pages_faulted",
        "exq_span_profile_pages_faulted",
        "exq_db_pages_faulted_total",
    ),
    (
        "evictions",
        "exq_span_profile_evictions",
        "exq_db_evictions_total",
    ),
    (
        "epoch_retries",
        "exq_span_profile_epoch_retries",
        "exq_db_epoch_retries_total",
    ),
    (
        "wal_bytes",
        "exq_span_profile_wal_bytes",
        "exq_db_wal_bytes_total",
    ),
    (
        "records_decoded",
        "exq_span_profile_records_decoded",
        "exq_db_records_decoded_total",
    ),
    (
        "blocks_shipped",
        "exq_span_profile_blocks_shipped",
        "exq_db_blocks_shipped_total",
    ),
    (
        "cache_hit",
        "exq_span_profile_cache_hit",
        "exq_db_cache_hits_total",
    ),
];

fn smoke() -> bool {
    std::env::var("EXQ_E22_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// `(patients, page_size, replay_len, rounds)` — the smoke run shrinks the
/// dataset and the pairing depth but keeps the pool under pressure.
fn scale() -> (usize, usize, usize, usize) {
    if smoke() {
        (160, 1024, 24, 3)
    } else {
        (600, StoreOptions::default().page_size, 60, 7)
    }
}

/// Deterministic Zipf(1) schedule (same generator family as E16/E17/E20).
fn zipf_schedule(n_queries: usize, len: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..n_queries).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
        let mut acc = 0.0;
        let mut pick = n_queries - 1;
        for (r, w) in weights.iter().enumerate() {
            acc += w;
            if u < acc {
                pick = r;
                break;
            }
        }
        out.push(pick);
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Per-(mode, draw) paired minima over `rounds` rounds, mode order rotated
/// per draw (see E17's `measure` for the rationale: whole-replay timing
/// cannot resolve a low-percent effect under load waves; per-draw minima
/// discard preemption spikes symmetrically).
fn measure(
    client: &Client,
    tcp: &mut TcpTransport,
    schedule: &[usize],
    rounds: usize,
) -> ([Duration; 2], [Vec<Vec<String>>; 2]) {
    // Mode 0: telemetry off — observers, profiles, flight all gated out.
    // Mode 1: full instrumentation, the shipping default.
    let mut draw_best = [(); 2].map(|_| vec![Duration::MAX; schedule.len()]);
    let mut answers: [Vec<Vec<String>>; 2] = Default::default();
    for round in 0..rounds {
        let mut got: [Vec<Vec<String>>; 2] = Default::default();
        for (di, &qi) in schedule.iter().enumerate() {
            for k in 0..2 {
                let mi = (di + round + k) % 2;
                telemetry::set_enabled(mi == 1);
                let started = Instant::now();
                let out = client.query_via(tcp, QUERIES[qi]).expect("query");
                draw_best[mi][di] = draw_best[mi][di].min(started.elapsed());
                got[mi].push(out.results);
            }
        }
        for (mi, mode_answers) in got.into_iter().enumerate() {
            if round == 0 {
                answers[mi] = mode_answers;
            } else {
                assert_eq!(
                    mode_answers, answers[mi],
                    "mode {mi}: answers drifted between rounds"
                );
            }
        }
    }
    telemetry::set_enabled(true);
    (draw_best.map(|per_draw| per_draw.iter().sum()), answers)
}

/// Answer frames with run-varying metadata zeroed: the server's measured
/// timings (and trace spans) legitimately differ between runs; everything
/// else — pruned document, sealed blocks, cache flag — must not.
fn canonical_bytes(msg: &Message) -> Vec<u8> {
    let mut m = msg.clone();
    if let Message::Answer(resp) = &mut m {
        resp.translate_time = Duration::ZERO;
        resp.process_time = Duration::ZERO;
        resp.spans.clear();
    }
    m.encode_frame_req(PROTOCOL_VERSION, 0, 0)
}

/// Builds the sealed hospital database, migrates it into a paged store
/// under pool pressure (budget = disk/4), and serves it as tenant `e22`.
fn serve_paged(
    cfg: &ExpConfig,
    dir: &std::path::Path,
    patients: usize,
    page_size: usize,
) -> (ServeHandle, Client) {
    let hosted = Outsourcer::new(OutsourceConfig::default())
        .outsource(
            &hospital::scaled(patients, cfg.seed),
            &hospital::constraints(),
            SchemeKind::Opt,
            cfg.seed ^ 0x22,
        )
        .expect("outsource");
    let (mut client, resident) = hosted.split();
    client.set_threads(1);
    let legacy = dir.join("db.exq");
    if !PagedDb::pages_dir(&legacy).exists() {
        resident.save(&legacy).unwrap();
    }
    // Learn the footprint at a full budget, then reopen at a quarter of it
    // so the replay faults and evicts — the events being instrumented.
    let opts_full = StoreOptions {
        page_size,
        cache_bytes: usize::MAX / 2,
    };
    let (_s, db, _) = PagedDb::open_or_migrate(&legacy, DB, opts_full).unwrap();
    let disk_bytes = db.footprint().disk_bytes as usize;
    drop(_s);
    drop(db);
    let opts = StoreOptions {
        page_size,
        cache_bytes: disk_bytes / 4,
    };
    let (mut server, _db, _) = PagedDb::open(&PagedDb::pages_dir(&legacy), DB, opts).unwrap();
    server.set_threads(1);
    let registry = Arc::new(TenantRegistry::new(DB).unwrap());
    registry
        .create(DB, server, client.key_fingerprint(), 0)
        .unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    // Response caching off (the serve loop applies this to every hosted
    // server): each query must walk the paged store, so the profile
    // components under test are actually exercised.
    let config = ServeConfig {
        cache_entries: Some(0),
        ..ServeConfig::default()
    };
    let handle = serve_multi(listener, registry, config).unwrap();
    (handle, client)
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let (patients, page_size, replay_len, rounds) = scale();
    let dir = std::env::temp_dir().join(format!("exq-e22-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let (handle, mut client) = serve_paged(cfg, &dir, patients, page_size);
    let mut tcp = TcpTransport::connect_default(handle.addr())
        .unwrap()
        .with_db(DB)
        .unwrap();
    let schedule = zipf_schedule(QUERIES.len(), replay_len, cfg.seed ^ 0x22);

    // ---- Part 1: overhead, paired per draw. Warm-up replay first so both
    // modes see the identical steady pool state.
    for &qi in &schedule {
        let _ = client.query_via(&mut tcp, QUERIES[qi]).expect("warm-up");
    }
    let ([off_time, full_time], [off_answers, full_answers]) =
        measure(&client, &mut tcp, &schedule, rounds);
    assert_eq!(
        full_answers, off_answers,
        "instrumentation changed an answer"
    );
    let overhead = (full_time.as_secs_f64() / off_time.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    // Generous sanity bound by default (the artifact documents the real
    // number against the 2% target); CI smoke runs tighten it via env.
    let max_overhead: f64 = std::env::var("EXQ_E22_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50.0);
    assert!(
        overhead < max_overhead,
        "full instrumentation {overhead:.2}% over telemetry-off (bound {max_overhead}%) — \
         the storage observers are no longer hot-path cheap"
    );

    let mut t_over = Table::new(
        "e22_overhead",
        &format!(
            "{patients}-patient paged tenant (pool at 1/4 of disk), {replay_len} Zipf draws \
             over TCP; per-draw min over {rounds} rounds, response cache off"
        ),
        &["config", "replay wall (ms)", "overhead", "answers"],
    );
    t_over.row(vec![
        "off".into(),
        format!("{:.3}", ms(off_time)),
        "+0.00%".into(),
        "identical".into(),
    ]);
    t_over.row(vec![
        "full (observers + profiles + flight)".into(),
        format!("{:.3}", ms(full_time)),
        format!("{overhead:+.2}%"),
        "identical".into(),
    ]);

    // ---- Part 2: exact reconciliation. Every traced request records its
    // profile twice — as `profile.*` spans and into the per-db counters —
    // from one `note_profile` call; the two accounts must agree exactly.
    let before: Vec<(u64, u64)> = COMPONENTS
        .iter()
        .map(|(_, span, counter)| {
            (
                telemetry::histogram(span).sum_nanos(),
                telemetry::counter(&telemetry::db_series(counter, DB)).get(),
            )
        })
        .collect();
    telemetry::set_trace_all(true);
    for &qi in schedule.iter().take(20) {
        let _ = client
            .query_via(&mut tcp, QUERIES[qi])
            .expect("traced query");
    }
    for i in 0..2u64 {
        let record = format!(
            "<patient><pname>Obs{i}</pname><SSN>9224{i}</SSN><age>41</age>\
             <insurance><policy coverage=\"9000\">2200{i}</policy></insurance></patient>"
        );
        client
            .insert_via(&mut tcp, "/hospital", &record, cfg.seed ^ (0x220 + i))
            .expect("traced insert");
    }
    telemetry::set_trace_all(false);

    let mut t_rec = Table::new(
        "e22_reconcile",
        "per-query profile totals (profile.* span sums) vs per-db registry counters, \
         20 traced queries + 2 traced inserts against the paged tenant",
        &[
            "component",
            "Σ per-query profile",
            "registry delta",
            "verdict",
        ],
    );
    let mut rec_rows = Vec::new();
    for ((field, span, counter), (span_before, ctr_before)) in COMPONENTS.iter().zip(&before) {
        let span_total = telemetry::histogram(span).sum_nanos() - span_before;
        let ctr_total = telemetry::counter(&telemetry::db_series(counter, DB)).get() - ctr_before;
        assert_eq!(
            span_total, ctr_total,
            "{field}: per-query profile totals diverge from the registry — \
             an unattributed accounting path exists"
        );
        t_rec.row(vec![
            field.to_string(),
            span_total.to_string(),
            ctr_total.to_string(),
            "exact".into(),
        ]);
        rec_rows.push(format!(
            "    {{ \"component\": \"{field}\", \"profile_total\": {span_total}, \
             \"registry_delta\": {ctr_total}, \"exact\": true }}"
        ));
    }
    let faulted = telemetry::counter(&telemetry::db_series("exq_db_pages_faulted_total", DB));
    let decoded = telemetry::counter(&telemetry::db_series("exq_db_records_decoded_total", DB));
    let wal = telemetry::counter(&telemetry::db_series("exq_db_wal_bytes_total", DB));
    assert!(faulted.get() > 0, "pool pressure produced no page faults");
    assert!(decoded.get() > 0, "no records decoded through the profile");
    assert!(wal.get() > 0, "inserts appended no attributed WAL bytes");

    // The flight recorder ran through all of the above: its dump must be
    // fetchable over the wire and valid JSON lines.
    let dump = tcp.flight_dump().expect("flight dump");
    let events = exq_core::flight::validate_json_lines(&dump).expect("valid JSON lines");
    assert!(events > 0, "flight recorder captured nothing");
    assert!(
        dump.contains("\"event\":\"admit\""),
        "no admissions recorded"
    );
    drop(tcp);
    handle.shutdown();

    // ---- Part 3: serial ≡ pipelined with profiling on. Two fresh opens
    // of the same paged state (cold caches both), the same translated
    // frames, compared frame-for-frame after zeroing timing metadata.
    let requests: Vec<Message> = {
        let sched = zipf_schedule(QUERIES.len(), replay_len.min(30), cfg.seed ^ 0x2203);
        sched
            .iter()
            .map(|&qi| {
                Message::Query(
                    client
                        .translate(QUERIES[qi])
                        .unwrap()
                        .server_query
                        .expect("server-evaluable"),
                )
            })
            .collect()
    };
    let mut replies: Vec<Vec<Message>> = Vec::new();
    for serial in [true, false] {
        let (handle, _client) = serve_paged(cfg, &dir, patients, page_size);
        let mut pipe = Pipeline::connect_default(handle.addr())
            .unwrap()
            .with_db(DB)
            .unwrap();
        let got = if serial {
            let mut out = Vec::with_capacity(requests.len());
            for req in &requests {
                let id = pipe.submit(req).unwrap();
                let (rid, reply) = pipe.recv().unwrap();
                assert_eq!(rid, id);
                out.push(reply);
            }
            out
        } else {
            pipe.roundtrip_many(&requests).unwrap()
        };
        drop(pipe);
        handle.shutdown();
        replies.push(got);
    }
    assert_eq!(replies[0].len(), replies[1].len(), "pipelined lost replies");
    let mut answer_count = 0usize;
    for (i, (serial, pipelined)) in replies[0].iter().zip(&replies[1]).enumerate() {
        assert!(
            matches!(serial, Message::Answer(_)),
            "draw {i}: serial reply was not an Answer"
        );
        answer_count += 1;
        assert_eq!(
            canonical_bytes(serial),
            canonical_bytes(pipelined),
            "draw {i}: serial and pipelined answers diverged with profiling on"
        );
    }

    let mut t_pipe = Table::new(
        "e22_pipeline_equiv",
        "identical translated frames served one-at-a-time vs fully pipelined, \
         profiling on; encoded answers compared byte-for-byte (timings zeroed)",
        &["mode", "answers", "verdict"],
    );
    t_pipe.row(vec![
        "serial".into(),
        answer_count.to_string(),
        "reference".into(),
    ]);
    t_pipe.row(vec![
        "pipelined".into(),
        answer_count.to_string(),
        "bit-identical".into(),
    ]);

    if cfg.write_root_artifacts {
        let json = format!(
            "{{\n  \"experiment\": \"e22_storageobs\",\n  \"target_overhead_pct\": 2.0,\n  \
             \"patients\": {patients},\n  \"replay_len\": {replay_len},\n  \"rounds\": {rounds},\n  \
             \"overhead\": {{ \"off_ms\": {:.5}, \"full_ms\": {:.5}, \
             \"overhead_pct\": {overhead:.3}, \"answers_identical\": true }},\n  \
             \"reconciliation\": [\n{}\n  ],\n  \
             \"flight_events\": {events},\n  \
             \"pipeline_equivalence\": {{ \"answers\": {answer_count}, \
             \"bit_identical\": true }}\n}}\n",
            ms(off_time),
            ms(full_time),
            rec_rows.join(",\n"),
        );
        let out = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_e22_storageobs.json"
        );
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e22: could not write {out}: {e}");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    vec![t_over, t_rec, t_pipe]
}
