//! E23 — extension: disk-fault torture — crash-consistency cycles and
//! availability/goodput under injected storage faults.
//!
//! Not a paper figure: PR 10 gives the paged engine a pluggable VFS with a
//! deterministic fault injector ([`exq_store::FaultVfs`]), a self-healing
//! scrubber, and per-db degraded modes. This experiment closes the loop on
//! both halves of that contract:
//!
//! * **Kill-and-recover cycles**: the engine runs entirely on the
//!   in-memory fault VFS; every cycle arms a seeded power cut at a random
//!   VFS operation inside a mutation + checkpoint script, then revives,
//!   reopens, and verifies the recovered image against a fault-free
//!   in-memory twin. The bar is absolute: zero acknowledged-mutation
//!   loss, every recovered state bit-identical to the twin at the acked
//!   prefix (or prefix+1 when the cut landed after an in-flight
//!   mutation's WAL fsync — durable-but-unacked is legal, partial never).
//! * **Availability vs fault rate**: a paged tenant served over real TCP
//!   while the VFS fails a swept per-mille of all writes — up to and
//!   including 100%, the acceptance case. Mutations that lose their WAL
//!   append flip the db Degraded and are shed with the typed
//!   `Unavailable` error; a `tend` pass (the checkpointer's health loop)
//!   re-probes and heals between attempts. Reads must keep flowing the
//!   whole time: read availability is asserted against a floor
//!   (`EXQ_E23_MIN_AVAILABILITY`, default 0.95) at every fault rate.
//!
//! Results land in `BENCH_e23_diskfaults.json`. `EXQ_E23_SMOKE=1` bounds
//! both loops for CI while keeping every assertion live.

use crate::report::Table;
use crate::ExpConfig;
use exq_core::constraints::SecurityConstraint;
use exq_core::scheme::SchemeKind;
use exq_core::store::{checkpoint_once, tend, PagedDb, StoreOptions};
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::tenant::{DbHealth, TenantRegistry};
use exq_core::transport::{serve_multi, ServeConfig, TcpTransport};
use exq_core::{Client, CoreError, Server};
use exq_store::{FaultConfig, FaultVfs};
use exq_xml::Document;
use std::net::TcpListener;
use std::path::Path;
use std::sync::{Arc, RwLock};
use std::time::Instant;

const DB: &str = "e23";

fn smoke() -> bool {
    std::env::var("EXQ_E23_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// `(kill_cycles, ops_per_rate)` — smoke bounds both loops for CI.
fn scale() -> (u64, usize) {
    if smoke() {
        (40, 32)
    } else {
        (200, 120)
    }
}

fn availability_floor() -> f64 {
    std::env::var("EXQ_E23_MIN_AVAILABILITY")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hosted(seed: u64) -> (Client, Server) {
    let doc = Document::parse(
        r#"<hospital>
            <patient><pname>Betty</pname><SSN>763895</SSN><age>35</age>
              <insurance><policy coverage="1000000">34221</policy></insurance></patient>
            <patient><pname>Matt</pname><SSN>276543</SSN><age>40</age>
              <insurance><policy coverage="5000">78543</policy></insurance></patient>
            <patient><pname>Zoe</pname><SSN>112358</SSN><age>29</age>
              <insurance><policy coverage="10000">91111</policy></insurance></patient>
           </hospital>"#,
    )
    .unwrap();
    let cs = vec![
        SecurityConstraint::parse("//insurance").unwrap(),
        SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
    ];
    Outsourcer::new(OutsourceConfig::default())
        .outsource(&doc, &cs, SchemeKind::Opt, seed)
        .unwrap()
        .split()
}

fn tiny_opts() -> StoreOptions {
    StoreOptions {
        page_size: 256,
        cache_bytes: 8192,
    }
}

const SCRIPT: &[&str] = &[
    "<patient><pname>Ada</pname><SSN>999111</SSN><age>36</age></patient>",
    "<patient><pname>Lin</pname><SSN>555000</SSN><age>50</age></patient>",
    "<patient><pname>Sam</pname><SSN>123987</SSN><age>61</age></patient>",
];

fn apply(client: &mut Client, server: &mut Server, i: usize) -> Result<(), CoreError> {
    client
        .insert(server, "/hospital", SCRIPT[i], 5 + i as u64)
        .map(|_| ())
}

/// One fault-free pass to size the kill window (VFS ops the script spans).
fn probe_ops(base_server: &[u8], base_client: &[u8]) -> u64 {
    let vfs = FaultVfs::new(0);
    let mut server = Server::load_bytes(base_server).unwrap();
    let mut client = Client::load_bytes(base_client).unwrap();
    let _db = PagedDb::attach_new_with(
        &mut server,
        Arc::new(vfs.clone()),
        Path::new("/db"),
        DB,
        tiny_opts(),
    )
    .unwrap();
    let start = vfs.ops();
    let lock = RwLock::new(server);
    for i in 0..SCRIPT.len() {
        apply(&mut client, &mut lock.write().unwrap(), i).unwrap();
        if i == 1 {
            checkpoint_once(&lock).unwrap();
        }
    }
    checkpoint_once(&lock).unwrap();
    vfs.ops() - start
}

struct CycleStats {
    cycles: u64,
    crashed: u64,
    durable_unacked: u64,
}

/// The kill-and-recover loop; panics on any acked loss or twin divergence.
fn kill_cycles(cycles: u64, base_server: &[u8], base_client: &[u8]) -> CycleStats {
    let window = probe_ops(base_server, base_client);
    let mut stats = CycleStats {
        cycles,
        crashed: 0,
        durable_unacked: 0,
    };
    for cycle in 0..cycles {
        let vfs = FaultVfs::new(cycle);
        let mut server = Server::load_bytes(base_server).unwrap();
        let mut client = Client::load_bytes(base_client).unwrap();
        let mut twin_client = Client::load_bytes(base_client).unwrap();
        let mut twin = Server::load_bytes(base_server).unwrap();
        let db = PagedDb::attach_new_with(
            &mut server,
            Arc::new(vfs.clone()),
            Path::new("/db"),
            DB,
            tiny_opts(),
        )
        .unwrap();
        vfs.crash_at_op(vfs.ops() + 1 + splitmix(cycle) % window);

        let lock = RwLock::new(server);
        let mut acked = 0usize;
        let mut in_flight = None;
        for i in 0..SCRIPT.len() {
            match apply(&mut client, &mut lock.write().unwrap(), i) {
                Ok(()) => {
                    apply(&mut twin_client, &mut twin, i).unwrap();
                    acked += 1;
                }
                Err(_) => {
                    in_flight = Some(i);
                    break;
                }
            }
            if i == 1 {
                let _ = checkpoint_once(&lock);
            }
        }
        if in_flight.is_none() {
            let _ = checkpoint_once(&lock);
        }
        if vfs.crashed() {
            stats.crashed += 1;
        }
        drop(lock);
        drop(db);

        vfs.revive();
        let (recovered, _rdb, _) =
            PagedDb::open_with(Arc::new(vfs.clone()), Path::new("/db"), DB, tiny_opts())
                .unwrap_or_else(|e| panic!("cycle {cycle}: recovery open failed: {e}"));
        let got = recovered.save_bytes().unwrap();
        let aligned = if got == twin.save_bytes().unwrap() {
            true
        } else if let Some(i) = in_flight {
            apply(&mut twin_client, &mut twin, i).unwrap();
            let durable = got == twin.save_bytes().unwrap();
            if durable {
                stats.durable_unacked += 1;
            }
            durable
        } else {
            false
        };
        assert!(
            aligned,
            "cycle {cycle}: recovered state matches neither {acked} acked \
             mutations nor acked+in-flight — an acknowledged mutation was lost \
             or a partial one surfaced"
        );
    }
    assert!(
        stats.crashed > cycles / 2,
        "only {}/{cycles} cycles saw a power cut — the kill window missed",
        stats.crashed
    );
    stats
}

struct RateStats {
    reads: u64,
    reads_ok: u64,
    mut_ok: u64,
    mut_shed: u64,
    mut_failed: u64,
    goodput: f64,
    degraded_seen: bool,
}

/// One availability sweep point: `ops` read/mutate operations over TCP with
/// `per_mille` of all VFS writes failing, `tend` healing after each trip.
#[allow(clippy::too_many_lines)]
fn sweep_rate(seed: u64, per_mille: u16, ops: usize) -> RateStats {
    let (mut client, server0) = hosted(seed);
    let mut server = Server::load_bytes(&server0.save_bytes().unwrap()).unwrap();
    let vfs = FaultVfs::new(seed ^ u64::from(per_mille));
    let _db = PagedDb::attach_new_with(
        &mut server,
        Arc::new(vfs.clone()),
        Path::new("/db"),
        DB,
        tiny_opts(),
    )
    .unwrap();
    let shared = Arc::new(RwLock::new(server));
    let registry = Arc::new(TenantRegistry::single(DB, Arc::clone(&shared)).unwrap());
    let tenant = registry.tenants().pop().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let handle = serve_multi(listener, Arc::clone(&registry), ServeConfig::default()).unwrap();
    let mut tcp = TcpTransport::connect_default(handle.addr()).unwrap();

    let baseline = client
        .query_via(&mut tcp, "//patient/pname")
        .expect("baseline read")
        .results;

    vfs.set_config(FaultConfig {
        write_err_per_mille: per_mille,
        ..FaultConfig::default()
    });
    let mut stats = RateStats {
        reads: 0,
        reads_ok: 0,
        mut_ok: 0,
        mut_shed: 0,
        mut_failed: 0,
        goodput: 0.0,
        degraded_seen: false,
    };
    let mut expected = baseline.len();
    let started = Instant::now();
    for i in 0..ops {
        if i % 4 == 3 {
            let record = format!(
                "<patient><pname>P{per_mille}x{i}</pname>\
                 <SSN>5{per_mille:03}{i:04}</SSN><age>33</age></patient>"
            );
            match client.insert_via(&mut tcp, "/hospital", &record, seed ^ (i as u64) << 4) {
                Ok(_) => {
                    stats.mut_ok += 1;
                    expected += 1;
                }
                Err(e) if format!("{e}").contains("unavailable") => stats.mut_shed += 1,
                Err(_) => stats.mut_failed += 1,
            }
            if tenant.health() != DbHealth::Healthy {
                stats.degraded_seen = true;
                // The checkpointer's health loop: probe the disk, recover
                // the db read-write if the probe holds.
                tend(&tenant);
            }
        } else {
            stats.reads += 1;
            match client.query_via(&mut tcp, "//patient/pname") {
                // A failed mutation was rejected by the server; acked
                // inserts (and only those) must be visible to readers.
                Ok(out) if out.results.len() == expected => stats.reads_ok += 1,
                Ok(_) | Err(_) => {}
            }
        }
    }
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    stats.goodput = (stats.reads_ok + stats.mut_ok) as f64 / wall;
    vfs.set_config(FaultConfig::default());
    handle.shutdown();
    stats
}

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let (cycles, ops_per_rate) = scale();
    let floor = availability_floor();

    // ---- Part 1: seeded kill-and-recover cycles.
    let (client0, server0) = hosted(cfg.seed ^ 0x23);
    let base_server = server0.save_bytes().unwrap();
    let base_client = client0.save_bytes();
    let stats = kill_cycles(cycles, &base_server, &base_client);

    let mut t_kill = Table::new(
        "e23_crash_cycles",
        &format!(
            "seeded power cut at a random VFS op inside a 3-mutation + checkpoint \
             script, revive, reopen, verify vs a fault-free twin ({cycles} cycles)"
        ),
        &[
            "cycles",
            "power cuts",
            "acked lost",
            "durable-unacked",
            "verdict",
        ],
    );
    t_kill.row(vec![
        stats.cycles.to_string(),
        stats.crashed.to_string(),
        "0".into(),
        stats.durable_unacked.to_string(),
        "bit-identical".into(),
    ]);

    // ---- Part 2: availability and goodput vs injected write-fault rate.
    let rates: &[u16] = if smoke() {
        &[0, 50, 1000]
    } else {
        &[0, 10, 50, 200, 1000]
    };
    let mut t_avail = Table::new(
        "e23_availability",
        &format!(
            "paged tenant over TCP, {ops_per_rate} ops per rate (1 insert per 4 reads); \
             write faults injected at the VFS, `tend` heals between mutation attempts; \
             read availability floor {floor}"
        ),
        &[
            "write faults (‰)",
            "reads ok",
            "availability",
            "inserts ok",
            "shed (unavailable)",
            "failed",
            "goodput (ops/s)",
        ],
    );
    let mut rate_rows = Vec::new();
    for (ri, &per_mille) in rates.iter().enumerate() {
        let s = sweep_rate(cfg.seed ^ 0x2300 ^ ri as u64, per_mille, ops_per_rate);
        let availability = s.reads_ok as f64 / (s.reads as f64).max(1.0);
        assert!(
            availability >= floor,
            "{per_mille}‰ write faults: read availability {availability:.3} fell \
             below the {floor} floor — degraded mode is not protecting reads"
        );
        if per_mille == 1000 {
            assert_eq!(
                s.mut_ok, 0,
                "100% write failure must not acknowledge any mutation"
            );
            assert!(
                s.degraded_seen,
                "100% write failure never flipped the db Degraded"
            );
        }
        t_avail.row(vec![
            per_mille.to_string(),
            format!("{}/{}", s.reads_ok, s.reads),
            format!("{availability:.3}"),
            s.mut_ok.to_string(),
            s.mut_shed.to_string(),
            s.mut_failed.to_string(),
            format!("{:.1}", s.goodput),
        ]);
        rate_rows.push(format!(
            "    {{ \"write_err_per_mille\": {per_mille}, \"reads\": {}, \
             \"reads_ok\": {}, \"availability\": {availability:.4}, \
             \"mutations_ok\": {}, \"mutations_shed\": {}, \"mutations_failed\": {}, \
             \"goodput_ops_per_s\": {:.2}, \"degraded_seen\": {} }}",
            s.reads, s.reads_ok, s.mut_ok, s.mut_shed, s.mut_failed, s.goodput, s.degraded_seen
        ));
    }

    if cfg.write_root_artifacts {
        let json = format!(
            "{{\n  \"experiment\": \"e23_diskfaults\",\n  \"smoke\": {},\n  \
             \"crash_cycles\": {{ \"cycles\": {}, \"power_cuts\": {}, \
             \"acked_mutations_lost\": 0, \"durable_unacked\": {}, \
             \"bit_identical_vs_twin\": true }},\n  \
             \"availability_floor\": {floor},\n  \"rates\": [\n{}\n  ]\n}}\n",
            smoke(),
            stats.cycles,
            stats.crashed,
            stats.durable_unacked,
            rate_rows.join(",\n"),
        );
        let out = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_e23_diskfaults.json"
        );
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("e23: could not write {out}: {e}");
        }
    }

    vec![t_kill, t_avail]
}
