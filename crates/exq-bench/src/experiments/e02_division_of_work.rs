//! E2 — §7.2: division of work between client and server.
//!
//! Paper shape: translation times (client and server) are negligible next to
//! server processing; decryption is the largest client factor; server
//! processing time exceeds client processing time; transmission is
//! negligible at 100 Mbps.

use crate::experiments::{measure_query, sum_phases};
use crate::report::{fmt_duration, Table};
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_workload::{generate_queries, QueryClass};

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let ds = Dataset::nasa(cfg);
    let hosted = ds.host(SchemeKind::Opt, cfg.seed);
    let mut t = Table::new(
        "e2_division_of_work",
        "§7.2 division of work (NASA-like, opt scheme; sums over the class's queries)",
        &[
            "class",
            "client translate",
            "server translate",
            "server process",
            "transmit",
            "decrypt",
            "client post",
        ],
    );
    for class in QueryClass::ALL {
        let queries = generate_queries(&ds.doc, class, cfg.query_count, cfg.seed);
        let phases: Vec<_> = queries
            .iter()
            .map(|q| measure_query(&hosted, q, cfg.trials, false).0)
            .collect();
        let s = sum_phases(&phases);
        t.row(vec![
            class.name().to_owned(),
            fmt_duration(s.client_translate),
            fmt_duration(s.server_translate),
            fmt_duration(s.server_process),
            fmt_duration(s.transmit),
            fmt_duration(s.decrypt),
            fmt_duration(s.post_process),
        ]);
    }
    vec![t]
}
