//! E9 — Theorem 6.1: the attacker's belief that a captured association holds
//! in a given block must not increase as queries and responses are observed.

use crate::report::Table;
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::analysis::belief::BeliefTracker;
use exq_core::scheme::SchemeKind;
use exq_workload::{generate_queries, QueryClass};

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let small = ExpConfig {
        size_bytes: cfg.size_bytes.min(512 * 1024),
        ..cfg.clone()
    };
    let ds = Dataset::nasa(&small);
    let hosted = ds.host(SchemeKind::Opt, cfg.seed);

    // Attacker parameters from the hosted value indexes.
    let state = hosted.client.state();
    let k = state
        .opess
        .values()
        .map(|a| a.plan.entries().len() as u64)
        .max()
        .unwrap_or(2)
        .max(2);
    let n = hosted
        .server
        .metadata()
        .value_indexes
        .values()
        .map(|t| t.key_histogram().len() as u64)
        .max()
        .unwrap_or(k)
        .max(k);

    // Drive a real query stream through the server while tracking belief.
    let mut tracker = BeliefTracker::new(k, n);
    let mut observed = 0usize;
    for class in QueryClass::ALL {
        for q in generate_queries(&ds.doc, class, cfg.query_count, cfg.seed) {
            let _ = hosted.query(&q).expect("query");
            tracker.observe_query();
            observed += 1;
        }
    }

    let mut t = Table::new(
        "e9_belief",
        &format!("Theorem 6.1 belief sequence over {observed} observed queries (k={k}, n={n})"),
        &["observation", "Bel(B(A))"],
    );
    for (i, b) in tracker.sequence().iter().enumerate().take(12) {
        t.row(vec![i.to_string(), format!("{b:.3e}")]);
    }
    t.row(vec![
        "non-increasing".into(),
        tracker.is_non_increasing().to_string(),
    ]);
    assert!(tracker.is_non_increasing(), "Theorem 6.1 violated");
    vec![t]
}
