//! E1 — Figure 6: the plaintext value distribution vs the distribution of
//! OPESS ciphertext values (after splitting, and after splitting+scaling).
//!
//! Paper shape: a skewed input histogram becomes nearly flat after splitting
//! (every ciphertext frequency in {m−1, m, m+1}); scaling then perturbs it
//! so the total no longer matches the attacker's known total.

use crate::report::Table;
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_crypto::{OpeKey, OpessPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut tables = Vec::new();

    // (a) The paper's own Figure 6 input.
    let paper_input = [
        (1001.0, 20u32),
        (932.0, 8),
        (23.0, 27),
        (77.0, 7),
        (90.0, 34),
        (12.0, 13),
    ];
    tables.push(distribution_table(
        "e1_fig6_paper",
        "Figure 6 input (paper's example)",
        &paper_input,
        cfg.seed,
    ));

    // (b) A real attribute from the NASA-like dataset: author ages.
    let small = ExpConfig {
        size_bytes: 64 * 1024,
        ..cfg.clone()
    };
    let ds = Dataset::nasa(&small);
    let hist = ds.doc.value_histogram();
    if let Some(ages) = hist.get("age") {
        let input: Vec<(f64, u32)> = ages
            .iter()
            .map(|(v, c)| (v.parse::<f64>().unwrap(), *c as u32))
            .collect();
        tables.push(distribution_table(
            "e1_fig6_nasa_age",
            "Figure 6 shape on NASA-like author ages",
            &input,
            cfg.seed,
        ));
    }
    tables
}

fn distribution_table(id: &str, title: &str, input: &[(f64, u32)], seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = OpessPlan::build(input, OpeKey::new([99u8; 32]), &mut rng).expect("plan");
    let mut t = Table::new(
        id,
        title,
        &[
            "metric",
            "distinct",
            "min freq",
            "max freq",
            "total occurrences",
            "flatness (max/min)",
        ],
    );
    let plain: Vec<u64> = input.iter().map(|&(_, c)| c as u64).collect();
    t.row(stats_row("plaintext", &plain));
    let split: Vec<u64> = plan.split_histogram().iter().map(|&c| c as u64).collect();
    t.row(stats_row("after splitting", &split));
    let scaled = plan.scaled_histogram();
    t.row(stats_row("after splitting+scaling", &scaled));
    t
}

fn stats_row(label: &str, freqs: &[u64]) -> Vec<String> {
    let min = *freqs.iter().min().unwrap_or(&0);
    let max = *freqs.iter().max().unwrap_or(&0);
    let total: u64 = freqs.iter().sum();
    vec![
        label.to_owned(),
        freqs.len().to_string(),
        min.to_string(),
        max.to_string(),
        total.to_string(),
        format!("{:.2}", max as f64 / min.max(1) as f64),
    ]
}
