//! E6 — §7.4 (first part): owner-side encryption time and encrypted
//! document size for each scheme on both datasets.
//!
//! Paper shape: the scheme encrypting the most elements takes the longest to
//! encrypt (their `app`; in our runs Clarkson often finds the optimum, so
//! the over-encrypting `match` ablation plays that role); `sub` produces
//! the largest hosted size (thousands of blocks, each paying the envelope
//! overhead, with bigger subtrees than app/opt); `opt` is best overall.

use crate::report::{fmt_bytes, fmt_duration, Table};
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let kinds = [
        SchemeKind::Top,
        SchemeKind::Sub,
        SchemeKind::App,
        SchemeKind::Opt,
        SchemeKind::Match,
    ];
    let mut tables = Vec::new();
    for ds in Dataset::both(cfg) {
        let mut t = Table::new(
            &format!("e6_encryption_{}", ds.name),
            &format!(
                "§7.4 encryption cost ({}-like, plaintext {}, {} nodes)",
                ds.name,
                fmt_bytes(ds.doc.serialized_size()),
                ds.doc.len()
            ),
            &[
                "scheme",
                "blocks",
                "scheme size |S|",
                "encrypt time",
                "hosted size",
                "metadata entries",
            ],
        );
        for kind in kinds {
            let hosted = ds.host(kind, cfg.seed);
            t.row(vec![
                kind.name().to_owned(),
                hosted.setup.block_count.to_string(),
                hosted.setup.scheme_size.to_string(),
                fmt_duration(hosted.setup.encrypt_time),
                fmt_bytes(hosted.setup.hosted_bytes()),
                (hosted.setup.dsi_entries + hosted.setup.value_index_entries).to_string(),
            ]);
        }
        tables.push(t);
    }
    tables
}
