//! E13 — extension ablation: query latency vs document size.
//!
//! Not a paper figure (the paper fixes 25 MB documents), but the natural
//! scalability question a systems reader asks: how do outsourcing time,
//! metadata size, and per-query latency grow with the database? Expected
//! shape: outsourcing and naive queries grow linearly with size; secure
//! selective queries (Ql with a value predicate) grow sublinearly in the
//! shipped/decrypted bytes and mildly in server join time.

use crate::experiments::measure_query;
use crate::report::{fmt_bytes, fmt_duration, Table};
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_workload::nasa;
use std::time::Instant;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "e13_scaling",
        "Scalability: NASA-like document size sweep (opt scheme)",
        &[
            "doc bytes",
            "outsource time",
            "hosted bytes",
            "selective query",
            "query bytes",
            "naive query",
        ],
    );
    let base = cfg.size_bytes.min(4 * 1024 * 1024);
    for factor in [1usize, 2, 4, 8] {
        let target = base * factor / 8;
        let doc = nasa::generate(&nasa::NasaConfig {
            target_bytes: target,
            seed: cfg.seed,
        });
        let cs = nasa::constraints();
        let t0 = Instant::now();
        let mut hosted = Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &cs, SchemeKind::Opt, cfg.seed)
            .expect("outsource");
        let outsource_time = t0.elapsed();
        // Repeat trials measure recomputation, not response-cache hits.
        hosted.server.set_cache_entries(Some(0));
        let q = "//dataset[.//last = 'Smith']/altname";
        let (phases, bytes, _) = measure_query(&hosted, q, cfg.trials, false);
        let (naive_phases, _, _) = measure_query(&hosted, q, cfg.trials.min(3), true);
        t.row(vec![
            fmt_bytes(doc.serialized_size()),
            fmt_duration(outsource_time),
            fmt_bytes(hosted.server.hosted_bytes()),
            fmt_duration(phases.total()),
            fmt_bytes(bytes),
            fmt_duration(naive_phases.total()),
        ]);
    }
    vec![t]
}
