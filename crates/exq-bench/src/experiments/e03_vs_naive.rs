//! E3 — §7.3: our approach vs the naive method (ship the whole encrypted
//! database for every query).
//!
//! Paper shape: with the opt/app/sub schemes, secure query evaluation takes
//! only 11–28 % of the naive method's time; the top scheme performs the
//! same as the naive method.

use crate::experiments::measure_query;
use crate::report::{fmt_duration, Table};
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_workload::{generate_queries, QueryClass};
use std::time::Duration;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in Dataset::both(cfg) {
        let mut t = Table::new(
            &format!("e3_vs_naive_{}", ds.name),
            &format!(
                "§7.3 ours vs naive ({}-like): mean per-query time and ratio",
                ds.name
            ),
            &["scheme", "ours", "naive", "ours/naive"],
        );
        for kind in SchemeKind::ALL {
            let hosted = ds.host(kind, cfg.seed);
            let mut ours = Duration::ZERO;
            let mut naive = Duration::ZERO;
            let mut n = 0u32;
            for class in QueryClass::ALL {
                for q in generate_queries(&ds.doc, class, cfg.query_count / 2, cfg.seed) {
                    ours += measure_query(&hosted, &q, cfg.trials, false).0.total();
                    naive += measure_query(&hosted, &q, cfg.trials, true).0.total();
                    n += 1;
                }
            }
            let (ours, naive) = (ours / n.max(1), naive / n.max(1));
            t.row(vec![
                kind.name().to_owned(),
                fmt_duration(ours),
                fmt_duration(naive),
                format!("{:.2}", ours.as_secs_f64() / naive.as_secs_f64()),
            ]);
        }
        tables.push(t);
    }
    tables
}
