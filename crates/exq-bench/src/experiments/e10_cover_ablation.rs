//! E10 — §4.2 ablation: exact branch-and-bound vs Clarkson's greedy vs the
//! matching 2-approximation on the Figure 8 constraint graphs and on random
//! graphs, comparing cover weight and solver runtime.
//!
//! Expected shape: exact ≤ clarkson ≤ 2×exact ≤ matching (weights), with
//! exact paying solver time that grows with graph size (it is solving an
//! NP-hard problem, Theorem 4.2).

use crate::report::{fmt_duration, Table};
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::cover::{solve_clarkson, solve_exact, solve_matching, ConstraintGraph, CoverVertex};
use exq_xpath::Path;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "e10_cover_ablation",
        "Vertex-cover solver ablation (weight | runtime)",
        &[
            "graph",
            "V",
            "E",
            "exact",
            "clarkson",
            "matching",
            "t_exact",
            "t_clarkson",
        ],
    );
    let small = ExpConfig {
        size_bytes: cfg.size_bytes.min(256 * 1024),
        ..cfg.clone()
    };
    for ds in Dataset::both(&small) {
        let g = ConstraintGraph::build(&ds.doc, &ds.constraints);
        add_row(&mut t, &format!("fig8-{}", ds.name), &g);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for (i, n) in [8usize, 14, 20].into_iter().enumerate() {
        let g = random_graph(n, 0.35, &mut rng);
        add_row(&mut t, &format!("random{}(n={n})", i + 1), &g);
    }
    vec![t]
}

fn add_row(t: &mut Table, name: &str, g: &ConstraintGraph) {
    let t0 = Instant::now();
    let exact = solve_exact(g);
    let t_exact = t0.elapsed();
    let t1 = Instant::now();
    let clarkson = solve_clarkson(g);
    let t_clarkson = t1.elapsed();
    let matching = solve_matching(g);
    assert!(g.is_cover(&exact) && g.is_cover(&clarkson) && g.is_cover(&matching));
    let (we, wc, wm) = (
        g.cover_weight(&exact),
        g.cover_weight(&clarkson),
        g.cover_weight(&matching),
    );
    assert!(we <= wc && wc <= 2 * we.max(1));
    t.row(vec![
        name.to_owned(),
        g.vertex_count().to_string(),
        g.edge_count().to_string(),
        we.to_string(),
        wc.to_string(),
        wm.to_string(),
        fmt_duration(t_exact),
        fmt_duration(t_clarkson),
    ]);
}

fn random_graph(n: usize, p: f64, rng: &mut StdRng) -> ConstraintGraph {
    let mut g = ConstraintGraph::default();
    for i in 0..n {
        g.vertices.push(CoverVertex {
            path: Path::parse(&format!("//v{i}")).expect("static"),
            weight: rng.gen_range(1..100),
            bound_nodes: 1,
        });
    }
    for a in 0..n {
        for b in a + 1..n {
            if rng.gen_bool(p) {
                g.edges.push((a, b));
            }
        }
    }
    g
}
