//! E5 — Figure 10: saving ratios of the app and opt schemes over the top and
//! sub schemes on both datasets.
//!
//! `S_{a/t} = (T_top − T_app) / T_top`, and analogously for the other three.
//! Paper shape: ratios over top exceed ratios over sub, and all ratios grow
//! as the query output node moves toward the leaves (Ql > Qm > Qs); the
//! best reported value is ~0.64 over top for Ql on NASA.

use crate::experiments::measure_query;
use crate::report::Table;
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::scheme::SchemeKind;
use exq_workload::{generate_queries, QueryClass};
use std::collections::HashMap;
use std::time::Duration;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut tables = Vec::new();
    for ds in Dataset::both(cfg) {
        let hosted: HashMap<&str, _> = SchemeKind::ALL
            .iter()
            .map(|&k| (k.name(), ds.host(k, cfg.seed)))
            .collect();
        let mut t = Table::new(
            &format!("e5_fig10_{}", ds.name),
            &format!("Figure 10 saving ratios ({}-like)", ds.name),
            &["class", "S_a/t", "S_a/s", "S_o/t", "S_o/s"],
        );
        for class in QueryClass::ALL {
            let queries = generate_queries(&ds.doc, class, cfg.query_count, cfg.seed);
            let total = |scheme: &str| -> Duration {
                queries
                    .iter()
                    .map(|q| {
                        measure_query(&hosted[scheme], q, cfg.trials, false)
                            .0
                            .total()
                    })
                    .sum()
            };
            let (tt, ts, ta, to) = (total("top"), total("sub"), total("app"), total("opt"));
            let ratio = |base: Duration, x: Duration| {
                (base.as_secs_f64() - x.as_secs_f64()) / base.as_secs_f64()
            };
            t.row(vec![
                class.name().to_owned(),
                format!("{:.2}", ratio(tt, ta)),
                format!("{:.2}", ratio(ts, ta)),
                format!("{:.2}", ratio(tt, to)),
                format!("{:.2}", ratio(ts, to)),
            ]);
        }
        tables.push(t);
    }
    tables
}
