//! E7 — Theorems 4.1 / 5.1 / 5.2: exact candidate-database counts.
//!
//! Paper anchors: (3,4,5) → 27 720 candidate databases (Thm 4.1);
//! a block with 7 leaves in 3 intervals → 15 structures (Fig. 5);
//! n=15, k=5 → C(14,4) = 1001 splittings (Thm 5.1/5.2). On real data the
//! counts must be astronomically ("exponentially") large.

use crate::report::Table;
use crate::setup::Dataset;
use crate::ExpConfig;
use exq_core::analysis::counting;
use exq_core::scheme::SchemeKind;

pub fn run(cfg: &ExpConfig) -> Vec<Table> {
    let mut t = Table::new(
        "e7_candidate_counts",
        "Candidate-database counts (Theorems 4.1/5.1/5.2)",
        &["quantity", "input", "count", "log10"],
    );
    // The paper's literal anchors.
    let c = counting::encryption_candidates(&[3, 4, 5]);
    t.row(vec![
        "Thm 4.1 worked example".into(),
        "k = (3,4,5)".into(),
        c.to_string(),
        format!("{:.1}", c.approx_log10()),
    ]);
    let c = counting::structural_candidates(&[(7, 3)]);
    t.row(vec![
        "Thm 5.1 / Fig. 5 example".into(),
        "n=7 leaves, k=3 intervals".into(),
        c.to_string(),
        format!("{:.1}", c.approx_log10()),
    ]);
    let c = counting::value_candidates(15, 5);
    t.row(vec![
        "Thm 5.2 worked example".into(),
        "n=15, k=5".into(),
        c.to_string(),
        format!("{:.1}", c.approx_log10()),
    ]);

    // Real-data counts from the generated datasets.
    let small = ExpConfig {
        size_bytes: cfg.size_bytes.min(512 * 1024),
        ..cfg.clone()
    };
    for ds in Dataset::both(&small) {
        // Thm 4.1 on the most-skewed attribute.
        let hists = ds.doc.value_histogram();
        if let Some((attr, hist)) = hists.iter().max_by_key(|(_, h)| h.values().sum::<usize>()) {
            let freqs: Vec<u64> = hist.values().map(|&c| c as u64).collect();
            let c = counting::encryption_candidates(&freqs);
            t.row(vec![
                format!("Thm 4.1 on {}-like", ds.name),
                format!("attribute `{attr}`, {} values", freqs.len()),
                trunc(&c.to_string()),
                format!("{:.1}", c.approx_log10()),
            ]);
        }
        // Thm 5.1 on a hosted database: under the `top` scheme the single
        // block hides all n leaves behind the k grouped intervals the DSI
        // table exposes.
        let top = ds.host(SchemeKind::Top, cfg.seed);
        let n_leaves = ds
            .doc
            .iter()
            .filter(|&n| !ds.doc.node(n).is_element())
            .count() as u64;
        let k_intervals = top.server.metadata().dsi_table.entry_count() as u64;
        if k_intervals <= n_leaves {
            let c = counting::structural_candidates(&[(n_leaves, k_intervals)]);
            t.row(vec![
                format!("Thm 5.1 on {}-like (top)", ds.name),
                format!("n={n_leaves} leaves, k={k_intervals} intervals"),
                trunc(&c.to_string()),
                format!("{:.1}", c.approx_log10()),
            ]);
        }

        // Thm 5.2 on the hosted value indexes: pick the indexed attribute
        // with the biggest split ratio (most ciphertexts per plaintext).
        let hosted = ds.host(SchemeKind::Opt, cfg.seed);
        let state = hosted.client.state();
        let cipher = state.keys.tag_cipher();
        let best = state
            .opess
            .iter()
            .filter_map(|(attr, a)| {
                let tree = hosted
                    .server
                    .metadata()
                    .value_indexes
                    .get(&cipher.encrypt(attr))?;
                let n = tree.key_histogram().len() as u64;
                let k = a.plan.entries().len() as u64;
                Some((attr.clone(), n, k))
            })
            .max_by_key(|&(_, n, k)| n.saturating_sub(k));
        if let Some((attr, n, k)) = best {
            let c = counting::value_candidates(n, k);
            t.row(vec![
                format!("Thm 5.2 on {}-like", ds.name),
                format!("`{attr}`: n={n} ciphertexts, k={k} plaintexts"),
                trunc(&c.to_string()),
                format!("{:.1}", c.approx_log10()),
            ]);
        }
    }
    vec![t]
}

fn trunc(s: &str) -> String {
    if s.len() > 24 {
        format!("{}…({} digits)", &s[..12], s.len())
    } else {
        s.to_owned()
    }
}
