//! Smoke tests: every registered experiment runs end to end at a tiny scale
//! and produces non-empty, well-formed tables (guards the harness against
//! rot as the system evolves).

use exq_bench::experiments::registry;
use exq_bench::ExpConfig;

fn tiny() -> ExpConfig {
    ExpConfig {
        size_bytes: 48 * 1024,
        trials: 1,
        query_count: 2,
        seed: 11,
        out_dir: std::env::temp_dir().join(format!("exq-smoke-{}", std::process::id())),
        // Tiny debug-mode runs must not clobber the committed BENCH_*.json.
        write_root_artifacts: false,
    }
}

#[test]
fn every_experiment_runs_and_reports() {
    let cfg = tiny();
    for (id, title, runner) in registry() {
        let tables = runner(&cfg);
        assert!(!tables.is_empty(), "{id} ({title}) produced no tables");
        for t in &tables {
            assert!(!t.columns.is_empty(), "{id}: table {} has no columns", t.id);
            assert!(!t.rows.is_empty(), "{id}: table {} has no rows", t.id);
            for row in &t.rows {
                assert_eq!(
                    row.len(),
                    t.columns.len(),
                    "{id}: ragged row in table {}",
                    t.id
                );
            }
            // Render + CSV never panic and carry the content.
            let rendered = t.render();
            assert!(rendered.contains(&t.id));
            let csv = t.to_csv();
            assert_eq!(csv.lines().count(), t.rows.len() + 1);
        }
    }
    std::fs::remove_dir_all(&cfg.out_dir).ok();
}

#[test]
fn experiment_ids_are_unique_and_ordered() {
    let ids: Vec<&str> = registry().iter().map(|(id, _, _)| *id).collect();
    let mut dedup = ids.clone();
    dedup.dedup();
    assert_eq!(ids, dedup);
    assert_eq!(ids[0], "e1");
    assert!(ids.contains(&"e13"));
}
