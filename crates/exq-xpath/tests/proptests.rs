//! Property tests for the XPath engine.

use exq_xml::Document;
use exq_xpath::{eval_document, Path};
use proptest::prelude::*;

/// Random documents over a small tag alphabet.
fn tag() -> impl Strategy<Value = String> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")].prop_map(str::to_owned)
}

#[derive(Debug, Clone)]
enum Tree {
    Text(u8),
    El(String, Vec<Tree>),
}

fn tree() -> impl Strategy<Value = Tree> {
    let leaf = any::<u8>().prop_map(Tree::Text);
    leaf.prop_recursive(4, 32, 4, |inner| {
        (tag(), proptest::collection::vec(inner, 0..4)).prop_map(|(t, c)| Tree::El(t, c))
    })
}

fn build(doc: &mut Document, parent: Option<exq_xml::NodeId>, t: &Tree) {
    match t {
        Tree::Text(v) => {
            if let Some(p) = parent {
                doc.add_text(p, &v.to_string());
            }
        }
        Tree::El(tag, children) => {
            let el = doc.add_element(parent, tag);
            for c in children {
                build(doc, Some(el), c);
            }
        }
    }
}

fn doc_strategy() -> impl Strategy<Value = Document> {
    (tag(), proptest::collection::vec(tree(), 0..4)).prop_map(|(t, children)| {
        let mut d = Document::new();
        let root = d.add_element(None, &t);
        for c in &children {
            build(&mut d, Some(root), c);
        }
        d
    })
}

proptest! {
    /// `//t` returns exactly the elements with tag t, in document order.
    #[test]
    fn descendant_matches_elements_by_tag(d in doc_strategy(), t in tag()) {
        let q = Path::parse(&format!("//{t}")).unwrap();
        let got = eval_document(&d, &q);
        prop_assert_eq!(got, d.elements_by_tag(&t));
    }

    /// `//a//b` ⊆ `//b`, and every result has an `a` ancestor.
    #[test]
    fn nested_descendants_are_consistent(d in doc_strategy()) {
        let all_b = eval_document(&d, &Path::parse("//b").unwrap());
        let nested = eval_document(&d, &Path::parse("//a//b").unwrap());
        for n in &nested {
            prop_assert!(all_b.contains(n));
            let has_a_anc = d
                .ancestors(*n)
                .iter()
                .any(|&x| d.element_name(x) == Some("a"));
            prop_assert!(has_a_anc);
        }
    }

    /// Child-step results are exactly the parent-filtered descendant results.
    #[test]
    fn child_is_refinement_of_descendant(d in doc_strategy()) {
        let child = eval_document(&d, &Path::parse("//a/b").unwrap());
        let desc = eval_document(&d, &Path::parse("//a//b").unwrap());
        for n in &child {
            prop_assert!(desc.contains(n));
            prop_assert_eq!(d.element_name(d.node(*n).parent().unwrap()), Some("a"));
        }
        for n in &desc {
            if d.element_name(d.node(*n).parent().unwrap()) == Some("a") {
                prop_assert!(child.contains(n));
            }
        }
    }

    /// The wildcard counts every element except the root.
    #[test]
    fn wildcard_descendant_counts_elements(d in doc_strategy()) {
        let q = Path::parse("//*").unwrap();
        let got = eval_document(&d, &q).len();
        let expected = d
            .iter()
            .filter(|&n| d.node(n).is_element())
            .count();
        prop_assert_eq!(got, expected);
    }

    /// Display → parse is the identity on generated query shapes.
    #[test]
    fn display_parse_roundtrip(
        t1 in tag(),
        t2 in tag(),
        v in 0u8..200,
        op in prop_oneof![Just("="), Just("<"), Just(">="), Just("!=")],
    ) {
        let q = format!("//{t1}[{t2} {op} {v}]/{t2}");
        let p1 = Path::parse(&q).unwrap();
        let p2 = Path::parse(&p1.to_string()).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// Predicates never enlarge the result set.
    #[test]
    fn predicates_filter(d in doc_strategy(), v in 0u8..255) {
        let all = eval_document(&d, &Path::parse("//a").unwrap());
        let some = eval_document(&d, &Path::parse(&format!("//a[b = {v}]")).unwrap());
        for n in &some {
            prop_assert!(all.contains(n));
        }
    }

    /// The parser never panics on arbitrary UTF-8 input — garbage must come
    /// back as `Err(XPathError)`, not a crash.
    #[test]
    fn parse_never_panics_on_arbitrary_strings(s in "\\PC{0,128}") {
        let _ = Path::parse(&s);
    }

    /// Same, over byte soup forced through lossy UTF-8 conversion (covers
    /// multi-byte boundary slicing in names and literals).
    #[test]
    fn parse_never_panics_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let s = String::from_utf8_lossy(&bytes);
        let _ = Path::parse(&s);
    }

    /// Query-shaped fragments stitched together at random: anything accepted
    /// must survive a display → re-parse roundtrip without panicking.
    #[test]
    fn parse_never_panics_on_query_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("//"), Just("/"), Just("a"), Just("bé"), Just("@id"), Just("*"),
                Just("["), Just("]"), Just("("), Just(")"), Just("="), Just("<="),
                Just("'x"), Just("'x'"), Just("42"), Just("-"), Just("+"), Just("."),
                Just(".."), Just("not("), Just("contains("), Just("last()"),
                Just(" and "), Just(" or "), Just(","), Just("text()"),
            ],
            0..24,
        )
    ) {
        let q: String = parts.concat();
        if let Ok(p) = Path::parse(&q) {
            let _ = Path::parse(&p.to_string());
        }
    }
}

/// Pathological nesting must be rejected with a parse error, never a stack
/// overflow: the parser caps recursion depth.
#[test]
fn deep_nesting_is_an_error_not_a_crash() {
    let deep = format!("//a[{}b{}]", "not(".repeat(4000), ")".repeat(4000));
    assert!(Path::parse(&deep).is_err());
    let parens = format!("//a[{}b = 1{}]", "(".repeat(4000), ")".repeat(4000));
    assert!(Path::parse(&parens).is_err());
    // Modest nesting still parses fine.
    let ok = format!("//a[{}b{}]", "not(".repeat(8), ")".repeat(8));
    assert!(Path::parse(&ok).is_ok());
}

/// Malformed number literals are parse errors (regression for a former
/// `unwrap` in the number-literal scanner).
#[test]
fn bad_number_literals_are_errors() {
    for q in ["//a[b = +]", "//a[b = -]", "//a[b = 1.2.3]", "//a[b = ++1]"] {
        assert!(Path::parse(q).is_err(), "expected error for {q}");
    }
    assert!(Path::parse("//a[b = -12.5]").is_ok());
}
