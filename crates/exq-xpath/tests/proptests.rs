//! Property tests for the XPath engine.

use exq_xml::Document;
use exq_xpath::{eval_document, Path};
use proptest::prelude::*;

/// Random documents over a small tag alphabet.
fn tag() -> impl Strategy<Value = String> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")].prop_map(str::to_owned)
}

#[derive(Debug, Clone)]
enum Tree {
    Text(u8),
    El(String, Vec<Tree>),
}

fn tree() -> impl Strategy<Value = Tree> {
    let leaf = any::<u8>().prop_map(Tree::Text);
    leaf.prop_recursive(4, 32, 4, |inner| {
        (tag(), proptest::collection::vec(inner, 0..4)).prop_map(|(t, c)| Tree::El(t, c))
    })
}

fn build(doc: &mut Document, parent: Option<exq_xml::NodeId>, t: &Tree) {
    match t {
        Tree::Text(v) => {
            if let Some(p) = parent {
                doc.add_text(p, &v.to_string());
            }
        }
        Tree::El(tag, children) => {
            let el = doc.add_element(parent, tag);
            for c in children {
                build(doc, Some(el), c);
            }
        }
    }
}

fn doc_strategy() -> impl Strategy<Value = Document> {
    (tag(), proptest::collection::vec(tree(), 0..4)).prop_map(|(t, children)| {
        let mut d = Document::new();
        let root = d.add_element(None, &t);
        for c in &children {
            build(&mut d, Some(root), c);
        }
        d
    })
}

proptest! {
    /// `//t` returns exactly the elements with tag t, in document order.
    #[test]
    fn descendant_matches_elements_by_tag(d in doc_strategy(), t in tag()) {
        let q = Path::parse(&format!("//{t}")).unwrap();
        let got = eval_document(&d, &q);
        prop_assert_eq!(got, d.elements_by_tag(&t));
    }

    /// `//a//b` ⊆ `//b`, and every result has an `a` ancestor.
    #[test]
    fn nested_descendants_are_consistent(d in doc_strategy()) {
        let all_b = eval_document(&d, &Path::parse("//b").unwrap());
        let nested = eval_document(&d, &Path::parse("//a//b").unwrap());
        for n in &nested {
            prop_assert!(all_b.contains(n));
            let has_a_anc = d
                .ancestors(*n)
                .iter()
                .any(|&x| d.element_name(x) == Some("a"));
            prop_assert!(has_a_anc);
        }
    }

    /// Child-step results are exactly the parent-filtered descendant results.
    #[test]
    fn child_is_refinement_of_descendant(d in doc_strategy()) {
        let child = eval_document(&d, &Path::parse("//a/b").unwrap());
        let desc = eval_document(&d, &Path::parse("//a//b").unwrap());
        for n in &child {
            prop_assert!(desc.contains(n));
            prop_assert_eq!(d.element_name(d.node(*n).parent().unwrap()), Some("a"));
        }
        for n in &desc {
            if d.element_name(d.node(*n).parent().unwrap()) == Some("a") {
                prop_assert!(child.contains(n));
            }
        }
    }

    /// The wildcard counts every element except the root.
    #[test]
    fn wildcard_descendant_counts_elements(d in doc_strategy()) {
        let q = Path::parse("//*").unwrap();
        let got = eval_document(&d, &q).len();
        let expected = d
            .iter()
            .filter(|&n| d.node(n).is_element())
            .count();
        prop_assert_eq!(got, expected);
    }

    /// Display → parse is the identity on generated query shapes.
    #[test]
    fn display_parse_roundtrip(
        t1 in tag(),
        t2 in tag(),
        v in 0u8..200,
        op in prop_oneof![Just("="), Just("<"), Just(">="), Just("!=")],
    ) {
        let q = format!("//{t1}[{t2} {op} {v}]/{t2}");
        let p1 = Path::parse(&q).unwrap();
        let p2 = Path::parse(&p1.to_string()).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// Predicates never enlarge the result set.
    #[test]
    fn predicates_filter(d in doc_strategy(), v in 0u8..255) {
        let all = eval_document(&d, &Path::parse("//a").unwrap());
        let some = eval_document(&d, &Path::parse(&format!("//a[b = {v}]")).unwrap());
        for n in &some {
            prop_assert!(all.contains(n));
        }
    }
}
