//! XPath-subset parser and reference evaluator.
//!
//! Implements the fragment of XPath the paper uses for queries and security
//! constraints:
//!
//! * child (`/a`), descendant (`//a`), attribute (`@a`), self (`.`),
//!   parent (`..`), and `following-sibling::` axes;
//! * name tests, `*` wildcards, and `text()`;
//! * predicates `[p]` (existence) and `[p op literal]` with
//!   `op ∈ {=, !=, <, <=, >, >=}` where the literal is a number, a quoted
//!   string, or a bare word.
//!
//! The evaluator here is the *reference* implementation: a naive tree walk
//! over an [`exq_xml::Document`]. The secure server evaluates translated
//! queries over DSI intervals instead (see `exq-core`); client post-processing
//! and all cross-checking tests use this walker.
//!
//! ```
//! use exq_xml::Document;
//! use exq_xpath::{eval_document, Path};
//!
//! let doc = Document::parse("<r><p><n>Betty</n></p><p><n>Matt</n></p></r>").unwrap();
//! let q = Path::parse("//p[n = 'Betty']").unwrap();
//! assert_eq!(eval_document(&doc, &q).len(), 1);
//! ```

mod ast;
mod eval;
mod parse;

pub use ast::{Axis, CmpOp, Literal, NodeTest, Path, PositionTest, Predicate, Step};
pub use eval::{eval_document, eval_from, eval_union, matches, node_satisfies};
pub use parse::XPathError;
