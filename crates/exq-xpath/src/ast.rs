//! The XPath abstract syntax tree.

use std::fmt;

/// A location path: a sequence of steps. An empty step list denotes the
/// context node itself (the path `.`).
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    pub steps: Vec<Step>,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Predicate>,
}

/// The supported axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
    SelfAxis,
    Parent,
    FollowingSibling,
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// Match by tag/attribute name.
    Name(String),
    /// `*`: any element (or any attribute on the attribute axis).
    Wildcard,
    /// `text()`.
    Text,
}

/// A predicate inside `[...]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `[p]` — the relative path has a non-empty result.
    Exists(Path),
    /// `[p op literal]`.
    Compare(Path, CmpOp, Literal),
    /// `[n]` / `[last()]` — positional test within the context's node list.
    Position(PositionTest),
    /// `[a and b]`.
    And(Box<Predicate>, Box<Predicate>),
    /// `[a or b]`.
    Or(Box<Predicate>, Box<Predicate>),
    /// `[not(a)]`.
    Not(Box<Predicate>),
    /// `[contains(p, 'lit')]` — some bound value contains the substring.
    Contains(Path, String),
    /// `[starts-with(p, 'lit')]`.
    StartsWith(Path, String),
}

/// A positional predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionTest {
    /// 1-based index.
    Index(usize),
    /// `last()`.
    Last,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Applies the operator to an `Ordering`-style comparison result.
    pub fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A comparison literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Number(f64),
    Str(String),
}

impl Literal {
    /// Compares a node's string value against the literal: numerically when
    /// both sides parse as numbers, lexicographically otherwise.
    pub fn compare_with(&self, value: &str) -> std::cmp::Ordering {
        match self {
            Literal::Number(n) => match value.trim().parse::<f64>() {
                Ok(v) => v.partial_cmp(n).unwrap_or(std::cmp::Ordering::Less),
                Err(_) => value.cmp(&n.to_string()),
            },
            Literal::Str(s) => {
                if let (Ok(a), Ok(b)) = (value.trim().parse::<f64>(), s.trim().parse::<f64>()) {
                    return a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Less);
                }
                value.cmp(s)
            }
        }
    }

    /// The literal rendered as a plain string (no quotes).
    pub fn as_text(&self) -> String {
        match self {
            Literal::Number(n) => format_number(*n),
            Literal::Str(s) => s.clone(),
        }
    }
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl Path {
    /// Parses a union expression `p1 | p2 | …` into its branches (a single
    /// path parses to one branch). Unions are evaluated branch-by-branch
    /// and merged, both in the reference evaluator and through the secure
    /// pipeline.
    ///
    /// ```
    /// use exq_xpath::Path;
    /// let branches = Path::parse_union("//a | //b[c = '1|2']").unwrap();
    /// assert_eq!(branches.len(), 2); // the quoted `|` is not a separator
    /// ```
    pub fn parse_union(input: &str) -> Result<Vec<Path>, crate::parse::XPathError> {
        split_top_level(input, '|')
            .into_iter()
            .map(|part| Path::parse(part.trim()))
            .collect()
    }

    /// The path consisting of only the context node (`.`).
    pub fn self_path() -> Path {
        Path { steps: Vec::new() }
    }

    /// True when the path is just `.`.
    pub fn is_self(&self) -> bool {
        self.steps.is_empty()
    }

    /// Concatenates two paths (`self/other`).
    pub fn join(&self, other: &Path) -> Path {
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        Path { steps }
    }

    /// The name tested by the final step, if it is a name test.
    pub fn last_name(&self) -> Option<&str> {
        match self.steps.last().map(|s| &s.test) {
            Some(NodeTest::Name(n)) => Some(n),
            _ => None,
        }
    }

    /// All tag names mentioned anywhere in the path, including predicates.
    pub fn mentioned_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_names(self, &mut out);
        out
    }
}

/// Splits on a separator that appears outside brackets and quotes.
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut quote: Option<char> = None;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                '[' | '(' => depth += 1,
                ']' | ')' => depth -= 1,
                _ if c == sep && depth == 0 => {
                    out.push(&s[start..i]);
                    start = i + c.len_utf8();
                }
                _ => {}
            },
        }
    }
    out.push(&s[start..]);
    out
}

fn collect_names(p: &Path, out: &mut Vec<String>) {
    for s in &p.steps {
        if let NodeTest::Name(n) = &s.test {
            out.push(n.clone());
        }
        for pred in &s.predicates {
            collect_pred_names(pred, out);
        }
    }
}

fn collect_pred_names(pred: &Predicate, out: &mut Vec<String>) {
    match pred {
        Predicate::Exists(q) => collect_names(q, out),
        Predicate::Compare(q, _, _) => collect_names(q, out),
        Predicate::Position(_) => {}
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            collect_pred_names(a, out);
            collect_pred_names(b, out);
        }
        Predicate::Not(a) => collect_pred_names(a, out),
        Predicate::Contains(q, _) | Predicate::StartsWith(q, _) => collect_names(q, out),
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, ".");
        }
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => write!(f, "/")?,
            Axis::Descendant => write!(f, "//")?,
            Axis::DescendantOrSelf => write!(f, "/descendant-or-self::")?,
            Axis::Attribute => write!(f, "/@")?,
            Axis::SelfAxis => write!(f, "/.")?,
            Axis::Parent => write!(f, "/..")?,
            Axis::FollowingSibling => write!(f, "/following-sibling::")?,
        }
        match &self.test {
            NodeTest::Name(n) => {
                if matches!(self.axis, Axis::SelfAxis | Axis::Parent) {
                    // Self/parent render their sugar above; a name test on
                    // these axes uses explicit syntax.
                    write!(f, "self::{n}")?;
                } else {
                    write!(f, "{n}")?;
                }
            }
            NodeTest::Wildcard => {
                if !matches!(self.axis, Axis::SelfAxis | Axis::Parent) {
                    write!(f, "*")?;
                }
            }
            NodeTest::Text => write!(f, "text()")?,
        }
        for p in &self.predicates {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", render_pred(self))
    }
}

fn render_pred(p: &Predicate) -> String {
    match p {
        Predicate::Exists(path) => display_relative(path),
        Predicate::Compare(path, op, lit) => {
            format!("{} {} {}", display_relative(path), op.as_str(), lit)
        }
        Predicate::Position(PositionTest::Index(i)) => i.to_string(),
        Predicate::Position(PositionTest::Last) => "last()".to_owned(),
        Predicate::And(a, b) => format!("{} and {}", render_pred(a), render_pred(b)),
        Predicate::Or(a, b) => format!("({} or {})", render_pred(a), render_pred(b)),
        Predicate::Not(a) => format!("not({})", render_pred(a)),
        Predicate::Contains(p, lit) => format!("contains({}, '{lit}')", display_relative(p)),
        Predicate::StartsWith(p, lit) => {
            format!("starts-with({}, '{lit}')", display_relative(p))
        }
    }
}

/// Renders a predicate path without the leading `/` that `Display` on
/// [`Path`] would emit for the first child step.
fn display_relative(p: &Path) -> String {
    let s = p.to_string();
    match s.strip_prefix("//") {
        Some(_) => format!(".{s}"),
        None => s.strip_prefix('/').map(str::to_owned).unwrap_or(s),
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => write!(f, "{}", format_number(*n)),
            Literal::Str(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.holds(Equal));
        assert!(!CmpOp::Eq.holds(Less));
        assert!(CmpOp::Le.holds(Equal));
        assert!(CmpOp::Le.holds(Less));
        assert!(!CmpOp::Le.holds(Greater));
        assert!(CmpOp::Ne.holds(Greater));
    }

    #[test]
    fn literal_numeric_comparison() {
        let lit = Literal::Number(40.0);
        assert_eq!(lit.compare_with("40"), std::cmp::Ordering::Equal);
        assert_eq!(lit.compare_with("35"), std::cmp::Ordering::Less);
        assert_eq!(lit.compare_with("100"), std::cmp::Ordering::Greater);
    }

    #[test]
    fn literal_string_comparison() {
        let lit = Literal::Str("Betty".into());
        assert_eq!(lit.compare_with("Betty"), std::cmp::Ordering::Equal);
        assert_eq!(lit.compare_with("Matt"), std::cmp::Ordering::Greater);
    }

    #[test]
    fn string_literal_numeric_when_both_numbers() {
        let lit = Literal::Str("100".into());
        assert_eq!(lit.compare_with("20"), std::cmp::Ordering::Less);
    }

    #[test]
    fn join_paths() {
        let a = Path::parse("//patient").unwrap();
        let b = Path::parse("/pname").unwrap();
        assert_eq!(a.join(&b).to_string(), "//patient/pname");
    }

    #[test]
    fn mentioned_names_includes_predicates() {
        let p = Path::parse("//patient[.//insurance/@coverage >= 10]/SSN").unwrap();
        let names = p.mentioned_names();
        assert!(names.contains(&"patient".to_owned()));
        assert!(names.contains(&"insurance".to_owned()));
        assert!(names.contains(&"coverage".to_owned()));
        assert!(names.contains(&"SSN".to_owned()));
    }
}
