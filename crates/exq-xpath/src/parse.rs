//! Recursive-descent parser for the XPath subset.

use crate::ast::{Axis, CmpOp, Literal, NodeTest, Path, PositionTest, Predicate, Step};
use std::fmt;

/// An XPath syntax error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XPathError {}

impl Path {
    /// Parses an XPath expression.
    ///
    /// A leading `/` or no leading slash means the first step uses the child
    /// axis; a leading `//` means the descendant axis. `.` and `..` are
    /// supported, as are `.//a` relative descendant paths.
    pub fn parse(input: &str) -> Result<Path, XPathError> {
        let mut p = P {
            input: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let path = p.parse_path()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing input"));
        }
        Ok(path)
    }
}

/// Cap on predicate/path nesting: adversarial inputs like `a[(((((…` must
/// produce a parse error, never exhaust the real call stack.
const MAX_NESTING: usize = 64;

struct P<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> XPathError {
        XPathError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_path(&mut self) -> Result<Path, XPathError> {
        let mut steps = Vec::new();
        let mut first = true;
        loop {
            self.skip_ws();
            let axis_prefix = if self.eat("//") {
                Some(Axis::Descendant)
            } else if self.eat("/") {
                Some(Axis::Child)
            } else {
                None
            };
            match axis_prefix {
                Some(mut ax) => {
                    // `//@name` means descendant-or-self::node()/@name.
                    if ax == Axis::Descendant && self.peek() == Some(b'@') {
                        steps.push(Step {
                            axis: Axis::DescendantOrSelf,
                            test: NodeTest::Wildcard,
                            predicates: Vec::new(),
                        });
                        ax = Axis::Child;
                    }
                    steps.push(self.parse_step(ax)?);
                }
                None if first => {
                    // Relative start: `.`, `..`, `.//a`, or a bare step.
                    if self.eat("..") {
                        steps.push(Step {
                            axis: Axis::Parent,
                            test: NodeTest::Wildcard,
                            predicates: Vec::new(),
                        });
                    } else if self.eat(".") {
                        // `.` alone or `.//a` / `./a` — the self step is a
                        // no-op, loop continues on the slash.
                    } else if self.at_step_start() {
                        steps.push(self.parse_step(Axis::Child)?);
                    } else {
                        return Err(self.err("expected a path"));
                    }
                }
                None => break,
            }
            first = false;
        }
        Ok(Path { steps })
    }

    fn at_step_start(&self) -> bool {
        matches!(self.peek(), Some(b) if b == b'@' || b == b'*' || is_name_byte(b))
    }

    fn parse_step(&mut self, mut axis: Axis) -> Result<Step, XPathError> {
        if self.eat("..") {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::Wildcard,
                predicates: self.parse_predicates()?,
            });
        }
        if self.eat(".") {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::Wildcard,
                predicates: self.parse_predicates()?,
            });
        }
        if self.eat("@") {
            axis = Axis::Attribute;
        } else if self.eat("following-sibling::") {
            axis = Axis::FollowingSibling;
        } else if self.eat("descendant-or-self::") {
            axis = Axis::DescendantOrSelf;
        } else if self.eat("descendant::") {
            axis = Axis::Descendant;
        } else if self.eat("child::") {
            axis = Axis::Child;
        } else if self.eat("attribute::") {
            axis = Axis::Attribute;
        } else if self.eat("self::") {
            axis = Axis::SelfAxis;
        } else if self.eat("parent::") {
            axis = Axis::Parent;
        }

        let test = if self.eat("*") {
            NodeTest::Wildcard
        } else if self.eat("text()") {
            NodeTest::Text
        } else {
            NodeTest::Name(self.read_name()?)
        };

        Ok(Step {
            axis,
            test,
            predicates: self.parse_predicates()?,
        })
    }

    fn parse_predicates(&mut self) -> Result<Vec<Predicate>, XPathError> {
        let mut preds = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat("[") {
                return Ok(preds);
            }
            self.skip_ws();
            let pred = self.parse_or_expr()?;
            self.skip_ws();
            if !self.eat("]") {
                return Err(self.err("expected `]`"));
            }
            preds.push(pred);
        }
    }

    /// `or-expr := and-expr ('or' and-expr)*`
    fn parse_or_expr(&mut self) -> Result<Predicate, XPathError> {
        if self.depth >= MAX_NESTING {
            return Err(self.err("expression nesting too deep"));
        }
        self.depth += 1;
        let out = self.parse_or_expr_inner();
        self.depth -= 1;
        out
    }

    fn parse_or_expr_inner(&mut self) -> Result<Predicate, XPathError> {
        let mut lhs = self.parse_and_expr()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("or") {
                self.skip_ws();
                let rhs = self.parse_and_expr()?;
                lhs = Predicate::Or(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    /// `and-expr := atom ('and' atom)*`
    fn parse_and_expr(&mut self) -> Result<Predicate, XPathError> {
        let mut lhs = self.parse_pred_atom()?;
        loop {
            self.skip_ws();
            if self.eat_keyword("and") {
                self.skip_ws();
                let rhs = self.parse_pred_atom()?;
                lhs = Predicate::And(Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    /// `atom := '(' or-expr ')' | number | 'last()' | path [op literal]`
    fn parse_pred_atom(&mut self) -> Result<Predicate, XPathError> {
        self.skip_ws();
        if self.eat("(") {
            let inner = self.parse_or_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            return Ok(inner);
        }
        if self.eat("last()") {
            return Ok(Predicate::Position(PositionTest::Last));
        }
        if self.eat("not(") {
            let inner = self.parse_or_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected `)` after not(...)"));
            }
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat("contains(") {
            let (path, lit) = self.parse_string_fn_args()?;
            return Ok(Predicate::Contains(path, lit));
        }
        if self.eat("starts-with(") {
            let (path, lit) = self.parse_string_fn_args()?;
            return Ok(Predicate::StartsWith(path, lit));
        }
        // Bare integer followed by a predicate terminator = position test.
        if let Some(pos) = self.try_parse_position() {
            return Ok(Predicate::Position(PositionTest::Index(pos)));
        }
        let path = self.parse_path()?;
        self.skip_ws();
        match self.try_parse_op() {
            None => Ok(Predicate::Exists(path)),
            Some(op) => {
                self.skip_ws();
                let lit = self.parse_literal()?;
                Ok(Predicate::Compare(path, op, lit))
            }
        }
    }

    /// Parses `path, 'literal')` — the tail of a two-argument string
    /// function call.
    fn parse_string_fn_args(&mut self) -> Result<(Path, String), XPathError> {
        self.skip_ws();
        let path = self.parse_path()?;
        self.skip_ws();
        if !self.eat(",") {
            return Err(self.err("expected `,` in string function"));
        }
        self.skip_ws();
        let lit = match self.parse_literal()? {
            Literal::Str(s) => s,
            Literal::Number(n) => Literal::Number(n).as_text(),
        };
        self.skip_ws();
        if !self.eat(")") {
            return Err(self.err("expected `)` after string function"));
        }
        Ok((path, lit))
    }

    /// Consumes a keyword only when followed by a non-name byte.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            let after = self.input.get(self.pos + kw.len()).copied();
            if after.is_none() || !is_name_byte(after.unwrap()) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    /// Consumes `digits` only when the lookahead ends the atom (so tags that
    /// begin with digits still parse as paths).
    fn try_parse_position(&mut self) -> Option<usize> {
        let start = self.pos;
        let mut end = self.pos;
        while self.input.get(end).is_some_and(|b| b.is_ascii_digit()) {
            end += 1;
        }
        if end == start {
            return None;
        }
        // Lookahead: skip whitespace, then require a terminator.
        let mut look = end;
        while matches!(self.input.get(look), Some(b' ' | b'\t')) {
            look += 1;
        }
        let terminator = match self.input.get(look) {
            None | Some(b']') | Some(b')') => true,
            _ => self.input[look..].starts_with(b"and ") || self.input[look..].starts_with(b"or "),
        };
        if !terminator {
            return None;
        }
        let n: usize = std::str::from_utf8(&self.input[start..end])
            .ok()?
            .parse()
            .ok()?;
        self.pos = end;
        Some(n)
    }

    fn try_parse_op(&mut self) -> Option<CmpOp> {
        if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else {
            None
        }
    }

    fn parse_literal(&mut self) -> Result<Literal, XPathError> {
        match self.peek() {
            Some(q @ (b'\'' | b'"')) => {
                self.pos += 1;
                let start = self.pos;
                while self.peek().map(|b| b != q).unwrap_or(false) {
                    self.pos += 1;
                }
                if self.peek() != Some(q) {
                    return Err(self.err("unterminated string literal"));
                }
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("literal is not valid UTF-8"))?
                    .to_owned();
                self.pos += 1;
                Ok(Literal::Str(s))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => {
                let start = self.pos;
                self.pos += 1;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.') {
                    self.pos += 1;
                }
                // The scanned bytes are ASCII digits/sign/dot by construction,
                // but surface a parse error rather than trusting that here.
                let s = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("number literal is not valid UTF-8"))?;
                s.parse::<f64>()
                    .map(Literal::Number)
                    .map_err(|_| self.err(format!("bad number `{s}`")))
            }
            Some(b) if is_name_byte(b) => {
                // Bare word treated as a string literal, matching the paper's
                // query style: //patient[pname=Betty].
                let name = self.read_name()?;
                Ok(Literal::Str(name))
            }
            _ => Err(self.err("expected a literal")),
        }
    }

    fn read_name(&mut self) -> Result<String, XPathError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if is_name_byte(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("name is not valid UTF-8"))?
            .to_owned())
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'#') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        Path::parse(s).unwrap()
    }

    #[test]
    fn simple_paths() {
        assert_eq!(p("/a").steps.len(), 1);
        assert_eq!(p("//a/b").steps.len(), 2);
        assert_eq!(p("//a/b").steps[0].axis, Axis::Descendant);
        assert_eq!(p("//a/b").steps[1].axis, Axis::Child);
        assert_eq!(p("a/b").steps[0].axis, Axis::Child);
    }

    #[test]
    fn relative_descendant() {
        let q = p(".//disease");
        assert_eq!(q.steps.len(), 1);
        assert_eq!(q.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn self_and_parent() {
        assert!(p(".").is_self());
        assert_eq!(p("..").steps[0].axis, Axis::Parent);
    }

    #[test]
    fn attribute_axis() {
        let q = p("//insurance//*/@coverage");
        assert_eq!(q.steps.len(), 3);
        assert_eq!(q.steps[1].test, NodeTest::Wildcard);
        assert_eq!(q.steps[2].axis, Axis::Attribute);
        assert_eq!(q.steps[2].test, NodeTest::Name("coverage".into()));
    }

    #[test]
    fn predicates() {
        let q = p("//patient[pname = 'Betty'][.//disease=diarrhea]/SSN");
        assert_eq!(q.steps[0].predicates.len(), 2);
        match &q.steps[0].predicates[0] {
            Predicate::Compare(path, CmpOp::Eq, Literal::Str(s)) => {
                assert_eq!(path.steps[0].axis, Axis::Child);
                assert_eq!(s, "Betty");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &q.steps[0].predicates[1] {
            Predicate::Compare(path, CmpOp::Eq, Literal::Str(s)) => {
                assert_eq!(path.steps[0].axis, Axis::Descendant);
                assert_eq!(s, "diarrhea");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn numeric_predicates_and_ops() {
        let q = p("//patient[.//insurance/@coverage >= 10000]//SSN");
        match &q.steps[0].predicates[0] {
            Predicate::Compare(_, CmpOp::Ge, Literal::Number(n)) => assert_eq!(*n, 10000.0),
            other => panic!("unexpected {other:?}"),
        }
        for (s, op) in [
            ("[a<1]", CmpOp::Lt),
            ("[a<=1]", CmpOp::Le),
            ("[a>1]", CmpOp::Gt),
            ("[a>=1]", CmpOp::Ge),
            ("[a=1]", CmpOp::Eq),
            ("[a!=1]", CmpOp::Ne),
        ] {
            let q = p(&format!("//x{s}"));
            match &q.steps[0].predicates[0] {
                Predicate::Compare(_, o, _) => assert_eq!(*o, op),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn existence_predicate() {
        let q = p("//patient[insurance]");
        assert!(matches!(&q.steps[0].predicates[0], Predicate::Exists(_)));
    }

    #[test]
    fn following_sibling() {
        let q = p("/a/following-sibling::b");
        assert_eq!(q.steps[1].axis, Axis::FollowingSibling);
    }

    #[test]
    fn explicit_axes() {
        assert_eq!(p("/child::a").steps[0].axis, Axis::Child);
        assert_eq!(p("/descendant::a").steps[0].axis, Axis::Descendant);
        assert_eq!(p("/attribute::a").steps[0].axis, Axis::Attribute);
    }

    #[test]
    fn text_test() {
        let q = p("//a/text()");
        assert_eq!(q.steps[1].test, NodeTest::Text);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "//patient/SSN",
            "//patient[pname = 'Betty']/SSN",
            "//insurance//*/@coverage",
            "//a[b >= 10]/c",
            "//treat[disease != 'flu']",
            "/hospital/patient",
        ] {
            let once = p(s);
            let again = p(&once.to_string());
            assert_eq!(once, again, "display roundtrip failed for {s}");
        }
    }

    #[test]
    fn errors() {
        assert!(Path::parse("").is_err());
        assert!(Path::parse("//").is_err());
        assert!(Path::parse("//a[").is_err());
        assert!(Path::parse("//a[b=']").is_err());
        assert!(Path::parse("//a]").is_err());
        assert!(Path::parse("//a[b=]").is_err());
    }

    #[test]
    fn positional_and_boolean_predicates() {
        let q = p("//a[2]");
        assert!(matches!(
            q.steps[0].predicates[0],
            Predicate::Position(PositionTest::Index(2))
        ));
        let q = p("//a[last()]");
        assert!(matches!(
            q.steps[0].predicates[0],
            Predicate::Position(PositionTest::Last)
        ));
        let q = p("//a[b = 1 and c = 2]");
        assert!(matches!(q.steps[0].predicates[0], Predicate::And(..)));
        let q = p("//a[b or c and d]");
        // and binds tighter: Or(b, And(c, d))
        match &q.steps[0].predicates[0] {
            Predicate::Or(_, rhs) => assert!(matches!(**rhs, Predicate::And(..))),
            other => panic!("unexpected {other:?}"),
        }
        let q = p("//a[(b or c) and d]");
        assert!(matches!(q.steps[0].predicates[0], Predicate::And(..)));
        // A bare number compared to a path is NOT positional.
        let q = p("//a[b = 2]");
        assert!(matches!(q.steps[0].predicates[0], Predicate::Compare(..)));
    }

    #[test]
    fn position_display_roundtrip() {
        for s in [
            "//a[2]/b",
            "//a[last()]",
            "//a[b = 1 and c = 2]",
            "//a[b or c]",
        ] {
            let once = p(s);
            let again = p(&once.to_string());
            assert_eq!(once, again, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn quoted_strings() {
        let q = p(r#"//a[b = "x y"]"#);
        match &q.steps[0].predicates[0] {
            Predicate::Compare(_, _, Literal::Str(s)) => assert_eq!(s, "x y"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
