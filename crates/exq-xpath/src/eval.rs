//! Naive tree-walking evaluator — the reference semantics for the system.

use crate::ast::{Axis, NodeTest, Path, Predicate, Step};
use exq_xml::{Document, NodeId, NodeKind};
use std::collections::BTreeSet;

/// Evaluates a path with the document node as context (i.e. an absolute
/// query such as `//patient/SSN` or `/hospital/patient`).
pub fn eval_document(doc: &Document, path: &Path) -> Vec<NodeId> {
    let Some(root) = doc.root() else {
        return Vec::new();
    };
    if path.steps.is_empty() {
        return vec![root];
    }
    // The virtual document node: its only child is the root element and its
    // descendants are every node. Materialize the first step by hand, then
    // continue normally.
    let first = &path.steps[0];
    let mut context: BTreeSet<NodeId> = BTreeSet::new();
    match first.axis {
        Axis::Child => {
            if test_matches(doc, root, &first.test, Axis::Child) {
                context.insert(root);
            }
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            for n in doc.iter() {
                if test_matches(doc, n, &first.test, Axis::Descendant) {
                    context.insert(n);
                }
            }
        }
        _ => {
            // Attribute/self/parent/following-sibling from the document node
            // yield nothing useful; treat like child of root for robustness.
            if test_matches(doc, root, &first.test, Axis::Child) {
                context.insert(root);
            }
        }
    }
    let context = apply_predicates(doc, context.into_iter().collect(), &first.predicates);
    let rest = Path {
        steps: path.steps[1..].to_vec(),
    };
    eval_from(doc, &rest, &context)
}

/// Evaluates a (relative) path from the given context nodes. Results are in
/// document order, deduplicated.
pub fn eval_from(doc: &Document, path: &Path, context: &[NodeId]) -> Vec<NodeId> {
    let mut current: BTreeSet<NodeId> = context.iter().copied().collect();
    for step in &path.steps {
        let mut next = BTreeSet::new();
        for &ctx in &current {
            // Positional predicates need the per-context node list, so
            // filtering happens before merging across contexts.
            let mut nodes = BTreeSet::new();
            step_nodes(doc, ctx, step, &mut nodes);
            let filtered = apply_predicates(doc, nodes.into_iter().collect(), &step.predicates);
            next.extend(filtered);
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current.into_iter().collect()
}

/// Applies the step's predicates sequentially (XPath semantics: each
/// predicate re-numbers positions over the surviving list).
fn apply_predicates(doc: &Document, mut nodes: Vec<NodeId>, preds: &[Predicate]) -> Vec<NodeId> {
    for pred in preds {
        let total = nodes.len();
        nodes = nodes
            .into_iter()
            .enumerate()
            .filter(|&(i, n)| satisfies_predicate(doc, n, pred, i + 1, total))
            .map(|(_, n)| n)
            .collect();
        if nodes.is_empty() {
            break;
        }
    }
    nodes
}

/// Evaluates a union of paths from the document node: branch results are
/// merged and deduplicated in document order.
pub fn eval_union(doc: &Document, paths: &[Path]) -> Vec<NodeId> {
    let mut out: BTreeSet<NodeId> = BTreeSet::new();
    for p in paths {
        out.extend(eval_document(doc, p));
    }
    out.into_iter().collect()
}

/// True when `node` is in the result of evaluating `path` from the document.
pub fn matches(doc: &Document, path: &Path, node: NodeId) -> bool {
    eval_document(doc, path).contains(&node)
}

/// True when the relative `path` has a non-empty result from `node`.
pub fn node_satisfies(doc: &Document, node: NodeId, path: &Path) -> bool {
    !eval_from(doc, path, &[node]).is_empty()
}

fn step_nodes(doc: &Document, ctx: NodeId, step: &Step, out: &mut BTreeSet<NodeId>) {
    match step.axis {
        Axis::Child => {
            for &c in doc.node(ctx).children() {
                if doc.is_live(c) && test_matches(doc, c, &step.test, step.axis) {
                    out.insert(c);
                }
            }
        }
        Axis::Descendant => {
            for d in doc.descendants(ctx).skip(1) {
                if test_matches(doc, d, &step.test, step.axis) {
                    out.insert(d);
                }
            }
        }
        Axis::DescendantOrSelf => {
            for d in doc.descendants(ctx) {
                if test_matches(doc, d, &step.test, step.axis) {
                    out.insert(d);
                }
            }
        }
        Axis::Attribute => {
            for &a in doc.node(ctx).attrs() {
                if doc.is_live(a) && test_matches(doc, a, &step.test, step.axis) {
                    out.insert(a);
                }
            }
        }
        Axis::SelfAxis => {
            if test_matches(doc, ctx, &step.test, step.axis) {
                out.insert(ctx);
            }
        }
        Axis::Parent => {
            if let Some(p) = doc.node(ctx).parent() {
                if test_matches(doc, p, &step.test, step.axis) {
                    out.insert(p);
                }
            }
        }
        Axis::FollowingSibling => {
            if let Some(p) = doc.node(ctx).parent() {
                let siblings = doc.node(p).children();
                let mut seen_self = false;
                for &s in siblings {
                    if s == ctx {
                        seen_self = true;
                        continue;
                    }
                    if seen_self && doc.is_live(s) && test_matches(doc, s, &step.test, step.axis) {
                        out.insert(s);
                    }
                }
            }
        }
    }
}

fn test_matches(doc: &Document, node: NodeId, test: &NodeTest, axis: Axis) -> bool {
    let kind = doc.node(node).kind();
    match test {
        NodeTest::Text => matches!(kind, NodeKind::Text(_)),
        NodeTest::Wildcard => match axis {
            Axis::Attribute => matches!(kind, NodeKind::Attribute(..)),
            Axis::SelfAxis | Axis::Parent => true,
            _ => matches!(kind, NodeKind::Element(_)),
        },
        NodeTest::Name(name) => match kind {
            NodeKind::Element(t) => !matches!(axis, Axis::Attribute) && doc.tag_name(*t) == name,
            NodeKind::Attribute(t, _) => {
                matches!(axis, Axis::Attribute) && doc.tag_name(*t) == name
            }
            NodeKind::Text(_) => false,
        },
    }
}

fn satisfies_predicate(
    doc: &Document,
    node: NodeId,
    pred: &Predicate,
    pos: usize,
    total: usize,
) -> bool {
    match pred {
        Predicate::Exists(path) => !eval_from(doc, path, &[node]).is_empty(),
        Predicate::Compare(path, op, lit) => {
            let targets = if path.is_self() {
                vec![node]
            } else {
                eval_from(doc, path, &[node])
            };
            targets
                .iter()
                .any(|&t| op.holds(lit.compare_with(&doc.text_value(t))))
        }
        Predicate::Position(crate::ast::PositionTest::Index(i)) => pos == *i,
        Predicate::Position(crate::ast::PositionTest::Last) => pos == total,
        Predicate::And(a, b) => {
            satisfies_predicate(doc, node, a, pos, total)
                && satisfies_predicate(doc, node, b, pos, total)
        }
        Predicate::Or(a, b) => {
            satisfies_predicate(doc, node, a, pos, total)
                || satisfies_predicate(doc, node, b, pos, total)
        }
        Predicate::Not(a) => !satisfies_predicate(doc, node, a, pos, total),
        Predicate::Contains(path, lit) => string_fn_targets(doc, node, path)
            .iter()
            .any(|v| v.contains(lit.as_str())),
        Predicate::StartsWith(path, lit) => string_fn_targets(doc, node, path)
            .iter()
            .any(|v| v.starts_with(lit.as_str())),
    }
}

fn string_fn_targets(doc: &Document, node: NodeId, path: &Path) -> Vec<String> {
    let targets = if path.is_self() {
        vec![node]
    } else {
        eval_from(doc, path, &[node])
    };
    targets.into_iter().map(|t| doc.text_value(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Path;

    fn hospital() -> Document {
        Document::parse(
            r#"<hospital>
              <patient id="1">
                <pname>Betty</pname>
                <SSN>763895</SSN>
                <age>35</age>
                <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
                <insurance><policy coverage="1000000">34221</policy></insurance>
              </patient>
              <patient id="2">
                <pname>Matt</pname>
                <SSN>276543</SSN>
                <age>40</age>
                <treat><disease>leukemia</disease><doctor>Brown</doctor></treat>
                <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
                <insurance><policy coverage="5000">78543</policy></insurance>
              </patient>
            </hospital>"#,
        )
        .unwrap()
    }

    fn q(doc: &Document, s: &str) -> Vec<String> {
        eval_document(doc, &Path::parse(s).unwrap())
            .into_iter()
            .map(|n| doc.text_value(n))
            .collect()
    }

    #[test]
    fn descendant_axis() {
        let d = hospital();
        assert_eq!(q(&d, "//pname"), ["Betty", "Matt"]);
        assert_eq!(q(&d, "//disease").len(), 3);
    }

    #[test]
    fn child_chain() {
        let d = hospital();
        assert_eq!(q(&d, "/hospital/patient/pname"), ["Betty", "Matt"]);
        assert!(q(&d, "/patient").is_empty());
    }

    #[test]
    fn equality_predicate() {
        let d = hospital();
        assert_eq!(q(&d, "//patient[pname = 'Betty']/SSN"), ["763895"]);
        assert_eq!(q(&d, "//patient[pname = Matt]/SSN"), ["276543"]);
    }

    #[test]
    fn descendant_predicate() {
        let d = hospital();
        // Both patients have diarrhea.
        assert_eq!(q(&d, "//patient[.//disease = 'diarrhea']/pname").len(), 2);
        assert_eq!(q(&d, "//patient[.//disease = 'leukemia']/pname"), ["Matt"]);
    }

    #[test]
    fn numeric_range_predicates() {
        let d = hospital();
        assert_eq!(q(&d, "//patient[age > 36]/pname"), ["Matt"]);
        assert_eq!(q(&d, "//patient[age >= 35]/pname").len(), 2);
        assert_eq!(q(&d, "//patient[age < 36]/pname"), ["Betty"]);
        assert_eq!(q(&d, "//patient[age != 35]/pname"), ["Matt"]);
    }

    #[test]
    fn attribute_predicates() {
        let d = hospital();
        assert_eq!(
            q(&d, "//patient[.//policy/@coverage >= 10000]/pname"),
            ["Betty"]
        );
        assert_eq!(q(&d, "//policy[@coverage = 5000]"), ["78543"]);
    }

    #[test]
    fn attribute_output() {
        let d = hospital();
        assert_eq!(q(&d, "//policy/@coverage"), ["1000000", "5000"]);
        assert_eq!(q(&d, "//patient/@id"), ["1", "2"]);
    }

    #[test]
    fn wildcard() {
        let d = hospital();
        assert_eq!(q(&d, "/hospital/*").len(), 2);
        assert_eq!(q(&d, "//treat/*").len(), 6);
    }

    #[test]
    fn existence_predicate() {
        let d = hospital();
        assert_eq!(q(&d, "//patient[insurance]").len(), 2);
        assert!(q(&d, "//patient[nonexistent]").is_empty());
    }

    #[test]
    fn following_sibling_axis() {
        let d = hospital();
        assert_eq!(
            q(
                &d,
                "//patient[pname=Matt]/treat/following-sibling::treat//disease"
            ),
            ["diarrhea"]
        );
    }

    #[test]
    fn parent_axis() {
        let d = hospital();
        let names = q(&d, "//disease/../doctor");
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn self_path_returns_root() {
        let d = hospital();
        let r = eval_document(&d, &Path::parse(".").unwrap());
        assert_eq!(r, vec![d.root().unwrap()]);
    }

    #[test]
    fn text_test_selects_leaves() {
        let d = hospital();
        assert_eq!(q(&d, "//pname/text()"), ["Betty", "Matt"]);
    }

    #[test]
    fn results_in_document_order_and_deduped() {
        let d = hospital();
        let r = eval_document(&d, &Path::parse("//patient//disease").unwrap());
        let mut sorted = r.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(r, sorted);
    }

    #[test]
    fn node_satisfies_relative() {
        let d = hospital();
        let betty = eval_document(&d, &Path::parse("//patient[pname=Betty]").unwrap())[0];
        assert!(node_satisfies(
            &d,
            betty,
            &Path::parse("insurance").unwrap()
        ));
        assert!(!node_satisfies(&d, betty, &Path::parse("zzz").unwrap()));
    }

    #[test]
    fn matches_checks_membership() {
        let d = hospital();
        let root = d.root().unwrap();
        assert!(matches(&d, &Path::parse("/hospital").unwrap(), root));
        assert!(!matches(&d, &Path::parse("//patient").unwrap(), root));
    }

    #[test]
    fn empty_document() {
        let d = Document::new();
        assert!(eval_document(&d, &Path::parse("//a").unwrap()).is_empty());
    }

    #[test]
    fn positional_predicates() {
        let d = hospital();
        // Second treat of Matt.
        assert_eq!(
            q(&d, "//patient[pname=Matt]/treat[2]/disease"),
            ["diarrhea"]
        );
        assert_eq!(
            q(&d, "//patient[pname=Matt]/treat[last()]/doctor"),
            ["Smith"]
        );
        assert_eq!(q(&d, "//patient[1]/pname"), ["Betty"]);
        assert!(q(&d, "//patient[pname=Betty]/treat[2]").is_empty());
    }

    #[test]
    fn boolean_predicates() {
        let d = hospital();
        assert_eq!(
            q(&d, "//patient[age = 35 and pname = 'Betty']/SSN"),
            ["763895"]
        );
        assert!(q(&d, "//patient[age = 35 and pname = 'Matt']/SSN").is_empty());
        assert_eq!(
            q(&d, "//patient[pname = 'Betty' or pname = 'Matt']/SSN").len(),
            2
        );
        // Precedence: and binds tighter than or.
        assert_eq!(
            q(
                &d,
                "//patient[age = 99 and pname = 'Betty' or pname = 'Matt']/pname"
            ),
            ["Matt"]
        );
        // Parentheses override.
        assert!(q(
            &d,
            "//patient[age = 99 and (pname = 'Betty' or pname = 'Matt')]/pname"
        )
        .is_empty());
    }

    #[test]
    fn position_with_structural_mix() {
        let d = hospital();
        assert_eq!(q(&d, "//patient[treat and age >= 35][1]/pname"), ["Betty"]);
    }

    #[test]
    fn not_predicate() {
        let d = hospital();
        assert_eq!(q(&d, "//patient[not(age = 35)]/pname"), ["Matt"]);
        assert_eq!(
            q(&d, "//patient[not(insurance)]/pname").len(),
            0,
            "both patients have insurance"
        );
        assert_eq!(
            q(&d, "//patient[not(pname = 'Betty' or pname = 'Matt')]").len(),
            0
        );
    }

    #[test]
    fn union_queries() {
        let d = hospital();
        let paths = Path::parse_union("//pname | //SSN").unwrap();
        assert_eq!(paths.len(), 2);
        let r = eval_union(&d, &paths);
        assert_eq!(r.len(), 4);
        // Union with overlap dedups by node.
        let paths = Path::parse_union("//patient | //patient[age = 35]").unwrap();
        assert_eq!(eval_union(&d, &paths).len(), 2);
        // A `|` inside a quoted literal is not a separator.
        let paths = Path::parse_union("//patient[pname = 'a|b']").unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn string_functions() {
        let d = hospital();
        assert_eq!(q(&d, "//patient[contains(pname, 'ett')]/SSN"), ["763895"]);
        assert_eq!(q(&d, "//patient[starts-with(pname, 'M')]/SSN"), ["276543"]);
        assert_eq!(q(&d, "//treat[contains(disease, 'ia')]").len(), 3);
        assert!(q(&d, "//patient[contains(pname, 'zzz')]").is_empty());
        assert_eq!(
            q(&d, "//patient[contains(pname, 'tt') and age = 35]/pname"),
            ["Betty"]
        );
        assert_eq!(
            q(&d, "//patient[not(starts-with(pname, 'B'))]/pname"),
            ["Matt"]
        );
    }

    #[test]
    fn compare_direction_is_value_op_literal() {
        // [age > 36] means value > 36, not 36 > value.
        let d = Document::parse("<r><p><age>40</age></p><p><age>30</age></p></r>").unwrap();
        assert_eq!(q(&d, "//p[age > 36]/age"), ["40"]);
        assert_eq!(q(&d, "//p[age < 36]/age"), ["30"]);
    }
}
