//! End-to-end CLI workflow: gen → encrypt → query → insert → delete →
//! aggregate → stats, over real state files in a temp directory.

use exq_cli::*;
use std::path::PathBuf;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!("exq-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn setup(dir: &TempDir) -> (PathBuf, PathBuf) {
    let doc = dir.path("doc.xml");
    let cons = dir.path("sc.txt");
    cmd_gen("hospital", 4, 1, &doc, Some(&cons)).unwrap();
    let server = dir.path("server.exq");
    let client = dir.path("client.exq");
    let report = cmd_encrypt(&doc, &cons, "opt", 7, &server, &client).unwrap();
    assert!(report.contains("blocks:"));
    (server, client)
}

#[test]
fn full_workflow() {
    let dir = TempDir::new("flow");
    let (server, client) = setup(&dir);

    // Query.
    let out = cmd_query(
        &server,
        &client,
        "//patient[pname = 'Betty']/SSN",
        false,
        1,
        None,
    )
    .unwrap();
    assert!(out.contains("763895"), "query output: {out}");
    assert!(out.contains("1 result(s)"));

    // Naive agrees.
    let naive = cmd_query(
        &server,
        &client,
        "//patient[pname = 'Betty']/SSN",
        true,
        1,
        None,
    )
    .unwrap();
    assert!(naive.contains("763895"));

    // Aggregate.
    let out = cmd_aggregate(&server, &client, "max", "//policy/@coverage").unwrap();
    assert!(out.starts_with("1000000"), "aggregate output: {out}");
    let out = cmd_aggregate(&server, &client, "count", "//patient").unwrap();
    assert!(out.starts_with('2'));

    // Insert.
    let rec = dir.path("rec.xml");
    std::fs::write(
        &rec,
        "<patient><pname>Zoe</pname><SSN>112233</SSN><age>29</age></patient>",
    )
    .unwrap();
    let out = cmd_insert(&server, &client, "/hospital", &rec, 3).unwrap();
    assert!(out.contains("inserted"));
    let out = cmd_query(
        &server,
        &client,
        "//patient[pname = 'Zoe']/SSN",
        false,
        1,
        None,
    )
    .unwrap();
    assert!(out.contains("112233"));

    // Delete.
    let out = cmd_delete(&server, &client, "//patient[age = 29]").unwrap();
    assert!(out.contains("deleted 1"));
    let out = cmd_query(&server, &client, "//patient", false, 1, None).unwrap();
    assert!(out.contains("2 result(s)"), "after delete: {out}");

    // Stats.
    let out = cmd_stats(&server).unwrap();
    assert!(out.contains("encrypted blocks"));

    // Explain.
    let out = cmd_explain(&server, &client, "//patient[age = 35]/pname").unwrap();
    assert!(out.contains("anchor matches"), "explain output: {out}");
    let out = cmd_explain(&server, &client, "//a/../b").unwrap();
    assert!(out.contains("naive fallback"));
}

#[test]
fn export_recovers_plaintext() {
    let dir = TempDir::new("export");
    let (server, client) = setup(&dir);
    let out = dir.path("recovered.xml");
    let report = cmd_export(&server, &client, &out).unwrap();
    assert!(report.contains("exported"));
    let recovered = std::fs::read_to_string(&out).unwrap();
    // All original sensitive values are back, and no artifacts remain.
    for v in ["Betty", "763895", "34221", "1000000"] {
        assert!(recovered.contains(v), "missing {v}");
    }
    assert!(!recovered.contains("_exq_enc"));
    assert!(!recovered.contains("_exq_decoy"));
}

#[test]
fn gen_datasets() {
    let dir = TempDir::new("gen");
    for ds in ["xmark", "nasa"] {
        let doc = dir.path(&format!("{ds}.xml"));
        let cons = dir.path(&format!("{ds}.txt"));
        let report = cmd_gen(ds, 16, 5, &doc, Some(&cons)).unwrap();
        assert!(report.contains("wrote"));
        assert!(doc.exists() && cons.exists());
        // Generated constraints re-parse.
        assert!(read_constraints(&cons).unwrap().len() >= 4);
    }
    assert!(cmd_gen("bogus", 1, 1, &dir.path("x.xml"), None).is_err());
}

#[test]
fn usage_errors() {
    let dir = TempDir::new("usage");
    assert!(cmd_query(
        &dir.path("missing"),
        &dir.path("missing2"),
        "//x",
        false,
        1,
        None
    )
    .is_err());
    assert!(parse_scheme("nope").is_err());
    let (server, client) = setup(&dir);
    assert!(cmd_aggregate(&server, &client, "median", "//age").is_err());
}

#[test]
fn binary_smoke() {
    // Drive the actual binary once to cover main's dispatch.
    let dir = TempDir::new("bin");
    let doc = dir.path("doc.xml");
    let cons = dir.path("sc.txt");
    cmd_gen("hospital", 4, 1, &doc, Some(&cons)).unwrap();
    let exe = env!("CARGO_BIN_EXE_exq");
    let out = std::process::Command::new(exe)
        .args([
            "encrypt",
            "--in",
            doc.to_str().unwrap(),
            "--constraints",
            cons.to_str().unwrap(),
            "--scheme",
            "opt",
            "--server",
            dir.path("s.exq").to_str().unwrap(),
            "--client",
            dir.path("c.exq").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = std::process::Command::new(exe)
        .args([
            "query",
            "--server",
            dir.path("s.exq").to_str().unwrap(),
            "--client",
            dir.path("c.exq").to_str().unwrap(),
            "//patient/pname",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Betty"));
    // Unknown command fails with usage.
    let out = std::process::Command::new(exe)
        .arg("frobnicate")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn event_loop_serve_answers_pipelined_queries() {
    let dir = TempDir::new("evloop-pipeline");
    let (server, client) = setup(&dir);
    let (handle, _ckpt, banner) =
        cmd_serve(&server, "127.0.0.1:0", 2, 1, Some(64), 0, 0, true, None).unwrap();
    assert!(banner.contains("event loop"), "banner: {banner}");
    let addr = handle.addr().to_string();

    // 8 copies of the query in flight on one connection; the command
    // verifies every answer agrees before printing.
    let out = cmd_query_remote(&addr, &client, "//patient/pname", 1, 1, None, 8).unwrap();
    assert!(out.contains("Betty"), "results: {out}");
    assert!(out.contains("8 in flight"), "report: {out}");
    handle.shutdown();
}

#[test]
fn serve_then_stats_scrapes_live_metrics() {
    let dir = TempDir::new("stats-live");
    let (server, client) = setup(&dir);
    let (handle, _ckpt, _banner) =
        cmd_serve(&server, "127.0.0.1:0", 2, 1, Some(64), 0, 0, false, None).unwrap();
    let addr = handle.addr().to_string();

    // Drive one query so the counters move, then scrape the registry.
    let out = cmd_query_remote(&addr, &client, "//patient/pname", 1, 1, None, 1).unwrap();
    assert!(out.contains("Betty"));
    let text = cmd_stats_remote(&addr).unwrap();
    assert!(
        text.contains("# TYPE exq_wire_requests_total counter"),
        "metrics text: {text}"
    );
    assert!(
        text.contains("exq_cache_response_misses_total"),
        "metrics text: {text}"
    );
    handle.shutdown();
    assert!(
        cmd_stats_remote(&addr).is_err(),
        "server gone, scrape fails"
    );
}

#[test]
fn trace_out_flag_writes_stitched_span_tree() {
    let dir = TempDir::new("trace");
    let (server, client) = setup(&dir);
    let exe = env!("CARGO_BIN_EXE_exq");
    let trace = dir.path("trace.jsonl");
    let out = std::process::Command::new(exe)
        .args([
            "query",
            "--server",
            server.to_str().unwrap(),
            "--client",
            client.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "//patient[pname = 'Betty']/SSN",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("763895"));

    let text = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 5, "expected a span tree, got:\n{text}");
    for needle in [
        "\"name\":\"client.translate\"",
        "\"name\":\"wire.roundtrip\"",
        "\"name\":\"server.dsi_lookup\"",
        "\"side\":\"client\"",
        "\"side\":\"server\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // One stitched tree: a single shared trace id across all spans.
    let trace_ids: std::collections::HashSet<&str> = lines
        .iter()
        .map(|l| {
            let start = l.find("\"trace\":\"").unwrap() + 9;
            &l[start..start + 16]
        })
        .collect();
    assert_eq!(trace_ids.len(), 1, "spans must share one trace id:\n{text}");
}

#[test]
fn serve_and_query_remote() {
    let dir = TempDir::new("serve");
    let (server, client) = setup(&dir);

    // Bind on an ephemeral port, then query it over the wire.
    let (handle, _ckpt, banner) =
        cmd_serve(&server, "127.0.0.1:0", 2, 2, Some(64), 0, 0, false, None).unwrap();
    assert!(banner.contains("serving"), "banner: {banner}");
    assert!(banner.contains("cache 64 entries"), "banner: {banner}");
    let addr = handle.addr().to_string();

    let remote = cmd_query_remote(
        &addr,
        &client,
        "//patient[pname = 'Betty']/SSN",
        2,
        1,
        None,
        1,
    )
    .unwrap();
    assert!(remote.contains("763895"), "remote output: {remote}");
    // Local and remote answer lines agree (the byte counter line matches
    // too, since both links count the same frames).
    let local = cmd_query(
        &server,
        &client,
        "//patient[pname = 'Betty']/SSN",
        false,
        1,
        None,
    )
    .unwrap();
    assert_eq!(remote, local);

    // A repeat of the same remote query hits the server response cache.
    let again = cmd_query_remote(
        &addr,
        &client,
        "//patient[pname = 'Betty']/SSN",
        2,
        1,
        None,
        1,
    )
    .unwrap();
    assert_eq!(again, remote);
    let stats = handle.cache_stats();
    assert!(stats.response_hits >= 1, "stats: {stats:?}");
    assert!(!format_cache_stats(&stats).is_empty());

    handle.shutdown();
    // Server gone: the connect retries, then errors instead of hanging.
    assert!(cmd_query_remote(&addr, &client, "//patient", 1, 0, None, 1).is_err());
}

#[test]
fn ping_measures_live_server_and_fails_on_dead_one() {
    let dir = TempDir::new("ping");
    let (server, _client) = setup(&dir);
    let (handle, _ckpt, _banner) =
        cmd_serve(&server, "127.0.0.1:0", 1, 1, Some(0), 0, 0, false, None).unwrap();
    let addr = handle.addr().to_string();
    let out = cmd_ping(&addr, 3).unwrap();
    assert!(out.contains("seq=2"), "ping output: {out}");
    assert!(out.contains("3 ping(s)"), "ping output: {out}");
    handle.shutdown();
    assert!(cmd_ping(&addr, 1).is_err(), "dead server must fail ping");
}

/// Two databases, sealed under different seeds, registered in one
/// directory: create → list → host → route with --db → drop.
#[test]
fn db_verbs_manage_a_multi_tenant_directory() {
    let dir = TempDir::new("db-verbs");
    let dbdir = dir.path("dbs");

    // Two independently keyed databases from the same plaintext.
    let doc = dir.path("doc.xml");
    let cons = dir.path("sc.txt");
    cmd_gen("hospital", 4, 1, &doc, Some(&cons)).unwrap();
    let (srv_a, cli_a) = (dir.path("a-server.exq"), dir.path("a-client.exq"));
    let (srv_b, cli_b) = (dir.path("b-server.exq"), dir.path("b-client.exq"));
    cmd_encrypt(&doc, &cons, "opt", 11, &srv_a, &cli_a).unwrap();
    cmd_encrypt(&doc, &cons, "opt", 22, &srv_b, &cli_b).unwrap();

    let out = cmd_db_create(&dbdir, "ward-a", &srv_a, Some(&cli_a), 0).unwrap();
    assert!(out.contains("created database `ward-a`"), "{out}");
    let out = cmd_db_create(&dbdir, "ward-b", &srv_b, Some(&cli_b), 8).unwrap();
    assert!(out.contains("ward-b"), "{out}");
    // Duplicate names are a typed error, not a silent overwrite.
    assert!(cmd_db_create(&dbdir, "ward-a", &srv_b, None, 0).is_err());

    let listing = cmd_db_list(&dbdir).unwrap();
    assert!(listing.contains("ward-a (default)"), "{listing}");
    assert!(listing.contains("ward-b"), "{listing}");
    assert!(listing.contains("max 8 in flight"), "{listing}");
    assert!(listing.contains("2 database(s)"), "{listing}");

    // Host both and route queries by db name; each db only decrypts with
    // its own client artifact.
    let (handle, _ckpt, banner) =
        cmd_db_host(&dbdir, "127.0.0.1:0", 2, 1, Some(64), 0, 0, 0, false, None).unwrap();
    assert!(banner.contains("2 database(s)"), "{banner}");
    let addr = handle.addr().to_string();
    let out = cmd_query_remote(&addr, &cli_a, "//patient/pname", 1, 1, Some("ward-a"), 1).unwrap();
    assert!(out.contains("Betty"), "{out}");
    let out = cmd_query_remote(&addr, &cli_b, "//patient/pname", 1, 1, Some("ward-b"), 1).unwrap();
    assert!(out.contains("Betty"), "{out}");
    // No --db lands on the default (ward-a) and still answers for cli_a.
    let out = cmd_query_remote(&addr, &cli_a, "//patient/pname", 1, 1, None, 1).unwrap();
    assert!(out.contains("Betty"), "{out}");
    // Unknown db: typed error over the wire, server stays up.
    assert!(cmd_query_remote(&addr, &cli_a, "//patient", 1, 0, Some("ward-z"), 1).is_err());
    let probe =
        cmd_query_remote(&addr, &cli_b, "//patient/pname", 1, 1, Some("ward-b"), 1).unwrap();
    assert!(probe.contains("Betty"), "{probe}");

    // The metrics scrape breaks traffic out per db.
    let text = cmd_stats_remote(&addr).unwrap();
    assert!(
        text.contains("exq_db_requests_total{db=\"ward-a\"}"),
        "metrics: {text}"
    );
    assert!(
        text.contains("exq_cache_response_hits_total{db=\"ward-b\"}")
            || text.contains("exq_cache_response_misses_total{db=\"ward-b\"}"),
        "metrics: {text}"
    );
    handle.shutdown();

    let out = cmd_db_drop(&dbdir, "ward-b").unwrap();
    assert!(out.contains("1 remaining"), "{out}");
    assert!(
        !dbdir.join("ward-b.exq").exists(),
        "state file must be deleted"
    );
    let listing = cmd_db_list(&dbdir).unwrap();
    assert!(!listing.contains("ward-b"), "{listing}");
    assert!(
        cmd_db_drop(&dbdir, "ward-b").is_err(),
        "double drop is typed"
    );
}

/// `db host` pointed at a legacy single-file artifact auto-migrates it.
#[test]
fn db_host_serves_legacy_single_file_artifact() {
    let dir = TempDir::new("db-legacy");
    let (server, client) = setup(&dir);
    let (handle, _ckpt, banner) =
        cmd_db_host(&server, "127.0.0.1:0", 1, 1, None, 0, 0, 0, false, None).unwrap();
    assert!(banner.contains("default"), "{banner}");
    let addr = handle.addr().to_string();
    let out = cmd_query_remote(&addr, &client, "//patient/pname", 1, 1, None, 1).unwrap();
    assert!(out.contains("Betty"), "{out}");
    handle.shutdown();
}

#[test]
fn serve_out_of_core_answers_and_persists_mutations() {
    let dir = TempDir::new("ooc-serve");
    let (server, client) = setup(&dir);

    // Host the artifact out-of-core with a 1 MiB buffer budget. The banner
    // reports the paged footprint; answers must match the resident path.
    let (handle, ckpt, banner) =
        cmd_serve(&server, "127.0.0.1:0", 2, 1, Some(64), 0, 0, false, Some(1)).unwrap();
    assert!(ckpt.is_some(), "paged serve must spawn a checkpointer");
    assert!(banner.contains("out-of-core"), "{banner}");
    let addr = handle.addr().to_string();
    let out = cmd_query_remote(
        &addr,
        &client,
        "//patient[pname = 'Betty']/SSN",
        1,
        0,
        None,
        1,
    )
    .unwrap();
    assert!(out.contains("763895"), "{out}");
    drop(ckpt);
    handle.shutdown();

    // The pages sibling now exists and a re-serve opens it directly.
    assert!(exq_core::store::PagedDb::is_paged(&server));
    let (handle, ckpt, _banner) =
        cmd_serve(&server, "127.0.0.1:0", 2, 1, Some(64), 0, 0, false, Some(1)).unwrap();
    let addr = handle.addr().to_string();
    let out = cmd_query_remote(
        &addr,
        &client,
        "//patient[pname = 'Betty']/SSN",
        1,
        0,
        None,
        1,
    )
    .unwrap();
    assert!(out.contains("763895"), "{out}");
    drop(ckpt);
    handle.shutdown();
}

#[test]
fn debug_dumps_flight_recorder_and_top_renders_a_frame() {
    let dir = TempDir::new("debug-top");
    let (server, client) = setup(&dir);
    let (handle, _ckpt, _banner) =
        cmd_serve(&server, "127.0.0.1:0", 2, 1, Some(64), 0, 0, false, None).unwrap();
    let addr = handle.addr().to_string();

    // Drive traffic so the recorder and the per-db counters have events.
    for _ in 0..3 {
        let out = cmd_query_remote(&addr, &client, "//patient/pname", 1, 1, None, 1).unwrap();
        assert!(out.contains("Betty"));
    }

    // `exq debug`: raw dump is JSON lines with admissions in it.
    let dump = cmd_debug(&addr, false).unwrap();
    assert!(dump.contains("\"event\":\"admit\""), "dump: {dump}");
    assert!(
        exq_core::flight::validate_json_lines(&dump).unwrap() >= 3,
        "dump: {dump}"
    );
    // `exq debug --check`: validation summary instead of the payload.
    let summary = cmd_debug(&addr, true).unwrap();
    assert!(summary.contains("flight dump OK"), "summary: {summary}");

    // `exq top --once`: one scrape-and-diff frame with the header and the
    // hosted db's row (queries above keep the window's deltas nonzero).
    let frame = cmd_top(&addr, 50).unwrap();
    assert!(frame.contains("qps"), "frame: {frame}");
    assert!(frame.contains("p99(ms)"), "frame: {frame}");
    handle.shutdown();

    // Dead server: both commands fail typed instead of hanging.
    assert!(cmd_debug(&addr, false).is_err());
    assert!(cmd_top(&addr, 1).is_err());
}

#[test]
fn top_frame_computes_rates_from_scrape_deltas() {
    let prev = "\
# TYPE exq_db_requests_total counter
exq_db_requests_total{db=\"ward-a\"} 100
exq_db_cache_hits_total{db=\"ward-a\"} 40
exq_db_shed_total{db=\"ward-a\"} 0
exq_db_pages_faulted_total{db=\"ward-a\"} 10
exq_span_db_ward-a_bucket{le=\"0.001\"} 90
exq_span_db_ward-a_bucket{le=\"+Inf\"} 100
";
    let cur = "\
# TYPE exq_db_requests_total counter
exq_db_requests_total{db=\"ward-a\"} 300
exq_db_cache_hits_total{db=\"ward-a\"} 140
exq_db_shed_total{db=\"ward-a\"} 4
exq_db_pages_faulted_total{db=\"ward-a\"} 30
exq_store_resident_pages{db=\"ward-a\"} 17
exq_store_wal_depth{db=\"ward-a\"} 3
exq_span_db_ward-a_bucket{le=\"0.001\"} 289
exq_span_db_ward-a_bucket{le=\"+Inf\"} 300
";
    let frame = top_frame_from(prev, cur, 2.0);
    // 200 requests over 2s → 100 qps; 100 hits / 200 requests → 50%;
    // 20 faults / 2s → 10/s; gauges read straight from the new scrape.
    // 199/200 window observations land ≤1ms, so p99 is the 1ms bound.
    assert!(frame.contains("ward-a"), "frame: {frame}");
    assert!(frame.contains("100.0"), "frame: {frame}");
    assert!(frame.contains("50%"), "frame: {frame}");
    assert!(frame.contains("10.0"), "frame: {frame}");
    assert!(frame.contains("17"), "frame: {frame}");
    assert!(frame.contains("1.00"), "frame: {frame}");

    // No per-db series at all: the frame says so instead of rendering
    // an empty table.
    let empty = top_frame_from("", "", 1.0);
    assert!(empty.contains("no per-db series"), "frame: {empty}");
}

#[test]
fn db_list_reports_out_of_core_footprint() {
    let dir = TempDir::new("ooc-list");
    let (server, _client) = setup(&dir);
    let dbdir = dir.path("dbs");
    cmd_db_create(&dbdir, "ward", &server, None, 0).unwrap();

    // Resident db: no paged columns yet.
    let listing = cmd_db_list(&dbdir).unwrap();
    assert!(listing.contains("ward"), "{listing}");
    assert!(!listing.contains("paged:"), "{listing}");

    // Migrate by hosting out-of-core once, then list again.
    let (handle, ckpt, _banner) = cmd_db_host(
        &dbdir,
        "127.0.0.1:0",
        1,
        1,
        Some(0),
        0,
        0,
        0,
        false,
        Some(1),
    )
    .unwrap();
    drop(ckpt);
    handle.shutdown();
    let listing = cmd_db_list(&dbdir).unwrap();
    assert!(listing.contains("paged:"), "{listing}");
    assert!(listing.contains("bytes on disk"), "{listing}");
    assert!(listing.contains("WAL depth 0"), "{listing}");
}
