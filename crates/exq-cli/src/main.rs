//! The `exq` binary: argument dispatch over [`exq_cli`]'s commands.

use exq_cli::*;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    let mut flags: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if name == "naive" || name == "event-loop" || name == "once" || name == "check" {
                flags.insert(name.to_owned(), "true".to_owned());
            } else {
                i += 1;
                let v = args
                    .get(i)
                    .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                flags.insert(name.to_owned(), v.clone());
            }
        } else {
            positional.push(args[i].clone());
        }
        i += 1;
    }
    let path = |k: &str| -> Result<PathBuf, CliError> {
        flags
            .get(k)
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Usage(format!("missing --{k}")))
    };
    let string = |k: &str| -> Result<String, CliError> {
        flags
            .get(k)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("missing --{k}")))
    };
    let seed = flags
        .get("seed")
        .map(|s| s.parse::<u64>())
        .transpose()
        .map_err(|_| CliError::Usage("--seed must be an integer".into()))?
        .unwrap_or(42);
    // 0 means "auto": pick up EXQ_THREADS or the machine's parallelism.
    let threads = flags
        .get("threads")
        .map(|s| s.parse::<usize>())
        .transpose()
        .map_err(|_| CliError::Usage("--threads must be an integer".into()))?
        .unwrap_or(0);
    // None resolves from EXQ_CACHE / the built-in default; 0 disables.
    let cache_entries = flags
        .get("cache-entries")
        .map(|s| s.parse::<usize>())
        .transpose()
        .map_err(|_| CliError::Usage("--cache-entries must be an integer".into()))?;
    // None falls back to EXQ_CACHE_MB; absent both, host fully resident.
    let cache_mb = flags
        .get("cache-mb")
        .map(|s| s.parse::<usize>())
        .transpose()
        .map_err(|_| CliError::Usage("--cache-mb must be an integer".into()))?;
    // Global observability flags, honored by every command.
    let slow_ms = flags
        .get("slow-ms")
        .map(|s| s.parse::<u64>())
        .transpose()
        .map_err(|_| CliError::Usage("--slow-ms must be an integer".into()))?;
    apply_telemetry_flags(
        flags.get("trace-out").map(PathBuf::from).as_deref(),
        slow_ms,
        flags.get("log-level").map(String::as_str),
    )?;

    match cmd.as_str() {
        "gen" => {
            let size_kb = flags
                .get("size-kb")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|_| CliError::Usage("--size-kb must be an integer".into()))?
                .unwrap_or(64);
            cmd_gen(
                &string("dataset")?,
                size_kb,
                seed,
                &path("out")?,
                flags.get("constraints-out").map(PathBuf::from).as_deref(),
            )
        }
        "encrypt" => cmd_encrypt(
            &path("in")?,
            &path("constraints")?,
            flags.get("scheme").map(String::as_str).unwrap_or("opt"),
            seed,
            &path("server")?,
            &path("client")?,
        ),
        "query" => {
            let q = positional
                .first()
                .ok_or_else(|| CliError::Usage("missing query".into()))?;
            match flags.get("addr") {
                Some(addr) => {
                    // Default retry budget of 3 extra attempts; 0 disables.
                    let retries = flags
                        .get("retries")
                        .map(|s| s.parse::<u32>())
                        .transpose()
                        .map_err(|_| CliError::Usage("--retries must be an integer".into()))?
                        .unwrap_or(3);
                    let pipeline = flags
                        .get("pipeline")
                        .map(|s| s.parse::<usize>())
                        .transpose()
                        .map_err(|_| CliError::Usage("--pipeline must be an integer".into()))?
                        .unwrap_or(1);
                    cmd_query_remote(
                        addr,
                        &path("client")?,
                        q,
                        threads,
                        retries,
                        flags.get("db").map(String::as_str),
                        pipeline,
                    )
                }
                None => cmd_query(
                    &path("server")?,
                    &path("client")?,
                    q,
                    flags.contains_key("naive"),
                    threads,
                    cache_entries,
                ),
            }
        }
        "ping" => {
            let count = flags
                .get("count")
                .map(|s| s.parse::<u32>())
                .transpose()
                .map_err(|_| CliError::Usage("--count must be an integer".into()))?
                .unwrap_or(4);
            cmd_ping(&string("addr")?, count)
        }
        "serve" => {
            let workers = flags
                .get("workers")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|_| CliError::Usage("--workers must be an integer".into()))?
                .unwrap_or(4);
            let max_inflight = flags
                .get("max-inflight")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|_| CliError::Usage("--max-inflight must be an integer".into()))?
                .unwrap_or(0);
            let deadline_ms = flags
                .get("deadline-ms")
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|_| CliError::Usage("--deadline-ms must be an integer".into()))?
                .unwrap_or(0);
            let (handle, _checkpointer, banner) = cmd_serve(
                &path("server")?,
                &string("addr")?,
                workers,
                threads,
                cache_entries,
                max_inflight,
                deadline_ms,
                flags.contains_key("event-loop"),
                cache_mb,
            )?;
            print!("{banner}");
            // Serve until killed; the handle's threads do all the work (the
            // checkpointer folds the WAL in the background until dropped).
            // Periodic cache counters go through the leveled stderr logger
            // (`--log-level info` to see them) so stdout stays
            // machine-readable for scripts scraping the banner.
            loop {
                std::thread::sleep(std::time::Duration::from_secs(60));
                exq_core::telemetry::log(
                    exq_core::telemetry::Level::Info,
                    &format_cache_stats(&handle.cache_stats()),
                );
            }
        }
        "db" => {
            let verb = positional
                .first()
                .ok_or_else(|| CliError::Usage("db needs a verb (create|list|drop|host)".into()))?;
            let max_inflight = flags
                .get("max-inflight")
                .map(|s| s.parse::<usize>())
                .transpose()
                .map_err(|_| CliError::Usage("--max-inflight must be an integer".into()))?
                .unwrap_or(0);
            match verb.as_str() {
                "create" => cmd_db_create(
                    &path("dir")?,
                    &string("name")?,
                    &path("server")?,
                    flags.get("client").map(PathBuf::from).as_deref(),
                    max_inflight,
                ),
                "list" => cmd_db_list(&path("dir")?),
                "drop" => cmd_db_drop(&path("dir")?, &string("name")?),
                "host" => {
                    let workers = flags
                        .get("workers")
                        .map(|s| s.parse::<usize>())
                        .transpose()
                        .map_err(|_| CliError::Usage("--workers must be an integer".into()))?
                        .unwrap_or(4);
                    let per_db = flags
                        .get("max-inflight-per-db")
                        .map(|s| s.parse::<usize>())
                        .transpose()
                        .map_err(|_| {
                            CliError::Usage("--max-inflight-per-db must be an integer".into())
                        })?
                        .unwrap_or(0);
                    let deadline_ms = flags
                        .get("deadline-ms")
                        .map(|s| s.parse::<u64>())
                        .transpose()
                        .map_err(|_| CliError::Usage("--deadline-ms must be an integer".into()))?
                        .unwrap_or(0);
                    let (handle, _checkpointer, banner) = cmd_db_host(
                        &path("dir")?,
                        &string("addr")?,
                        workers,
                        threads,
                        cache_entries,
                        max_inflight,
                        per_db,
                        deadline_ms,
                        flags.contains_key("event-loop"),
                        cache_mb,
                    )?;
                    print!("{banner}");
                    // Serve until killed, logging per-db cache counters.
                    loop {
                        std::thread::sleep(std::time::Duration::from_secs(60));
                        for (name, stats) in handle.cache_stats_per_db() {
                            exq_core::telemetry::log(
                                exq_core::telemetry::Level::Info,
                                &format!("db {name}: {}", format_cache_stats(&stats)),
                            );
                        }
                    }
                }
                other => Err(CliError::Usage(format!(
                    "unknown db verb `{other}` (create|list|drop|host)"
                ))),
            }
        }
        "aggregate" => {
            let p = positional
                .first()
                .ok_or_else(|| CliError::Usage("missing path".into()))?;
            cmd_aggregate(&path("server")?, &path("client")?, &string("fn")?, p)
        }
        "insert" => cmd_insert(
            &path("server")?,
            &path("client")?,
            &string("parent")?,
            &path("record")?,
            seed,
        ),
        "delete" => {
            let q = positional
                .first()
                .ok_or_else(|| CliError::Usage("missing query".into()))?;
            cmd_delete(&path("server")?, &path("client")?, q)
        }
        "explain" => {
            let q = positional
                .first()
                .ok_or_else(|| CliError::Usage("missing query".into()))?;
            cmd_explain(&path("server")?, &path("client")?, q)
        }
        "export" => cmd_export(&path("server")?, &path("client")?, &path("out")?),
        "stats" => match flags.get("addr") {
            Some(addr) => cmd_stats_remote(addr),
            None => cmd_stats(&path("server")?),
        },
        "top" => {
            let addr = string("addr")?;
            let interval_ms = flags
                .get("interval-ms")
                .map(|s| s.parse::<u64>())
                .transpose()
                .map_err(|_| CliError::Usage("--interval-ms must be an integer".into()))?
                .unwrap_or(1000);
            if flags.contains_key("once") {
                return cmd_top(&addr, interval_ms);
            }
            // Live view: one frame per interval until killed.
            loop {
                let frame = cmd_top(&addr, interval_ms)?;
                // ANSI clear-and-home so successive frames overwrite in place.
                print!("\x1b[2J\x1b[H{frame}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
        }
        "debug" => cmd_debug(&string("addr")?, flags.contains_key("check")),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}
