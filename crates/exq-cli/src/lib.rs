//! Command implementations behind the `exq` binary.
//!
//! Each command is a plain function from parsed arguments to a printable
//! report, so the test suite can drive them without spawning processes.

use exq_core::aggregate::Aggregate;
use exq_core::codec::Message;
use exq_core::constraints::SecurityConstraint;
use exq_core::evloop::serve_event;
use exq_core::retry::{roundtrip_pipelined, Retry, RetryConfig};
use exq_core::scheme::SchemeKind;
use exq_core::store::{checkpoint_interval, Checkpointer, PagedDb, StoreOptions};
use exq_core::system::{OutsourceConfig, Outsourcer};
use exq_core::telemetry;
use exq_core::tenant::TenantRegistry;
use exq_core::transport::{
    serve_multi, InProcess, Pipeline, ServeConfig, ServeHandle, TcpTransport, Transport,
};
use exq_core::{Client, CoreError, Server};
use exq_xml::Document;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// CLI-level error: core error, usage problem, or data a peer sent that
/// failed validation.
#[derive(Debug)]
pub enum CliError {
    Core(CoreError),
    Usage(String),
    Io(std::io::Error),
    Data(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Data(m) => write!(f, "invalid data: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

fn usage<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError::Usage(msg.into()))
}

/// Applies the global observability flags (`--trace-out`, `--slow-ms`,
/// `--log-level`) to the process-wide telemetry state. Every command
/// accepts them; all three are optional.
pub fn apply_telemetry_flags(
    trace_out: Option<&Path>,
    slow_ms: Option<u64>,
    log_level: Option<&str>,
) -> Result<(), CliError> {
    if let Some(path) = trace_out {
        telemetry::set_trace_out(path)
            .map_err(|e| CliError::Usage(format!("--trace-out {}: {e}", path.display())))?;
    }
    if let Some(ms) = slow_ms {
        telemetry::set_slow_ms(ms);
    }
    if let Some(level) = log_level {
        let level = telemetry::Level::parse(level).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown --log-level `{level}` (off|error|warn|info|debug)"
            ))
        })?;
        telemetry::set_log_level(level);
    }
    Ok(())
}

/// Parses a scheme name.
pub fn parse_scheme(name: &str) -> Result<SchemeKind, CliError> {
    match name {
        "top" => Ok(SchemeKind::Top),
        "sub" => Ok(SchemeKind::Sub),
        "app" => Ok(SchemeKind::App),
        "opt" => Ok(SchemeKind::Opt),
        "match" => Ok(SchemeKind::Match),
        other => usage(format!("unknown scheme `{other}` (top|sub|app|opt|match)")),
    }
}

/// Reads a constraints file: one SC per line, `#` comments and blank lines
/// ignored.
pub fn read_constraints(path: &Path) -> Result<Vec<SecurityConstraint>, CliError> {
    let text = std::fs::read_to_string(path)?;
    parse_constraints(&text)
}

/// Parses constraints from text (same syntax as the file format).
pub fn parse_constraints(text: &str) -> Result<Vec<SecurityConstraint>, CliError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(
            SecurityConstraint::parse(line)
                .map_err(|e| CliError::Usage(format!("constraint on line {}: {e}", i + 1)))?,
        );
    }
    if out.is_empty() {
        return usage("constraints file contains no constraints");
    }
    Ok(out)
}

/// `exq encrypt`: outsource a plaintext document.
pub fn cmd_encrypt(
    input: &Path,
    constraints: &Path,
    scheme: &str,
    seed: u64,
    server_out: &Path,
    client_out: &Path,
) -> Result<String, CliError> {
    let xml = std::fs::read_to_string(input)?;
    let doc = Document::parse(&xml).map_err(|e| CliError::Usage(format!("input document: {e}")))?;
    let cs = read_constraints(constraints)?;
    let kind = parse_scheme(scheme)?;
    let hosted = Outsourcer::new(OutsourceConfig::default()).outsource(&doc, &cs, kind, seed)?;
    if !hosted.scheme.enforces(&doc, &cs) {
        return usage("scheme failed to enforce the constraints (internal error)");
    }
    let mut report = String::new();
    let _ = writeln!(
        report,
        "encrypted {} ({} bytes, {} nodes) with scheme `{}`",
        input.display(),
        doc.serialized_size(),
        doc.len(),
        scheme
    );
    let _ = writeln!(
        report,
        "  blocks: {}   scheme size |S|: {}   hosted bytes: {}",
        hosted.setup.block_count,
        hosted.setup.scheme_size,
        hosted.setup.hosted_bytes()
    );
    let _ = writeln!(
        report,
        "  metadata: {} DSI entries, {} value-index entries",
        hosted.setup.dsi_entries, hosted.setup.value_index_entries
    );
    let (client, server) = hosted.split();
    server.save(server_out)?;
    client.save(client_out)?;
    let _ = writeln!(
        report,
        "  server state -> {}   client state -> {}",
        server_out.display(),
        client_out.display()
    );
    Ok(report)
}

/// `exq query`: run one XPath query through the secure pipeline over an
/// in-process link.
pub fn cmd_query(
    server_path: &Path,
    client_path: &Path,
    query: &str,
    naive: bool,
    threads: usize,
    cache_entries: Option<usize>,
) -> Result<String, CliError> {
    let mut server = Server::load(server_path)?;
    server.set_threads(threads);
    server.set_cache_entries(cache_entries);
    let client = Client::load(client_path)?.with_threads(threads);
    let mut link = InProcess::shared(&server);
    query_over(&client, &mut link, query, naive)
}

/// `exq query --addr`: same pipeline, but the server is a network peer.
/// With `retries > 0` the link is wrapped in the retry layer: transient
/// failures reconnect and replay (mutation-safe via request ids) up to
/// `retries` extra attempts. With `pipeline > 1` the query is submitted
/// that many times on one connection before any reply is read — a direct
/// probe of the server's pipelined serve path (all answers must agree).
#[allow(clippy::too_many_arguments)]
pub fn cmd_query_remote(
    addr: &str,
    client_path: &Path,
    query: &str,
    threads: usize,
    retries: u32,
    db: Option<&str>,
    pipeline: usize,
) -> Result<String, CliError> {
    let client = Client::load(client_path)?.with_threads(threads);
    if pipeline > 1 {
        return query_pipelined(&client, addr, db, query, pipeline, retries);
    }
    let mut tcp = TcpTransport::connect_default(addr)?;
    if let Some(db) = db {
        tcp = tcp.with_db(db)?;
    }
    if retries == 0 {
        let mut link = tcp;
        return query_over(&client, &mut link, query, false);
    }
    let mut link = Retry::new(
        tcp,
        RetryConfig {
            max_attempts: retries.saturating_add(1),
            ping_before_retry: true,
            ..RetryConfig::default()
        },
    );
    query_over(&client, &mut link, query, false)
}

/// `exq query --addr --pipeline N`: N copies of the translated request in
/// flight on one connection. Every reply must post-process to the same
/// results; the report shows them once, plus the amortized per-query time
/// the pipelining bought.
fn query_pipelined(
    client: &Client,
    addr: &str,
    db: Option<&str>,
    query: &str,
    n: usize,
    retries: u32,
) -> Result<String, CliError> {
    let tq = client.translate(query)?;
    let (req, post_query) = match &tq.server_query {
        Some(sq) => (Message::Query(sq.clone()), &tq.post_query),
        None => (Message::NaiveQuery, &tq.full_query),
    };
    let mut pipe = Pipeline::connect_default(addr)?;
    if let Some(db) = db {
        pipe = pipe.with_db(db)?;
    }
    let reqs = vec![req; n];
    let retry = RetryConfig::with_attempts(retries.saturating_add(1));
    let started = std::time::Instant::now();
    let replies = roundtrip_pipelined(&mut pipe, &reqs, &retry)?;
    let wall = started.elapsed();
    let mut results: Option<Vec<String>> = None;
    for (i, reply) in replies.iter().enumerate() {
        let resp = match reply {
            Message::Answer(resp) => resp,
            Message::Error(e) => return Err(CliError::Core(e.clone().into_core())),
            other => {
                return usage(format!(
                    "reply {i} is not an answer: message type {:#04x}",
                    other.msg_type()
                ))
            }
        };
        let post = client.post_process(post_query, resp)?;
        match &results {
            None => results = Some(post.results),
            Some(first) if *first != post.results => {
                return usage(format!(
                    "pipelined reply {i} disagrees with reply 0 — correlation broken?"
                ));
            }
            Some(_) => {}
        }
    }
    let results = results.unwrap_or_default();
    let mut report = String::new();
    for r in &results {
        let _ = writeln!(report, "{r}");
    }
    let _ = writeln!(
        report,
        "-- {} result(s); {n} identical answer(s) with {n} in flight; \
         {wall:.2?} total, {:.2?}/query amortized",
        results.len(),
        wall / n as u32,
    );
    Ok(report)
}

/// `exq ping --addr`: measure liveness round-trip times against a running
/// server. Distinguishes a dead server (connect/ping error) from a slow one
/// (answers, with latency printed).
pub fn cmd_ping(addr: &str, count: u32) -> Result<String, CliError> {
    let mut link = TcpTransport::connect_default(addr)?;
    let mut report = String::new();
    let mut total = std::time::Duration::ZERO;
    let n = count.max(1);
    for i in 0..n {
        let rtt = link.ping()?;
        total += rtt;
        let _ = writeln!(report, "pong from {addr}: seq={i} time={rtt:.2?}");
    }
    let _ = writeln!(report, "-- {n} ping(s), avg {:.2?}", total / n);
    Ok(report)
}

fn query_over(
    client: &Client,
    link: &mut dyn Transport,
    query: &str,
    naive: bool,
) -> Result<String, CliError> {
    // Same telemetry envelope as the library pipeline: one client trace per
    // query (written to the sink if `--trace-out` opened one), span
    // durations taken from the measured phase timings, and the slow-query
    // accounting fed at the end.
    let scope = if telemetry::tracing_wanted() && telemetry::current_trace() == 0 {
        Some(telemetry::begin_trace(
            telemetry::new_trace_id(),
            telemetry::Side::Client,
        ))
    } else {
        None
    };
    let started = std::time::Instant::now();
    let out = query_over_inner(client, link, query, naive);
    if let Some(scope) = scope {
        telemetry::write_trace(&scope.finish());
    }
    if let Ok((_, served_from_cache)) = &out {
        telemetry::note_query(query, started.elapsed(), *served_from_cache);
    }
    out.map(|(report, _)| report)
}

fn query_over_inner(
    client: &Client,
    link: &mut dyn Transport,
    query: &str,
    naive: bool,
) -> Result<(String, bool), CliError> {
    let tq = client.translate(query)?;
    telemetry::record_span("client.translate", tq.translate_time);
    let (resp, post_query) = match (&tq.server_query, naive) {
        (Some(sq), false) => (link.send_query(sq)?, &tq.post_query),
        _ => (link.send_naive()?, &tq.full_query),
    };
    let post = client.post_process(post_query, &resp)?;
    telemetry::record_span("client.decrypt", post.decrypt_time);
    telemetry::record_span("client.post_process", post.post_process_time);
    let mut report = String::new();
    for r in &post.results {
        let _ = writeln!(report, "{r}");
    }
    let _ = writeln!(
        report,
        "-- {} result(s); {} block(s) decrypted; {} bytes from server",
        post.results.len(),
        post.blocks_decrypted,
        link.stats().bytes_received
    );
    Ok((report, resp.served_from_cache))
}

/// Resolves the out-of-core buffer budget: the `--cache-mb` flag wins,
/// then the `EXQ_CACHE_MB` environment variable; `None` means host fully
/// resident (the classic mode).
pub fn resolve_store_opts(cache_mb: Option<usize>) -> Option<StoreOptions> {
    let mb = cache_mb.or_else(|| {
        std::env::var("EXQ_CACHE_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
    })?;
    Some(StoreOptions {
        cache_bytes: mb.max(1) * 1024 * 1024,
        ..StoreOptions::default()
    })
}

/// `exq serve`: host a server state file on a TCP address. Returns the
/// running handle plus a banner; the binary parks until interrupted, tests
/// shut the handle down directly. `event_loop` picks the readiness-based
/// serve path: idle connections cost buffers instead of worker threads.
/// With `cache_mb` (or `EXQ_CACHE_MB`) the database hosts out-of-core:
/// the artifact migrates to a paged sibling, sealed blocks page in through
/// a buffer pool of that many MiB, and the returned [`Checkpointer`] folds
/// the WAL in the background (keep it alive as long as the handle).
#[allow(clippy::too_many_arguments)]
pub fn cmd_serve(
    server_path: &Path,
    addr: &str,
    workers: usize,
    threads: usize,
    cache_entries: Option<usize>,
    max_inflight: usize,
    deadline_ms: u64,
    event_loop: bool,
    cache_mb: Option<usize>,
) -> Result<(ServeHandle, Option<Checkpointer>, String), CliError> {
    exq_core::flight::install_panic_hook();
    let store_opts = resolve_store_opts(cache_mb);
    let (server, paged) = match &store_opts {
        Some(opts) => {
            let (server, db, replay) =
                PagedDb::open_or_migrate(server_path, exq_core::DEFAULT_DB, *opts)?;
            if replay.replayed + replay.failed > 0 {
                telemetry::log(
                    telemetry::Level::Info,
                    &format!(
                        "WAL replay: {} mutation(s) re-applied, {} failed-as-logged",
                        replay.replayed, replay.failed
                    ),
                );
            }
            (server, Some(db))
        }
        None => (Server::load(server_path)?, None),
    };
    let blocks = server.block_count();
    let bytes = server.hosted_bytes();
    let listener = std::net::TcpListener::bind(addr)?;
    let config = ServeConfig {
        workers,
        threads,
        cache_entries,
        max_inflight,
        deadline: std::time::Duration::from_millis(deadline_ms),
        ..ServeConfig::default()
    };
    let shared = Arc::new(RwLock::new(server));
    // One registry serves both the request path and the checkpointer so
    // they share the same Tenant: health flipped by a failed checkpoint
    // (Degraded/Faulted) is the health the serve path gates on.
    let registry = Arc::new(
        TenantRegistry::single(exq_core::DEFAULT_DB, Arc::clone(&shared))
            .expect("default db id is valid"),
    );
    let checkpointer = paged
        .as_ref()
        .map(|_| Checkpointer::spawn_tenants(Arc::clone(&registry), checkpoint_interval()));
    let handle = if event_loop {
        serve_event(listener, registry, config)?
    } else {
        serve_multi(listener, registry, config)?
    };
    let per_query = exq_core::pool::resolve_threads(threads);
    let cache = handle.cache_stats().capacity;
    let cache_desc = if cache == 0 {
        "cache disabled".to_owned()
    } else {
        format!("cache {cache} entries")
    };
    let load_desc = match (max_inflight, deadline_ms) {
        (0, 0) => String::new(),
        (m, 0) => format!(", max {m} in flight"),
        (0, d) => format!(", {d}ms deadline"),
        (m, d) => format!(", max {m} in flight, {d}ms deadline"),
    };
    let loop_desc = if event_loop { ", event loop" } else { "" };
    let paged_desc = match (&paged, &store_opts) {
        (Some(db), Some(opts)) => {
            let fp = db.footprint();
            format!(
                ", out-of-core ({} MiB budget, {} pages on disk)",
                opts.cache_bytes / (1024 * 1024),
                fp.page_count
            )
        }
        _ => String::new(),
    };
    let banner = format!(
        "serving {} ({bytes} hosted bytes, {blocks} blocks) on {} with {workers} worker(s), \
         {per_query} intra-query thread(s), {cache_desc}{load_desc}{loop_desc}{paged_desc}\n",
        server_path.display(),
        handle.addr()
    );
    Ok((handle, checkpointer, banner))
}

/// One-line cache counter report for `exq serve` logs.
pub fn format_cache_stats(s: &exq_core::cache::CacheStatsSnapshot) -> String {
    format!(
        "cache[gen {}]: responses {} hit / {} miss ({} entries, {} evicted), \
         ranges {} hit / {} miss ({} entries, {} evicted)",
        s.generation,
        s.response_hits,
        s.response_misses,
        s.response_entries,
        s.response_evictions,
        s.range_hits,
        s.range_misses,
        s.range_entries,
        s.range_evictions,
    )
}

/// Opens the directory-of-databases at `dir` (empty registry if the
/// directory does not exist yet; first created db becomes the default).
fn open_db_dir(dir: &Path, fallback_default: &str) -> Result<TenantRegistry, CliError> {
    if dir.join("MANIFEST").exists() || dir.is_file() {
        Ok(TenantRegistry::open(dir, fallback_default)?)
    } else {
        Ok(TenantRegistry::new(fallback_default)?)
    }
}

/// `exq db create`: register a sealed server state file as a named
/// database inside a directory-of-databases. The optional client state
/// records the sealing key's fingerprint in the manifest so operators can
/// tell which client artifact opens which db.
pub fn cmd_db_create(
    dir: &Path,
    name: &str,
    server_path: &Path,
    client_path: Option<&Path>,
    max_inflight: usize,
) -> Result<String, CliError> {
    let server = Server::load(server_path)?;
    let fingerprint = match client_path {
        Some(p) => Client::load(p)?.key_fingerprint(),
        None => 0,
    };
    let blocks = server.block_count();
    let bytes = server.hosted_bytes();
    let registry = open_db_dir(dir, name)?;
    let tenant = registry.create(name, server, fingerprint, max_inflight)?;
    registry.save_dir(dir)?;
    Ok(format!(
        "created database `{name}` in {} ({blocks} blocks, {bytes} hosted bytes, key fp {:016x})\n",
        dir.display(),
        tenant.key_fingerprint(),
    ))
}

/// `exq db list`: the databases a directory hosts, with per-db size,
/// quota, and health details; the default db is marked. Databases with a
/// paged sibling additionally report their out-of-core footprint (on-disk
/// bytes, page count, resident pages, WAL depth) — the same numbers the
/// per-db `{db="..."}` telemetry gauges expose on a live server. Paged
/// siblings are inspected strictly read-only ([`PagedDb::inspect`]) so
/// listing is safe while a live server owns the store: nothing truncates
/// a WAL tail a concurrent appender may still be writing.
///
/// The health column reflects what the inspection itself proved: a store
/// that opens and decodes is `healthy`; one whose superblocks, directory,
/// or metadata fail is listed as `faulted: <why>` instead of sinking the
/// whole listing — a hosted directory with one rotten db must still list
/// the other nine.
pub fn cmd_db_list(dir: &Path) -> Result<String, CliError> {
    let registry = TenantRegistry::open(dir, exq_core::DEFAULT_DB)?;
    let mut report = String::new();
    for tenant in registry.tenants() {
        let name = tenant.name();
        let state = TenantRegistry::db_path(dir, name);
        // A paged sibling is authoritative: the legacy artifact the
        // registry loaded may predate checkpointed mutations. Its numbers
        // are as of the last checkpoint; the WAL depth column counts the
        // committed mutations still pending on top.
        let (blocks, bytes, footprint, health) = if PagedDb::is_paged(&state) {
            match PagedDb::inspect(&PagedDb::pages_dir(&state)) {
                Ok(r) => (
                    r.block_count as usize,
                    r.hosted_bytes as usize,
                    Some(r.footprint),
                    "healthy".to_owned(),
                ),
                Err(e) => (0, 0, None, format!("faulted: {e}")),
            }
        } else {
            let h = match tenant.server.read() {
                Ok(g) => (g.block_count(), g.hosted_bytes()),
                Err(p) => {
                    let g = p.into_inner();
                    (g.block_count(), g.hosted_bytes())
                }
            };
            (h.0, h.1, None, "healthy".to_owned())
        };
        let marker = if name == registry.default_db() {
            " (default)"
        } else {
            ""
        };
        let quota = match tenant.max_inflight() {
            0 => "fair-share".to_owned(),
            n => format!("max {n} in flight"),
        };
        let paged = match footprint {
            Some(fp) => format!(
                ", paged: {} bytes on disk, {} pages ({} resident), WAL depth {}",
                fp.disk_bytes, fp.page_count, fp.resident_pages, fp.wal_depth
            ),
            None => String::new(),
        };
        let _ = writeln!(
            report,
            "{name}{marker}: {health}, {blocks} blocks, {bytes} hosted bytes, key fp {:016x}, {quota}{paged}",
            tenant.key_fingerprint(),
        );
    }
    let _ = writeln!(report, "-- {} database(s)", registry.len());
    Ok(report)
}

/// `exq db drop`: remove a database from the directory (manifest rewritten,
/// its state file deleted).
pub fn cmd_db_drop(dir: &Path, name: &str) -> Result<String, CliError> {
    let registry = TenantRegistry::load_dir(dir)?;
    registry.drop_db(name)?;
    registry.save_dir(dir)?;
    let state = TenantRegistry::db_path(dir, name);
    if state.exists() {
        std::fs::remove_file(&state)?;
    }
    Ok(format!(
        "dropped database `{name}` from {} ({} remaining)\n",
        dir.display(),
        registry.len()
    ))
}

/// `exq db host`: serve every database in a directory on one TCP address.
/// v4 clients pick a db with `--db`; v1–v3 clients (and v4 clients that
/// don't) get the default db. With `cache_mb` (or `EXQ_CACHE_MB`) every
/// database hosts out-of-core behind its own buffer pool, and one
/// background [`Checkpointer`] thread sweeps all of them.
#[allow(clippy::too_many_arguments)]
pub fn cmd_db_host(
    dir: &Path,
    addr: &str,
    workers: usize,
    threads: usize,
    cache_entries: Option<usize>,
    max_inflight: usize,
    max_inflight_per_db: usize,
    deadline_ms: u64,
    event_loop: bool,
    cache_mb: Option<usize>,
) -> Result<(ServeHandle, Option<Checkpointer>, String), CliError> {
    exq_core::flight::install_panic_hook();
    let store_opts = resolve_store_opts(cache_mb);
    let registry = Arc::new(match &store_opts {
        Some(opts) => TenantRegistry::open_paged(dir, exq_core::DEFAULT_DB, *opts)?,
        None => TenantRegistry::open(dir, exq_core::DEFAULT_DB)?,
    });
    if registry.is_empty() {
        return usage(format!("{} hosts no databases", dir.display()));
    }
    // Tenant-aware checkpointing: the sweep re-reads the registry each
    // tick, tends each db's health (degraded probe / recovery), and runs
    // the idle-tick scrubber on top of the plain checkpoint cadence.
    let checkpointer = store_opts
        .as_ref()
        .map(|_| Checkpointer::spawn_tenants(Arc::clone(&registry), checkpoint_interval()));
    let listener = std::net::TcpListener::bind(addr)?;
    let config = ServeConfig {
        workers,
        threads,
        cache_entries,
        max_inflight,
        max_inflight_per_db,
        deadline: std::time::Duration::from_millis(deadline_ms),
        ..ServeConfig::default()
    };
    let handle = if event_loop {
        serve_event(listener, Arc::clone(&registry), config)?
    } else {
        serve_multi(listener, Arc::clone(&registry), config)?
    };
    let names = registry.names().join(", ");
    let loop_desc = if event_loop { " (event loop)" } else { "" };
    let paged_desc = match &store_opts {
        Some(opts) => format!(
            " out-of-core ({} MiB budget/db),",
            opts.cache_bytes / (1024 * 1024)
        ),
        None => String::new(),
    };
    let banner = format!(
        "hosting {} database(s) from {} on {} with {workers} worker(s){loop_desc},{paged_desc} \
         dbs: {names} (default: {})\n",
        registry.len(),
        dir.display(),
        handle.addr(),
        registry.default_db(),
    );
    Ok((handle, checkpointer, banner))
}

/// `exq aggregate`: MIN/MAX/COUNT over an attribute path.
pub fn cmd_aggregate(
    server_path: &Path,
    client_path: &Path,
    func: &str,
    path: &str,
) -> Result<String, CliError> {
    let server = Server::load(server_path)?;
    let client = Client::load(client_path)?;
    let agg = match func {
        "min" => Aggregate::Min,
        "max" => Aggregate::Max,
        "count" => Aggregate::Count,
        other => return usage(format!("unknown aggregate `{other}` (min|max|count)")),
    };
    let out = client.aggregate(&server, path, agg)?;
    Ok(format!(
        "{}\n-- {} block(s) decrypted\n",
        out.value.as_deref().unwrap_or("(no value)"),
        out.blocks_decrypted
    ))
}

/// `exq insert`: insert a record under a parent; rewrites both state files.
pub fn cmd_insert(
    server_path: &Path,
    client_path: &Path,
    parent_query: &str,
    record: &Path,
    seed: u64,
) -> Result<String, CliError> {
    let mut server = Server::load(server_path)?;
    let mut client = Client::load(client_path)?;
    let record_xml = std::fs::read_to_string(record)?;
    let delta = client.insert(&mut server, parent_query, &record_xml, seed)?;
    server.save(server_path)?;
    client.save(client_path)?;
    Ok(format!(
        "inserted under {parent_query}: {} new block(s), {} metadata entries, {} bytes sent\n",
        delta.blocks.len(),
        delta.dsi_entries.len() + delta.value_entries.len(),
        delta.wire_size()
    ))
}

/// `exq delete`: delete matching subtrees; rewrites the server file.
pub fn cmd_delete(server_path: &Path, client_path: &Path, query: &str) -> Result<String, CliError> {
    let mut server = Server::load(server_path)?;
    let client = Client::load(client_path)?;
    let out = client.delete(&mut server, query)?;
    server.save(server_path)?;
    Ok(format!(
        "deleted {} subtree(s); {} match(es) inside blocks were skipped\n",
        out.deleted, out.skipped_in_block
    ))
}

/// `exq export`: decrypt the full database back to plaintext XML (owner
/// data recovery).
pub fn cmd_export(server_path: &Path, client_path: &Path, out: &Path) -> Result<String, CliError> {
    let server = Server::load(server_path)?;
    let client = Client::load(client_path)?;
    let doc = client
        .export(&server)?
        .ok_or_else(|| CliError::Usage("hosted database is empty".into()))?;
    std::fs::write(out, doc.to_xml())?;
    Ok(format!(
        "exported {} bytes ({} nodes) to {}\n",
        doc.serialized_size(),
        doc.len(),
        out.display()
    ))
}

/// `exq explain`: show per-step server-side pruning for a query.
pub fn cmd_explain(
    server_path: &Path,
    client_path: &Path,
    query: &str,
) -> Result<String, CliError> {
    let server = Server::load(server_path)?;
    let client = Client::load(client_path)?;
    let tq = client.translate(query)?;
    let Some(sq) = &tq.server_query else {
        return Ok("query is not server-evaluable (naive fallback: whole database ships)\n".into());
    };
    let report = server.explain(sq);
    let mut out = String::new();
    for (i, step) in report.steps.iter().enumerate() {
        let marker = if i == report.anchor { " <- anchor" } else { "" };
        let _ = writeln!(
            out,
            "step {i}: tags={:?} candidates={} survivors={} predicates={}{marker}",
            step.tags, step.candidates, step.survivors, step.predicates
        );
    }
    let _ = writeln!(out, "anchor matches: {}", report.anchors);
    Ok(out)
}

/// `exq stats`: server-visible statistics (what the host can see).
pub fn cmd_stats(server_path: &Path) -> Result<String, CliError> {
    let server = Server::load(server_path)?;
    let m = server.metadata();
    let mut report = String::new();
    let _ = writeln!(report, "hosted bytes:        {}", server.hosted_bytes());
    let _ = writeln!(report, "encrypted blocks:    {}", server.block_count());
    let _ = writeln!(
        report,
        "DSI index:           {} tags, {} interval entries",
        m.dsi_table.tag_count(),
        m.dsi_table.entry_count()
    );
    let _ = writeln!(
        report,
        "value indexes:       {} attributes, {} entries",
        m.value_indexes.len(),
        m.value_indexes.values().map(|t| t.len()).sum::<usize>()
    );
    Ok(report)
}

/// `exq stats --addr`: fetch a running server's metrics registry as
/// Prometheus-style text over the wire.
pub fn cmd_stats_remote(addr: &str) -> Result<String, CliError> {
    let mut link = TcpTransport::connect_default(addr)?;
    Ok(link.metrics_text()?)
}

/// `exq debug --addr`: dump a running server's flight recorder — the ring
/// of recent operational events (admissions, sheds, checkpoints, slow
/// fsyncs, slow queries, accept errors) as JSON lines, oldest first. With
/// `check`, the dump is validated instead of printed — the e2e guard that
/// every line really is a standalone JSON object.
pub fn cmd_debug(addr: &str, check: bool) -> Result<String, CliError> {
    let mut link = TcpTransport::connect_default(addr)?;
    let dump = link.flight_dump()?;
    if check {
        let n = exq_core::flight::validate_json_lines(&dump).map_err(|e| {
            CliError::Data(format!("flight dump failed JSON-lines validation: {e}"))
        })?;
        Ok(format!(
            "flight dump OK: {n} event(s), all valid JSON lines\n"
        ))
    } else {
        Ok(dump)
    }
}

/// Splits one Prometheus exposition line into `(series, value)`, quote-
/// aware: whitespace inside a `{db="…"}` label (db ids are operator input)
/// must not terminate the series name.
fn split_series_value(line: &str) -> Option<(&str, f64)> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ' ' if !in_quotes => {
                let (name, rest) = line.split_at(i);
                let rest = rest.trim();
                let value: f64 = if rest == "+Inf" {
                    f64::INFINITY
                } else {
                    rest.parse().ok()?
                };
                return Some((name, value));
            }
            _ => {}
        }
    }
    None
}

/// Parses a metrics exposition into `series -> value`.
fn parse_exposition(text: &str) -> std::collections::BTreeMap<String, f64> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(split_series_value)
        .map(|(k, v)| (k.to_owned(), v))
        .collect()
}

/// The db names present in an exposition snapshot, read off the
/// `exq_db_requests_total{db="…"}` series every tenant registers.
fn db_names(metrics: &std::collections::BTreeMap<String, f64>) -> Vec<String> {
    let mut out = Vec::new();
    for key in metrics.keys() {
        if let Some(rest) = key.strip_prefix("exq_db_requests_total{db=\"") {
            if let Some(name) = rest.strip_suffix("\"}") {
                out.push(name.to_owned());
            }
        }
    }
    out
}

/// p99 over a scrape window, from the cumulative-bucket deltas of the
/// `exq_span_db_<name>` histogram: the smallest bucket bound covering 99%
/// of the window's observations. `None` when the window saw no queries.
fn p99_ms(
    prev: &std::collections::BTreeMap<String, f64>,
    cur: &std::collections::BTreeMap<String, f64>,
    db: &str,
) -> Option<f64> {
    // Span names map '.' to '_' in metric names; db ids keep '-' and '_'.
    let sanitized: String = db.chars().map(|c| if c == '.' { '_' } else { c }).collect();
    let prefix = format!("exq_span_db_{sanitized}_bucket{{le=\"");
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    for (key, cum) in cur.range(prefix.clone()..) {
        let Some(rest) = key.strip_prefix(&prefix) else {
            break;
        };
        let Some(le) = rest.strip_suffix("\"}") else {
            continue;
        };
        let le: f64 = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().ok()?
        };
        let delta = cum - prev.get(key).copied().unwrap_or(0.0);
        buckets.push((le, delta.max(0.0)));
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last().map(|&(_, c)| c).unwrap_or(0.0);
    if total <= 0.0 {
        return None;
    }
    let need = total * 0.99;
    buckets
        .iter()
        .find(|&&(_, cum)| cum >= need)
        .map(|&(le, _)| if le.is_finite() { le * 1e3 } else { f64::NAN })
}

/// Formats one `exq top` frame from two metrics scrapes `dt_secs` apart:
/// per-db QPS, shed and cache-hit rates, page faults, pool residency, and
/// WAL backlog from the counter/gauge deltas, p99 from span-bucket deltas.
/// Split from the scraping so tests can drive it on captured text.
pub fn top_frame_from(prev_text: &str, cur_text: &str, dt_secs: f64) -> String {
    let prev = parse_exposition(prev_text);
    let cur = parse_exposition(cur_text);
    let dt = dt_secs.max(1e-9);
    let delta = |name: &str, db: &str| -> f64 {
        let key = format!("{name}{{db=\"{db}\"}}");
        (cur.get(&key).copied().unwrap_or(0.0) - prev.get(&key).copied().unwrap_or(0.0)).max(0.0)
    };
    let gauge = |name: &str, db: &str| -> f64 {
        cur.get(&format!("{name}{{db=\"{db}\"}}"))
            .copied()
            .unwrap_or(0.0)
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "db", "health", "qps", "shed/s", "cache%", "faults/s", "resident", "wal", "p99(ms)"
    );
    for db in db_names(&cur) {
        let requests = delta("exq_db_requests_total", &db);
        let qps = requests / dt;
        let shed = delta("exq_db_shed_total", &db) / dt;
        let cache_pct = if requests > 0.0 {
            format!(
                "{:.0}%",
                100.0 * delta("exq_db_cache_hits_total", &db) / requests
            )
        } else {
            "-".to_owned()
        };
        let faults = delta("exq_db_pages_faulted_total", &db) / dt;
        let resident = gauge("exq_store_resident_pages", &db);
        let wal = gauge("exq_store_wal_depth", &db);
        // 0=healthy 1=degraded 2=faulted; the gauge only exists once the
        // tenant has published health (fresh servers read as healthy).
        let health = match gauge("exq_db_health", &db) as u8 {
            1 => "degraded",
            2 => "faulted",
            _ => "ok",
        };
        let p99 = match p99_ms(&prev, &cur, &db) {
            Some(v) if v.is_finite() => format!("{v:.2}"),
            Some(_) => ">max".to_owned(),
            None => "-".to_owned(),
        };
        let _ = writeln!(
            out,
            "{db:<14} {health:>8} {qps:>8.1} {shed:>7.1} {cache_pct:>7} {faults:>9.1} \
             {resident:>9.0} {wal:>9.0} {p99:>9}"
        );
    }
    if out.lines().count() == 1 {
        let _ = writeln!(out, "(no per-db series yet — has the server seen traffic?)");
    }
    out
}

/// `exq top --addr`: one scrape-and-diff frame — scrape the server's
/// metrics, wait `interval_ms`, scrape again, and render the live view.
/// The binary loops this for a continuously updating display; `--once`
/// prints a single frame (CI smoke, scripts).
pub fn cmd_top(addr: &str, interval_ms: u64) -> Result<String, CliError> {
    let mut link = TcpTransport::connect_default(addr)?;
    let prev = link.metrics_text()?;
    let started = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
    let cur = link.metrics_text()?;
    Ok(top_frame_from(&prev, &cur, started.elapsed().as_secs_f64()))
}

/// `exq gen`: generate a synthetic dataset (plus its constraint file).
pub fn cmd_gen(
    dataset: &str,
    size_kb: usize,
    seed: u64,
    out: &Path,
    constraints_out: Option<&Path>,
) -> Result<String, CliError> {
    use exq_workload::{hospital, nasa, xmark};
    let (doc, cs): (Document, Vec<SecurityConstraint>) = match dataset {
        "xmark" => (
            xmark::generate(&xmark::XmarkConfig {
                target_bytes: size_kb * 1024,
                seed,
            }),
            xmark::constraints(),
        ),
        "nasa" => (
            nasa::generate(&nasa::NasaConfig {
                target_bytes: size_kb * 1024,
                seed,
            }),
            nasa::constraints(),
        ),
        "hospital" => (hospital::document(), hospital::constraints()),
        other => return usage(format!("unknown dataset `{other}` (xmark|nasa|hospital)")),
    };
    std::fs::write(out, doc.to_xml())?;
    let mut report = format!(
        "wrote {} ({} bytes, {} nodes)\n",
        out.display(),
        doc.serialized_size(),
        doc.len()
    );
    if let Some(cpath) = constraints_out {
        let text: String = cs.iter().map(|c| format!("{c}\n")).collect();
        std::fs::write(cpath, text)?;
        let _ = writeln!(
            report,
            "wrote {} ({} constraints)",
            cpath.display(),
            cs.len()
        );
    }
    Ok(report)
}

pub const USAGE: &str = "\
exq — secure query evaluation over encrypted XML databases (VLDB'06 reproduction)

USAGE:
  exq gen       --dataset xmark|nasa|hospital --size-kb N --seed N --out doc.xml
                [--constraints-out sc.txt]
  exq encrypt   --in doc.xml --constraints sc.txt --scheme opt --seed N
                --server server.exq --client client.exq
  exq query     --server server.exq --client client.exq [--naive] [--threads N]
                [--cache-entries N] 'XPATH'
  exq query     --addr HOST:PORT --client client.exq [--threads N] [--retries N]
                [--db NAME]         (pick a database on a multi-tenant server)
                [--pipeline N]      (submit the query N times in flight on one
                'XPATH'              connection; all answers must agree)
                                    (--retries: reconnect+replay budget, default 3)
  exq serve     --server server.exq --addr HOST:PORT [--workers N] [--threads N]
                [--cache-entries N]   (0 disables the server caches)
                [--max-inflight N]    (shed Busy beyond N concurrent requests; 0=off)
                [--deadline-ms N]     (per-request lock deadline; 0=off)
                [--event-loop]        (readiness-based serve path: one event thread
                                       multiplexes every connection, workers only
                                       execute queries; idle peers cost no threads)
                [--cache-mb N]        (host out-of-core: blocks page in through a
                                       buffer pool of N MiB; the artifact migrates
                                       to a paged sibling with a write-ahead log
                                       and background checkpointing; env
                                       EXQ_CACHE_MB sets the same budget)
  exq db create --dir DBDIR --name NAME --server server.exq [--client client.exq]
                [--max-inflight N]    (register a sealed db in a multi-db directory)
  exq db list   --dir DBDIR           (hosted databases, sizes, key fingerprints;
                                       paged dbs add on-disk bytes, page counts,
                                       resident pages, and WAL depth)
  exq db drop   --dir DBDIR --name NAME
  exq db host   --dir DBDIR --addr HOST:PORT [--workers N] [--threads N]
                [--cache-entries N] [--max-inflight N] [--max-inflight-per-db N]
                [--deadline-ms N] [--event-loop] [--cache-mb N]
                                      (serve every db in the directory; clients
                                       route with --db, legacy peers get the default)
  exq ping      --addr HOST:PORT [--count N]   (liveness probe round-trips)
  exq aggregate --server server.exq --client client.exq --fn min|max|count 'PATH'
  exq insert    --server server.exq --client client.exq --parent 'QUERY'
                --record rec.xml [--seed N]
  exq delete    --server server.exq --client client.exq 'QUERY'
  exq explain   --server server.exq --client client.exq 'QUERY'
  exq export    --server server.exq --client client.exq --out doc.xml
  exq stats     --server server.exq
  exq stats     --addr HOST:PORT      (live metrics, Prometheus text format)
  exq top       --addr HOST:PORT [--interval-ms N] [--once]
                                      (live per-db view: QPS, shed and cache-hit
                                       rates, page faults, pool residency, WAL
                                       backlog, p99 — scrape-and-diff frames every
                                       N ms, default 1000; --once prints one frame)
  exq debug     --addr HOST:PORT [--check]
                                      (dump the server's flight recorder — the ring
                                       of recent operational events — as JSON lines;
                                       --check validates instead of printing)

Global observability flags (every command):
  --trace-out FILE     write per-query span trees as JSON lines
  --slow-ms N          log queries slower than N ms (0 disables)
  --log-level LEVEL    off|error|warn|info|debug (stderr; default warn)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_parsing() {
        assert!(matches!(parse_scheme("opt"), Ok(SchemeKind::Opt)));
        assert!(matches!(parse_scheme("match"), Ok(SchemeKind::Match)));
        assert!(parse_scheme("bogus").is_err());
    }

    #[test]
    fn constraints_parsing() {
        let text = "# comment\n//insurance\n\n//patient:(/pname, /SSN)\n";
        let cs = parse_constraints(text).unwrap();
        assert_eq!(cs.len(), 2);
        assert!(parse_constraints("# nothing\n").is_err());
        assert!(parse_constraints("//bad:(").is_err());
    }
}
