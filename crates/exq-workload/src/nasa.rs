//! NASA-like synthetic generator.
//!
//! Emits the astronomical-dataset subset the paper's NASA constraint graph
//! (Figure 8(b)) touches: `datasets/dataset` records with `title`,
//! `altname`, `date/year`, `author/{initial, last, age}`, and
//! `journal/{publisher, city}`, plus reference `para` text so documents
//! have realistic text bulk.

use crate::values;
use exq_core::constraints::SecurityConstraint;
use exq_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct NasaConfig {
    pub target_bytes: usize,
    pub seed: u64,
}

impl Default for NasaConfig {
    fn default() -> Self {
        NasaConfig {
            target_bytes: 200 * 1024,
            seed: 11,
        }
    }
}

/// Average serialized bytes per dataset record.
const BYTES_PER_DATASET: usize = 1150;

/// Generates a document of roughly `target_bytes`.
pub fn generate(cfg: &NasaConfig) -> Document {
    let datasets = (cfg.target_bytes / BYTES_PER_DATASET).max(1);
    generate_datasets(datasets, cfg.seed)
}

/// Generates a document with exactly `datasets` dataset records.
pub fn generate_datasets(datasets: usize, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Document::new();
    let root = d.add_element(None, "datasets");
    for i in 0..datasets {
        let ds = d.add_element(Some(root), "dataset");
        d.add_attr(ds, "subject", values::zipf_pick(&mut rng, values::SUBJECTS));
        let title = d.add_element(Some(ds), "title");
        d.add_text(
            title,
            &format!(
                "{} catalog {}",
                values::zipf_pick(&mut rng, values::SUBJECTS),
                rng.gen_range(1..40)
            ),
        );
        let altname = d.add_element(Some(ds), "altname");
        d.add_text(altname, &format!("DS-{i:05}"));
        let date = d.add_element(Some(ds), "date");
        let year = d.add_element(Some(date), "year");
        d.add_text(year, &values::year(&mut rng).to_string());
        for _ in 0..rng.gen_range(1..4) {
            let author = d.add_element(Some(ds), "author");
            let initial = d.add_element(Some(author), "initial");
            let first = values::zipf_pick(&mut rng, values::FIRST_NAMES);
            d.add_text(initial, &first[..1]);
            let last = d.add_element(Some(author), "last");
            d.add_text(last, values::zipf_pick(&mut rng, values::LAST_NAMES));
            let age = d.add_element(Some(author), "age");
            d.add_text(age, &values::age(&mut rng).to_string());
        }
        let journal = d.add_element(Some(ds), "journal");
        let publisher = d.add_element(Some(journal), "publisher");
        d.add_text(publisher, values::zipf_pick(&mut rng, values::PUBLISHERS));
        let city = d.add_element(Some(journal), "city");
        d.add_text(city, values::zipf_pick(&mut rng, values::CITIES));
        let reference = d.add_element(Some(ds), "reference");
        let para = d.add_element(Some(reference), "para");
        d.add_text(
            para,
            &format!(
                "Observations of {} sources collected over {} nights at the {} station.                  The reduced catalog lists positions, proper motions and {} magnitudes;                  systematic errors were estimated against the {} reference frame and the                  residuals stay below {} milliarcseconds across the surveyed field.",
                values::zipf_pick(&mut rng, values::SUBJECTS),
                rng.gen_range(3..300),
                values::zipf_pick(&mut rng, values::CITIES),
                values::zipf_pick(&mut rng, values::SUBJECTS),
                values::zipf_pick(&mut rng, values::PUBLISHERS),
                rng.gen_range(1..50),
            ),
        );
        // Non-sensitive instrument/table bulk, as in the real NASA records.
        let instrument = d.add_element(Some(ds), "instrument");
        let iname = d.add_element(Some(instrument), "instname");
        d.add_text(
            iname,
            &format!(
                "{}-scope-{}",
                values::zipf_pick(&mut rng, values::SUBJECTS),
                rng.gen_range(1..9)
            ),
        );
        let wavelength = d.add_element(Some(instrument), "wavelength");
        d.add_text(wavelength, &format!("{}nm", rng.gen_range(300..2200)));
        let table = d.add_element(Some(ds), "tableHead");
        for f in ["ra", "dec", "mag", "epoch"] {
            let field = d.add_element(Some(table), "field");
            d.add_attr(field, "name", f);
            d.add_text(field, &format!("{} column in units of degrees", f));
        }
    }
    d
}

/// The Figure 8(b)-style security constraints for NASA data.
///
/// Endpoint fields all live under `author` or `journal` so that, as in the
/// paper's reported covers (opt = {initial, last}), the `sub` scheme
/// encrypts the small `author`/`journal` parents rather than whole
/// `dataset` records.
pub fn constraints() -> Vec<SecurityConstraint> {
    [
        "//author:(/initial, /last)",
        "//author:(/last, /age)",
        "//journal:(/publisher, /city)",
        "//dataset:(//date, //publisher)",
        "//dataset:(//age, //city)",
    ]
    .iter()
    .map(|s| SecurityConstraint::parse(s).expect("static SC"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_xpath::eval_document;

    #[test]
    fn generates_requested_datasets() {
        let d = generate_datasets(20, 2);
        assert_eq!(d.elements_by_tag("dataset").len(), 20);
        assert!(!d.elements_by_tag("author").is_empty());
    }

    #[test]
    fn size_targeting_reasonable() {
        let cfg = NasaConfig {
            target_bytes: 150 * 1024,
            seed: 2,
        };
        let d = generate(&cfg);
        let size = d.serialized_size();
        assert!(
            size > cfg.target_bytes / 2 && size < cfg.target_bytes * 2,
            "size {size} vs target {}",
            cfg.target_bytes
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate_datasets(5, 9).to_xml(),
            generate_datasets(5, 9).to_xml()
        );
    }

    #[test]
    fn constraint_paths_bind() {
        let d = generate_datasets(10, 2);
        for sc in constraints() {
            let (p1, p2) = sc.endpoint_paths().unwrap();
            assert!(!eval_document(&d, &p1).is_empty(), "{p1} binds nothing");
            assert!(!eval_document(&d, &p2).is_empty(), "{p2} binds nothing");
        }
    }

    #[test]
    fn depth_is_multi_level() {
        let d = generate_datasets(5, 2);
        assert!(d.height() >= 3, "NASA-like docs need mid levels for Qm");
    }
}
