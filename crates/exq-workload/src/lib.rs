//! Workloads for the paper's experiments (§7.1).
//!
//! The paper evaluates on the XMark benchmark (synthetic auction-site data)
//! and the NASA dataset from the UW XML repository. Neither is available
//! offline, so this crate generates *schema-faithful synthetic equivalents*:
//! documents with the same element vocabulary the paper's constraint graphs
//! (Figure 8) reference, skewed value distributions, and byte-size
//! targeting. See DESIGN.md §4 for the substitution rationale.
//!
//! Also here: the paper's running health-care example (Figure 2 /
//! Example 3.1), the Figure 8 security-constraint sets, and the Qs/Qm/Ql
//! query-class generators.

pub mod hospital;
pub mod nasa;
pub mod queries;
pub mod values;
pub mod xmark;

pub use queries::{generate_queries, QueryClass};
