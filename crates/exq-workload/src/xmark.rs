//! XMark-like synthetic generator.
//!
//! Emits the auction-site subset the paper's XMark constraint graph
//! (Figure 8(a)) touches: `site/people/person` records with `name`,
//! `emailaddress`, `creditcard`, `age`, `profile/income` + `interest`, and
//! `address/{street, city, country}`, plus a small `regions/item` section
//! for structural variety.

use crate::values;
use exq_core::constraints::SecurityConstraint;
use exq_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    /// Approximate serialized size to aim for.
    pub target_bytes: usize,
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        XmarkConfig {
            target_bytes: 200 * 1024,
            seed: 7,
        }
    }
}

/// Average serialized bytes per person record (estimated empirically by
/// `bytes_per_person` below; kept as a constant so sizing is O(1)).
const BYTES_PER_PERSON: usize = 560;

/// Generates a document of roughly `target_bytes`.
pub fn generate(cfg: &XmarkConfig) -> Document {
    let people = (cfg.target_bytes / BYTES_PER_PERSON).max(1);
    generate_people(people, cfg.seed)
}

/// Generates a document with exactly `people` person records.
pub fn generate_people(people: usize, seed: u64) -> Document {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Document::new();
    let site = d.add_element(None, "site");

    let people_el = d.add_element(Some(site), "people");
    for i in 0..people {
        let p = d.add_element(Some(people_el), "person");
        d.add_attr(p, "id", &format!("person{i}"));
        let name = d.add_element(Some(p), "name");
        let full = format!(
            "{} {}",
            values::zipf_pick(&mut rng, values::FIRST_NAMES),
            values::zipf_pick(&mut rng, values::LAST_NAMES)
        );
        d.add_text(name, &full);
        let email = d.add_element(Some(p), "emailaddress");
        d.add_text(
            email,
            &format!("mailto:{}@example.org", full.replace(' ', ".")),
        );
        let cc = d.add_element(Some(p), "creditcard");
        d.add_text(
            cc,
            &values::creditcard(&mut rng, (people as u32 / 2).max(4)),
        );
        let age = d.add_element(Some(p), "age");
        d.add_text(age, &values::age(&mut rng).to_string());
        let profile = d.add_element(Some(p), "profile");
        d.add_attr(profile, "income", &values::income(&mut rng).to_string());
        let income = d.add_element(Some(profile), "income");
        d.add_text(income, &values::income(&mut rng).to_string());
        for _ in 0..rng.gen_range(0..3) {
            let interest = d.add_element(Some(profile), "interest");
            d.add_attr(
                interest,
                "category",
                values::zipf_pick(&mut rng, values::INTERESTS),
            );
        }
        let address = d.add_element(Some(p), "address");
        let street = d.add_element(Some(address), "street");
        d.add_text(street, &format!("{} Main St", rng.gen_range(1..9999)));
        let city = d.add_element(Some(address), "city");
        d.add_text(city, values::zipf_pick(&mut rng, values::CITIES));
        let country = d.add_element(Some(address), "country");
        d.add_text(country, values::zipf_pick(&mut rng, values::COUNTRIES));
    }

    // A light regions/item section for structural variety (never sensitive).
    let regions = d.add_element(Some(site), "regions");
    let na = d.add_element(Some(regions), "namerica");
    for i in 0..(people / 4).max(1) {
        let item = d.add_element(Some(na), "item");
        d.add_attr(item, "id", &format!("item{i}"));
        let iname = d.add_element(Some(item), "itemname");
        d.add_text(iname, values::zipf_pick(&mut rng, values::INTERESTS));
        let quantity = d.add_element(Some(item), "quantity");
        d.add_text(quantity, &rng.gen_range(1..20).to_string());
    }

    // Auctions, as in real XMark: non-sensitive bulk referencing people and
    // items, giving Qm/Ql queries more structural variety.
    let auctions = d.add_element(Some(site), "open_auctions");
    for i in 0..(people / 3).max(1) {
        let auction = d.add_element(Some(auctions), "open_auction");
        d.add_attr(auction, "id", &format!("auction{i}"));
        let initial = d.add_element(Some(auction), "initial");
        d.add_text(
            initial,
            &format!("{}.{:02}", rng.gen_range(1..500), rng.gen_range(0..100)),
        );
        for _ in 0..rng.gen_range(1..4) {
            let bidder = d.add_element(Some(auction), "bidder");
            let increase = d.add_element(Some(bidder), "increase");
            d.add_text(increase, &format!("{}.00", rng.gen_range(1..50)));
            let personref = d.add_element(Some(bidder), "personref");
            d.add_attr(
                personref,
                "person",
                &format!("person{}", rng.gen_range(0..people)),
            );
        }
        let itemref = d.add_element(Some(auction), "itemref");
        d.add_attr(
            itemref,
            "item",
            &format!("item{}", rng.gen_range(0..(people / 4).max(1))),
        );
        let current = d.add_element(Some(auction), "current");
        d.add_text(
            current,
            &format!("{}.{:02}", rng.gen_range(1..2000), rng.gen_range(0..100)),
        );
    }
    d
}

/// The Figure 8(a)-style security constraints for XMark data.
pub fn constraints() -> Vec<SecurityConstraint> {
    [
        "//person:(/name, /creditcard)",
        "//person:(/name, /profile/income)",
        "//person:(/name, /address)",
        "//person:(/name, /emailaddress)",
        "//person:(/age, /profile/income)",
    ]
    .iter()
    .map(|s| SecurityConstraint::parse(s).expect("static SC"))
    .collect()
}

/// Empirical bytes-per-person estimate (test/calibration helper).
pub fn bytes_per_person(seed: u64) -> usize {
    let sample = generate_people(100, seed);
    sample.serialized_size() / 100
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_xpath::{eval_document, Path};

    #[test]
    fn generates_requested_people() {
        let d = generate_people(25, 3);
        assert_eq!(d.elements_by_tag("person").len(), 25);
        assert_eq!(d.elements_by_tag("name").len(), 25);
        assert_eq!(d.elements_by_tag("creditcard").len(), 25);
    }

    #[test]
    fn size_targeting_reasonable() {
        let cfg = XmarkConfig {
            target_bytes: 100 * 1024,
            seed: 3,
        };
        let d = generate(&cfg);
        let size = d.serialized_size();
        assert!(
            size > cfg.target_bytes / 2 && size < cfg.target_bytes * 2,
            "size {size} too far from target {}",
            cfg.target_bytes
        );
    }

    #[test]
    fn bytes_per_person_near_constant() {
        let bpp = bytes_per_person(3);
        assert!(
            (BYTES_PER_PERSON / 2..BYTES_PER_PERSON * 2).contains(&bpp),
            "calibration constant stale: measured {bpp}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate_people(10, 5).to_xml(),
            generate_people(10, 5).to_xml()
        );
        assert_ne!(
            generate_people(10, 5).to_xml(),
            generate_people(10, 6).to_xml()
        );
    }

    #[test]
    fn constraint_paths_bind() {
        let d = generate_people(10, 3);
        for sc in constraints() {
            let (p1, p2) = sc.endpoint_paths().unwrap();
            assert!(
                !eval_document(&d, &p1).is_empty(),
                "endpoint {p1} binds nothing"
            );
            assert!(
                !eval_document(&d, &p2).is_empty(),
                "endpoint {p2} binds nothing"
            );
        }
    }

    #[test]
    fn values_have_skew() {
        let d = generate_people(200, 3);
        let names = eval_document(&d, &Path::parse("//name").unwrap());
        let mut hist = std::collections::HashMap::new();
        for n in names {
            *hist.entry(d.text_value(n)).or_insert(0usize) += 1;
        }
        let max = hist.values().max().unwrap();
        assert!(*max >= 3, "no frequency skew in names");
    }
}
