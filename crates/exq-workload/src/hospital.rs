//! The paper's running example: the Figure 2 health-care database and the
//! Example 3.1 security constraints.

use exq_core::constraints::SecurityConstraint;
use exq_xml::Document;

/// The Figure 2 instance (two patients; values as printed in the paper).
pub fn document() -> Document {
    Document::parse(
        r#"<hospital>
            <patient>
              <pname>Betty</pname>
              <SSN>763895</SSN>
              <age>35</age>
              <treat><disease>diarrhea</disease><doctor>Smith</doctor><doctor>Walker</doctor></treat>
              <insurance><policy coverage="1000000">34221</policy>
                          <policy coverage="10000">26544</policy></insurance>
            </patient>
            <patient>
              <pname>Matt</pname>
              <SSN>276543</SSN>
              <age>40</age>
              <treat><disease>leukemia</disease><doctor>Brown</doctor></treat>
              <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
              <insurance><policy coverage="5000">78543</policy></insurance>
            </patient>
           </hospital>"#,
    )
    .expect("static document")
}

/// The Example 3.1 security constraints:
/// SC1 `//insurance`, SC2 `//patient:(/pname, /SSN)`,
/// SC3 `//patient:(/pname, //disease)`, SC4 `//treat:(/disease, /doctor)`.
pub fn constraints() -> Vec<SecurityConstraint> {
    [
        "//insurance",
        "//patient:(/pname, /SSN)",
        "//patient:(/pname, //disease)",
        "//treat:(/disease, /doctor)",
    ]
    .iter()
    .map(|s| SecurityConstraint::parse(s).expect("static SC"))
    .collect()
}

/// A scaled variant with `patients` records for perf-ish tests.
pub fn scaled(patients: usize, seed: u64) -> Document {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let diseases = ["diarrhea", "leukemia", "flu", "measles", "asthma"];
    let doctors = ["Smith", "Brown", "Walker", "Lee", "Garcia"];
    let names = crate::values::FIRST_NAMES;
    let mut d = Document::new();
    let root = d.add_element(None, "hospital");
    for i in 0..patients {
        let p = d.add_element(Some(root), "patient");
        let pname = d.add_element(Some(p), "pname");
        d.add_text(pname, names[i % names.len()]);
        let ssn = d.add_element(Some(p), "SSN");
        d.add_text(ssn, &format!("{:06}", 100000 + i * 7919 % 900000));
        let age = d.add_element(Some(p), "age");
        d.add_text(age, &(20 + (i * 13) % 60).to_string());
        for _ in 0..rng.gen_range(1..3) {
            let treat = d.add_element(Some(p), "treat");
            let disease = d.add_element(Some(treat), "disease");
            d.add_text(disease, diseases[rng.gen_range(0..diseases.len())]);
            let doctor = d.add_element(Some(treat), "doctor");
            d.add_text(doctor, doctors[rng.gen_range(0..doctors.len())]);
        }
        let ins = d.add_element(Some(p), "insurance");
        let policy = d.add_element(Some(ins), "policy");
        d.add_attr(
            policy,
            "coverage",
            &(1000 * rng.gen_range(1..1000)).to_string(),
        );
        d.add_text(policy, &format!("{:05}", rng.gen_range(10000..99999)));
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_xpath::{eval_document, Path};

    #[test]
    fn figure2_shape() {
        let d = document();
        assert_eq!(d.elements_by_tag("patient").len(), 2);
        assert_eq!(d.elements_by_tag("treat").len(), 3);
        assert_eq!(d.elements_by_tag("policy").len(), 3);
        let q = Path::parse("//patient[pname = 'Betty']/SSN").unwrap();
        let r = eval_document(&d, &q);
        assert_eq!(d.text_value(r[0]), "763895");
    }

    #[test]
    fn example31_constraints_parse() {
        assert_eq!(constraints().len(), 4);
    }

    #[test]
    fn scaled_has_requested_patients() {
        let d = scaled(50, 1);
        assert_eq!(d.elements_by_tag("patient").len(), 50);
    }
}
