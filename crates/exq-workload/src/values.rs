//! Shared value pools and skewed samplers for the generators.

use rand::Rng;

/// Samples an index in `0..n` with a Zipf-like distribution (weight ∝
/// 1/(rank+1)); rank 0 is the most frequent.
pub fn zipf_index(rng: &mut impl Rng, n: usize) -> usize {
    debug_assert!(n > 0);
    let total: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut x = rng.gen_range(0.0..total);
    for k in 0..n {
        x -= 1.0 / (k + 1) as f64;
        if x <= 0.0 {
            return k;
        }
    }
    n - 1
}

/// Samples from a pool with Zipf skew.
pub fn zipf_pick<'a>(rng: &mut impl Rng, pool: &'a [&'a str]) -> &'a str {
    pool[zipf_index(rng, pool.len())]
}

pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Betty",
    "Matt",
    "Zoe",
    "Omar",
    "Priya",
    "Chen",
    "Fatima",
    "Yuki",
    "Lars",
    "Ana",
];

pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Walker",
    "Martinez", "Lopez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore", "Jackson", "Lee",
    "Perez", "White",
];

pub const CITIES: &[&str] = &[
    "Vancouver",
    "Seattle",
    "Seoul",
    "Tokyo",
    "Berlin",
    "Paris",
    "London",
    "Mumbai",
    "Cairo",
    "Lagos",
    "Lima",
    "Sydney",
    "Toronto",
    "Boston",
    "Austin",
];

pub const COUNTRIES: &[&str] = &[
    "Canada",
    "USA",
    "Korea",
    "Japan",
    "Germany",
    "France",
    "UK",
    "India",
    "Egypt",
    "Nigeria",
    "Peru",
    "Australia",
];

pub const INTERESTS: &[&str] = &[
    "auctions",
    "antiques",
    "books",
    "coins",
    "stamps",
    "art",
    "music",
    "sports",
    "travel",
    "gardening",
];

pub const PUBLISHERS: &[&str] = &[
    "AstroPress",
    "SkyData",
    "CosmoArchive",
    "StellarHouse",
    "OrbitPub",
    "NebulaWorks",
    "GalaxyPrint",
    "CometMedia",
];

pub const SUBJECTS: &[&str] = &[
    "astronomy",
    "astrometry",
    "photometry",
    "spectroscopy",
    "radio",
    "infrared",
    "xray",
    "survey",
];

/// A skewed income in dollars.
pub fn income(rng: &mut impl Rng) -> u32 {
    let base: f64 = rng.gen_range(0.0f64..1.0).powi(3);
    20_000 + (base * 280_000.0) as u32
}

/// A skewed age in years.
pub fn age(rng: &mut impl Rng) -> u32 {
    18 + zipf_index(rng, 60) as u32
}

/// A 16-digit credit-card number string (deliberately low-entropy prefix so
/// some numbers repeat, exercising frequency histograms).
pub fn creditcard(rng: &mut impl Rng, pool_size: u32) -> String {
    let n = rng.gen_range(0..pool_size);
    format!("4000 1111 2222 {n:04}")
}

/// A publication year.
pub fn year(rng: &mut impl Rng) -> u32 {
    1960 + zipf_index(rng, 45) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 10)] += 1;
        }
        assert!(counts[0] > counts[9] * 3, "zipf not skewed: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn samplers_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = age(&mut rng);
            assert!((18..=78).contains(&a));
            let i = income(&mut rng);
            assert!((20_000..=300_000).contains(&i));
            let y = year(&mut rng);
            assert!((1960..=2005).contains(&y));
        }
    }

    #[test]
    fn creditcards_repeat_with_small_pool() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(creditcard(&mut rng, 5));
        }
        assert!(seen.len() <= 5);
    }
}
