//! The Qs/Qm/Ql query classes of §7.1.
//!
//! * `Qs` — output nodes are children of the document root;
//! * `Qm` — output nodes sit at level ⌈h/2⌉ of the tree;
//! * `Ql` — output nodes are leaf elements.
//!
//! Queries are derived from the actual document: sample a node at the
//! target level, take its root-to-node tag path, and randomly contract
//! steps into descendant (`//`) axes. Every generated query is guaranteed
//! non-empty on the source document.

use exq_xml::{Document, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The three query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Output = children of the root.
    Qs,
    /// Output = nodes at the middle level.
    Qm,
    /// Output = leaf elements.
    Ql,
}

impl QueryClass {
    pub const ALL: [QueryClass; 3] = [QueryClass::Qs, QueryClass::Qm, QueryClass::Ql];

    pub fn name(self) -> &'static str {
        match self {
            QueryClass::Qs => "Qs",
            QueryClass::Qm => "Qm",
            QueryClass::Ql => "Ql",
        }
    }
}

/// Generates up to `count` distinct queries of a class for `doc`.
pub fn generate_queries(doc: &Document, class: QueryClass, count: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates = target_nodes(doc, class);
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut out = BTreeSet::new();
    let mut attempts = 0;
    while out.len() < count && attempts < count * 30 {
        attempts += 1;
        let node = candidates[rng.gen_range(0..candidates.len())];
        out.insert(path_query(doc, node, &mut rng));
    }
    out.into_iter().collect()
}

/// Nodes whose root-to-node paths the class samples.
fn target_nodes(doc: &Document, class: QueryClass) -> Vec<NodeId> {
    let Some(root) = doc.root() else {
        return Vec::new();
    };
    match class {
        QueryClass::Qs => doc
            .node(root)
            .children()
            .iter()
            .copied()
            .filter(|&c| doc.node(c).is_element())
            .collect(),
        QueryClass::Qm => {
            let h = doc.height().max(1);
            let mid = h.div_ceil(2);
            doc.iter()
                .filter(|&n| doc.node(n).is_element() && doc.depth(n) == mid)
                .collect()
        }
        QueryClass::Ql => doc
            .iter()
            .filter(|&n| {
                doc.node(n).is_element()
                    && doc
                        .node(n)
                        .children()
                        .iter()
                        .all(|&c| !doc.node(c).is_element())
            })
            .collect(),
    }
}

/// Builds a mixed child/descendant query whose last step names `node`.
fn path_query(doc: &Document, node: NodeId, rng: &mut StdRng) -> String {
    let mut tags: Vec<String> = doc
        .ancestors(node)
        .into_iter()
        .rev()
        .chain(std::iter::once(node))
        .filter_map(|n| doc.element_name(n).map(str::to_owned))
        .collect();
    debug_assert!(!tags.is_empty());
    // Randomly contract: each step independently becomes a `//` step with
    // probability 0.35, which drops the requirement that the previous tag
    // be its direct parent... to keep the query non-empty we only switch
    // the axis, never remove tags, plus optionally skip a prefix.
    let skip = if tags.len() > 2 && rng.gen_bool(0.4) {
        rng.gen_range(0..tags.len() - 1)
    } else {
        0
    };
    tags.drain(..skip);
    let mut q = String::new();
    for (i, t) in tags.iter().enumerate() {
        // A skipped prefix forces `//` on the first step (the remaining tag
        // is no longer a child of the document node); later steps randomly
        // relax to the descendant axis.
        let descendant = (i == 0 && skip > 0) || (i > 0 && rng.gen_bool(0.35));
        q.push_str(if descendant { "//" } else { "/" });
        q.push_str(t);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nasa;
    use crate::xmark;
    use exq_xpath::{eval_document, Path};

    fn check_class(doc: &Document, class: QueryClass) {
        let qs = generate_queries(doc, class, 10, 99);
        assert!(!qs.is_empty(), "{class:?} generated nothing");
        for q in &qs {
            let path = Path::parse(q).unwrap_or_else(|e| panic!("bad query {q}: {e}"));
            let res = eval_document(doc, &path);
            assert!(!res.is_empty(), "{class:?} query {q} is empty");
        }
    }

    #[test]
    fn xmark_classes_nonempty() {
        let d = xmark::generate_people(30, 4);
        for c in QueryClass::ALL {
            check_class(&d, c);
        }
    }

    #[test]
    fn nasa_classes_nonempty() {
        let d = nasa::generate_datasets(30, 4);
        for c in QueryClass::ALL {
            check_class(&d, c);
        }
    }

    #[test]
    fn ql_outputs_are_leafward() {
        let d = nasa::generate_datasets(30, 4);
        let ql = generate_queries(&d, QueryClass::Ql, 5, 1);
        let qs = generate_queries(&d, QueryClass::Qs, 5, 1);
        // Ql queries mention deeper tags than Qs queries on average.
        let depth = |q: &str| q.matches('/').count();
        let avg = |v: &[String]| v.iter().map(|q| depth(q)).sum::<usize>() as f64 / v.len() as f64;
        assert!(avg(&ql) >= avg(&qs));
    }

    #[test]
    fn deterministic() {
        let d = xmark::generate_people(20, 4);
        let a = generate_queries(&d, QueryClass::Qm, 8, 5);
        let b = generate_queries(&d, QueryClass::Qm, 8, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_document() {
        let d = Document::new();
        assert!(generate_queries(&d, QueryClass::Qs, 5, 0).is_empty());
    }
}
