//! The virtual filesystem boundary: every byte the storage engine moves
//! crosses a [`Vfs`].
//!
//! The page file, both superblock slots, the write-ahead log, and
//! checkpoint temp files all do their I/O through the `Vfs`/[`VfsFile`]
//! traits instead of `std::fs` directly. Two implementations ship:
//!
//! * [`OsVfs`] — the real filesystem. The default everywhere; a store
//!   built over it behaves exactly as before this layer existed.
//! * [`FaultVfs`] — a deterministic, seeded, in-memory filesystem that
//!   injects the ways disks actually fail: EIO and ENOSPC on read, write
//!   and fsync; short and torn writes (a failed write that still applied a
//!   prefix); lying fsyncs (reported durable, dropped at the next power
//!   cut); whole-process power cuts at a chosen operation number; and
//!   targeted per-page bit rot. Every file tracks *volatile* vs *durable*
//!   bytes — a simulated power cut rolls every file back to its durable
//!   image, which is precisely the write-back loss a real kernel page
//!   cache exhibits.
//!
//! `FaultVfs` is fully deterministic per seed: the same seed and the same
//! operation sequence produce the same fault schedule and the same
//! byte-level file states (the property tests pin this down). That is
//! what makes the crash-torture harness reproducible from a seed in a CI
//! log.

use crate::StoreError;
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// How a file is opened through a [`Vfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Existing file, reads only. Writes through the handle fail.
    Read,
    /// Existing file, reads and writes.
    ReadWrite,
    /// Create (or truncate) the file, reads and writes.
    CreateTruncate,
}

/// An open file handle. Positioned I/O only — handles carry no cursor, so
/// a failed operation never leaves one in an ambiguous seek state.
// `len` is fallible disk metadata, not a collection length — `is_empty`
// would be a second fallible syscall wrapper nobody needs.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Send + std::fmt::Debug {
    /// Reads exactly `buf.len()` bytes starting at byte `off`.
    fn read_exact_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), StoreError>;
    /// Writes all of `data` starting at byte `off`, extending the file
    /// (zero-filled) if `off` lies past the end.
    fn write_all_at(&mut self, off: u64, data: &[u8]) -> Result<(), StoreError>;
    /// Truncates or zero-extends the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> Result<(), StoreError>;
    /// fsync: promise everything written so far to stable storage.
    fn sync(&mut self) -> Result<(), StoreError>;
    /// Current file length in bytes.
    fn len(&mut self) -> Result<u64, StoreError>;
}

/// A filesystem the storage engine runs over. Implementations are shared
/// (`Arc<dyn Vfs>`) between the writer, reader, and WAL handles of a
/// store.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Opens `path` in the given mode.
    fn open(&self, path: &Path, mode: OpenMode) -> Result<Box<dyn VfsFile>, StoreError>;
    /// Reads a whole file (WAL replay; never used for the page file).
    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError>;
    /// Atomically renames `from` over `to` (checkpoint temp-file commit).
    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// The default [`Vfs`]: the operating system's filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsVfs;

/// A process-wide `Arc<OsVfs>` for the common default path.
pub fn os_vfs() -> Arc<dyn Vfs> {
    Arc::new(OsVfs)
}

#[derive(Debug)]
struct OsFile {
    file: std::fs::File,
}

impl VfsFile for OsFile {
    fn read_exact_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_all_at(&mut self, off: u64, data: &[u8]) -> Result<(), StoreError> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(data)?;
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<(), StoreError> {
        self.file.set_len(len)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_all()?;
        Ok(())
    }

    fn len(&mut self) -> Result<u64, StoreError> {
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for OsVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> Result<Box<dyn VfsFile>, StoreError> {
        let file = match mode {
            OpenMode::Read => OpenOptions::new().read(true).open(path)?,
            OpenMode::ReadWrite => OpenOptions::new().read(true).write(true).open(path)?,
            OpenMode::CreateTruncate => OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?,
        };
        Ok(Box::new(OsFile { file }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        Ok(std::fs::read(path)?)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<(), StoreError> {
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }
}

/// SplitMix64: tiny, high-quality, and trivially reproducible — the fault
/// schedule is a pure function of the seed and the operation sequence.
/// (Reimplemented here so the crate stays dependency-free.)
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Fault rates and triggers for a [`FaultVfs`], all deterministic per
/// seed. Rates are per-mille (0 = never, 1000 = always).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// EIO probability per read operation.
    pub read_err_per_mille: u16,
    /// EIO probability per write operation (nothing is applied).
    pub write_err_per_mille: u16,
    /// ENOSPC probability per write operation. Like the real thing, a
    /// seeded *prefix* of the data may land before the error: mid-record
    /// disk-full leaves a torn tail.
    pub enospc_per_mille: u16,
    /// Torn-write probability per write operation: a seeded prefix is
    /// applied, then EIO.
    pub torn_write_per_mille: u16,
    /// EIO probability per fsync (nothing is promoted to durable).
    pub sync_err_per_mille: u16,
    /// Lying-fsync probability per fsync: reports `Ok` but promotes
    /// nothing — the data is lost at the next power cut.
    pub lying_fsync_per_mille: u16,
}

/// One in-memory file: the volatile view (what reads observe) and the
/// durable view (what survives a power cut).
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    durable: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemFs {
    files: BTreeMap<PathBuf, MemFile>,
}

#[derive(Debug)]
struct FaultState {
    fs: Mutex<MemFs>,
    cfg: Mutex<FaultConfig>,
    rng: Mutex<SplitMix64>,
    /// Total faultable operations performed (reads + writes + syncs).
    ops: AtomicU64,
    /// Power cut at this operation number (the op itself fails).
    crash_at_op: AtomicU64,
    /// After a power cut every operation fails until [`FaultVfs::revive`].
    crashed: AtomicBool,
}

const NO_CRASH: u64 = u64::MAX;

/// The seeded fault-injection [`Vfs`]. Fully in-memory; clone the handle
/// freely — all clones share the same filesystem and fault schedule.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    state: Arc<FaultState>,
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking holder never leaves MemFs half-updated in a way later
    // operations can't survive; recover instead of wedging the store.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn eio(what: &str) -> StoreError {
    StoreError::Io(std::io::Error::other(format!("injected fault: {what}")))
}

impl FaultVfs {
    /// A fault-free in-memory filesystem seeded for later fault schedules.
    pub fn new(seed: u64) -> FaultVfs {
        FaultVfs {
            state: Arc::new(FaultState {
                fs: Mutex::new(MemFs::default()),
                cfg: Mutex::new(FaultConfig::default()),
                rng: Mutex::new(SplitMix64(seed)),
                ops: AtomicU64::new(0),
                crash_at_op: AtomicU64::new(NO_CRASH),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// Replaces the fault rates (takes effect on the next operation).
    pub fn set_config(&self, cfg: FaultConfig) {
        *locked(&self.state.cfg) = cfg;
    }

    /// Arms a power cut at absolute operation number `op` (see
    /// [`ops`](Self::ops)): that operation fails, every file rolls back
    /// to its durable image, and all later operations fail until
    /// [`revive`](Self::revive).
    pub fn crash_at_op(&self, op: u64) {
        self.state.crash_at_op.store(op, Ordering::SeqCst);
    }

    /// Pulls the power right now.
    pub fn power_cut(&self) {
        self.do_power_cut();
    }

    /// Clears the crashed flag and any armed power cut; the durable file
    /// images are what recovery now sees.
    pub fn revive(&self) {
        self.state.crash_at_op.store(NO_CRASH, Ordering::SeqCst);
        self.state.crashed.store(false, Ordering::SeqCst);
    }

    /// Whether a power cut has fired and [`revive`](Self::revive) has not.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// Faultable operations performed so far.
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Flips one bit of `path` at byte `offset` in **both** the volatile
    /// and durable images: silent media bit rot, visible only to CRCs.
    pub fn rot_bit(&self, path: &Path, offset: u64, bit: u8) -> bool {
        let mut fs = locked(&self.state.fs);
        let Some(f) = fs.files.get_mut(path) else {
            return false;
        };
        let mask = 1u8 << (bit % 8);
        let mut hit = false;
        for img in [&mut f.data, &mut f.durable] {
            if let Some(b) = img.get_mut(offset as usize) {
                *b ^= mask;
                hit = true;
            }
        }
        hit
    }

    /// The volatile bytes of `path`, if it exists.
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        locked(&self.state.fs)
            .files
            .get(path)
            .map(|f| f.data.clone())
    }

    /// The durable bytes of `path`, if it exists.
    pub fn durable_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        locked(&self.state.fs)
            .files
            .get(path)
            .map(|f| f.durable.clone())
    }

    /// All file paths, sorted.
    pub fn paths(&self) -> Vec<PathBuf> {
        locked(&self.state.fs).files.keys().cloned().collect()
    }

    /// A digest over every file's path, volatile and durable bytes —
    /// byte-level state equality for the determinism property tests.
    pub fn state_digest(&self) -> u64 {
        let fs = locked(&self.state.fs);
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            let c = crate::crc32(bytes) as u64;
            acc = (acc ^ c).wrapping_mul(0x1000_0000_01b3).rotate_left(17);
        };
        for (path, f) in &fs.files {
            mix(path.to_string_lossy().as_bytes());
            mix(&f.data);
            mix(&f.durable);
        }
        acc
    }

    fn do_power_cut(&self) {
        self.state.crashed.store(true, Ordering::SeqCst);
        let mut fs = locked(&self.state.fs);
        for f in fs.files.values_mut() {
            f.data = f.durable.clone();
        }
    }

    /// Counts one faultable operation, firing an armed power cut when its
    /// number comes up. Returns `Err` when the filesystem is (now) dead.
    fn tick_op(&self) -> Result<(), StoreError> {
        let op = self.state.ops.fetch_add(1, Ordering::SeqCst);
        if op >= self.state.crash_at_op.load(Ordering::SeqCst) && !self.crashed() {
            self.do_power_cut();
        }
        if self.crashed() {
            return Err(eio("power cut"));
        }
        Ok(())
    }

    fn draw_per_mille(&self) -> u64 {
        locked(&self.state.rng).below(1000)
    }

    /// Seeded prefix length for a torn write of `len` bytes: at least one
    /// byte short of complete so the tear is observable.
    fn torn_len(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        locked(&self.state.rng).below(len as u64) as usize
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> Result<Box<dyn VfsFile>, StoreError> {
        if self.crashed() {
            return Err(eio("power cut"));
        }
        let mut fs = locked(&self.state.fs);
        match mode {
            OpenMode::Read | OpenMode::ReadWrite => {
                if !fs.files.contains_key(path) {
                    return Err(StoreError::Io(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("{}: no such file", path.display()),
                    )));
                }
            }
            OpenMode::CreateTruncate => {
                // Creation truncates both views: the directory entry is
                // modeled as immediately durable (rename commits below
                // share this simplification; see the module docs).
                fs.files.insert(path.to_path_buf(), MemFile::default());
            }
        }
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            path: path.to_path_buf(),
            read_only: mode == OpenMode::Read,
        }))
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, StoreError> {
        self.tick_op()?;
        if self.draw_per_mille() < locked(&self.state.cfg).read_err_per_mille as u64 {
            return Err(eio("read EIO"));
        }
        locked(&self.state.fs)
            .files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| {
                StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("{}: no such file", path.display()),
                ))
            })
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        self.tick_op()?;
        if self.draw_per_mille() < locked(&self.state.cfg).write_err_per_mille as u64 {
            return Err(eio("rename EIO"));
        }
        let mut fs = locked(&self.state.fs);
        let f = fs.files.remove(from).ok_or_else(|| {
            StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{}: no such file", from.display()),
            ))
        })?;
        fs.files.insert(to.to_path_buf(), f);
        Ok(())
    }

    fn create_dir_all(&self, _path: &Path) -> Result<(), StoreError> {
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        locked(&self.state.fs).files.contains_key(path)
    }
}

#[derive(Debug)]
struct FaultFile {
    vfs: FaultVfs,
    path: PathBuf,
    read_only: bool,
}

impl FaultFile {
    /// Runs `f` over this file's in-memory image.
    fn with_file<R>(&self, f: impl FnOnce(&mut MemFile) -> R) -> Result<R, StoreError> {
        let mut fs = locked(&self.vfs.state.fs);
        let file = fs.files.get_mut(&self.path).ok_or_else(|| {
            StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{}: file vanished", self.path.display()),
            ))
        })?;
        Ok(f(file))
    }

    fn write_guard(&self) -> Result<(), StoreError> {
        if self.read_only {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "write through a read-only handle",
            )));
        }
        Ok(())
    }
}

/// Copies `data` into `img` at `off`, zero-extending as needed.
fn apply_write(img: &mut Vec<u8>, off: u64, data: &[u8]) {
    let end = off as usize + data.len();
    if img.len() < end {
        img.resize(end, 0);
    }
    img[off as usize..end].copy_from_slice(data);
}

impl VfsFile for FaultFile {
    fn read_exact_at(&mut self, off: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        self.vfs.tick_op()?;
        if self.vfs.draw_per_mille() < locked(&self.vfs.state.cfg).read_err_per_mille as u64 {
            return Err(eio("read EIO"));
        }
        self.with_file(|f| {
            let end = off as usize + buf.len();
            if f.data.len() < end {
                return Err(StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("read past EOF ({} < {end})", f.data.len()),
                )));
            }
            buf.copy_from_slice(&f.data[off as usize..end]);
            Ok(())
        })?
    }

    fn write_all_at(&mut self, off: u64, data: &[u8]) -> Result<(), StoreError> {
        self.write_guard()?;
        self.vfs.tick_op()?;
        let cfg = *locked(&self.vfs.state.cfg);
        let draw = self.vfs.draw_per_mille();
        let enospc_to = cfg.enospc_per_mille as u64;
        let eio_to = enospc_to + cfg.write_err_per_mille as u64;
        let torn_to = eio_to + cfg.torn_write_per_mille as u64;
        if draw < enospc_to {
            // Mid-record disk-full: a prefix lands, then the error.
            let n = self.vfs.torn_len(data.len());
            self.with_file(|f| apply_write(&mut f.data, off, &data[..n]))?;
            return Err(StoreError::Io(std::io::Error::other(
                "injected fault: ENOSPC (disk full)",
            )));
        }
        if draw < eio_to {
            return Err(eio("write EIO"));
        }
        if draw < torn_to {
            let n = self.vfs.torn_len(data.len());
            self.with_file(|f| apply_write(&mut f.data, off, &data[..n]))?;
            return Err(eio("torn write"));
        }
        self.with_file(|f| apply_write(&mut f.data, off, data))
    }

    fn set_len(&mut self, len: u64) -> Result<(), StoreError> {
        self.write_guard()?;
        self.vfs.tick_op()?;
        if self.vfs.draw_per_mille() < locked(&self.vfs.state.cfg).write_err_per_mille as u64 {
            return Err(eio("truncate EIO"));
        }
        self.with_file(|f| f.data.resize(len as usize, 0))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.vfs.tick_op()?;
        let cfg = *locked(&self.vfs.state.cfg);
        let draw = self.vfs.draw_per_mille();
        if draw < cfg.sync_err_per_mille as u64 {
            return Err(eio("fsync EIO"));
        }
        if draw < cfg.sync_err_per_mille as u64 + cfg.lying_fsync_per_mille as u64 {
            // The lie: report durable, promote nothing.
            return Ok(());
        }
        self.with_file(|f| f.durable = f.data.clone())
    }

    fn len(&mut self) -> Result<u64, StoreError> {
        self.with_file(|f| f.data.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn fault_free_roundtrip_matches_os_semantics() {
        let vfs = FaultVfs::new(7);
        let mut f = vfs.open(&p("a"), OpenMode::CreateTruncate).unwrap();
        f.write_all_at(0, b"hello").unwrap();
        f.write_all_at(8, b"gap").unwrap(); // zero-fills the hole
        let mut buf = [0u8; 11];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello\0\0\0gap");
        assert_eq!(f.len().unwrap(), 11);
        f.set_len(5).unwrap();
        assert_eq!(vfs.read(&p("a")).unwrap(), b"hello");
        assert!(vfs.exists(&p("a")));
        assert!(!vfs.exists(&p("b")));
        vfs.rename(&p("a"), &p("b")).unwrap();
        assert!(vfs.exists(&p("b")));
        assert!(vfs.open(&p("a"), OpenMode::Read).is_err());
    }

    #[test]
    fn power_cut_drops_unsynced_writes() {
        let vfs = FaultVfs::new(1);
        let mut f = vfs.open(&p("x"), OpenMode::CreateTruncate).unwrap();
        f.write_all_at(0, b"durable").unwrap();
        f.sync().unwrap();
        f.write_all_at(7, b"+volatile").unwrap();
        assert_eq!(vfs.file_bytes(&p("x")).unwrap(), b"durable+volatile");
        vfs.power_cut();
        assert!(f.write_all_at(0, b"zz").is_err(), "dead after the cut");
        vfs.revive();
        assert_eq!(vfs.file_bytes(&p("x")).unwrap(), b"durable");
    }

    #[test]
    fn lying_fsync_loses_data_at_power_cut() {
        let vfs = FaultVfs::new(2);
        let mut f = vfs.open(&p("x"), OpenMode::CreateTruncate).unwrap();
        f.write_all_at(0, b"base").unwrap();
        f.sync().unwrap();
        vfs.set_config(FaultConfig {
            lying_fsync_per_mille: 1000,
            ..FaultConfig::default()
        });
        f.write_all_at(4, b"-lost").unwrap();
        f.sync().unwrap(); // lies
        vfs.power_cut();
        vfs.revive();
        assert_eq!(vfs.file_bytes(&p("x")).unwrap(), b"base");
    }

    #[test]
    fn crash_at_op_fires_once_at_that_op() {
        let vfs = FaultVfs::new(3);
        let mut f = vfs.open(&p("x"), OpenMode::CreateTruncate).unwrap();
        f.write_all_at(0, b"one").unwrap();
        f.sync().unwrap();
        let next = vfs.ops();
        vfs.crash_at_op(next + 1);
        f.write_all_at(3, b"two").unwrap(); // op `next`: still alive
        assert!(f.sync().is_err(), "op next+1 is the cut");
        assert!(vfs.crashed());
        vfs.revive();
        assert_eq!(vfs.file_bytes(&p("x")).unwrap(), b"one");
    }

    #[test]
    fn torn_write_applies_a_strict_prefix() {
        let vfs = FaultVfs::new(4);
        let mut f = vfs.open(&p("x"), OpenMode::CreateTruncate).unwrap();
        vfs.set_config(FaultConfig {
            torn_write_per_mille: 1000,
            ..FaultConfig::default()
        });
        assert!(f.write_all_at(0, b"0123456789").is_err());
        let got = vfs.file_bytes(&p("x")).unwrap();
        assert!(got.len() < 10, "torn write applied all 10 bytes");
        assert_eq!(got[..], b"0123456789"[..got.len()]);
    }

    #[test]
    fn bit_rot_flips_exactly_one_bit() {
        let vfs = FaultVfs::new(5);
        let mut f = vfs.open(&p("x"), OpenMode::CreateTruncate).unwrap();
        f.write_all_at(0, &[0u8; 8]).unwrap();
        f.sync().unwrap();
        assert!(vfs.rot_bit(&p("x"), 3, 2));
        assert_eq!(vfs.file_bytes(&p("x")).unwrap()[3], 0b100);
        assert_eq!(vfs.durable_bytes(&p("x")).unwrap()[3], 0b100);
        assert!(!vfs.rot_bit(&p("x"), 99, 0), "offset past EOF");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let vfs = FaultVfs::new(seed);
            vfs.set_config(FaultConfig {
                write_err_per_mille: 300,
                torn_write_per_mille: 200,
                sync_err_per_mille: 100,
                ..FaultConfig::default()
            });
            let mut f = vfs.open(&p("x"), OpenMode::CreateTruncate).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..64u64 {
                outcomes.push(f.write_all_at(i * 8, &[i as u8; 8]).is_ok());
                outcomes.push(f.sync().is_ok());
            }
            (outcomes, vfs.state_digest())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should diverge");
    }
}
