//! The buffer pool: a bounded set of in-memory page frames with clock
//! (second-chance) eviction and pin guards.
//!
//! The pool is keyed by page id and holds each cached page's payload as an
//! `Arc<Vec<u8>>`. A hit hands out a [`PinnedPage`] cloning that `Arc`, so
//! eviction never invalidates bytes a reader is still assembling a record
//! from — the frame leaves the pool, the guard keeps the allocation alive.
//! That makes the pin protocol trivially deadlock-free: readers never block
//! eviction and eviction never blocks readers.
//!
//! Eviction is the classic clock sweep: every frame has a reference bit set
//! on hit; the hand clears bits until it finds one already clear and evicts
//! that frame. The budget is expressed in bytes and converted to a frame
//! count once the page size is known.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A pinned page: cheap to clone, keeps the payload alive independent of
/// the pool's eviction decisions.
#[derive(Debug, Clone)]
pub struct PinnedPage {
    bytes: Arc<Vec<u8>>,
}

impl PinnedPage {
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl std::ops::Deref for PinnedPage {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

/// Monotonic pool counters, readable without the frame lock.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time snapshot of pool behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Frames currently resident.
    pub resident_pages: u64,
    /// Maximum frames the budget allows.
    pub capacity_pages: u64,
}

#[derive(Debug)]
struct Frame {
    page: u32,
    bytes: Arc<Vec<u8>>,
    referenced: bool,
}

#[derive(Debug, Default)]
struct Frames {
    /// Clock order; the hand is an index into this ring.
    ring: Vec<Frame>,
    hand: usize,
    /// page id -> index in `ring`.
    index: HashMap<u32, usize>,
    /// Invalidation stamp: bumped by every [`BufferPool::invalidate`] /
    /// [`BufferPool::clear`]. Readers that fetched a page from disk without
    /// holding the store's write lock pass the stamp they saw *before* the
    /// read into [`BufferPool::insert_if`]; a stamp mismatch means an
    /// invalidation raced the read and the bytes must not be cached.
    stamp: u64,
}

/// The pool itself. Internally synchronized; shared via `Arc`.
#[derive(Debug)]
pub struct BufferPool {
    frames: Mutex<Frames>,
    capacity: usize,
    counters: Counters,
}

impl BufferPool {
    /// Creates a pool holding at most `budget_bytes / page_size` frames
    /// (minimum 4, so tiny test budgets still let multi-page records
    /// assemble while exercising eviction).
    pub fn with_budget(budget_bytes: usize, page_size: usize) -> BufferPool {
        let capacity = (budget_bytes / page_size.max(1)).max(4);
        BufferPool {
            frames: Mutex::new(Frames::default()),
            capacity,
            counters: Counters::default(),
        }
    }

    /// Looks up a page, returning a pin on hit.
    pub fn get(&self, page: u32) -> Option<PinnedPage> {
        let mut f = self.frames.lock().unwrap();
        if let Some(&i) = f.index.get(&page) {
            f.ring[i].referenced = true;
            let bytes = Arc::clone(&f.ring[i].bytes);
            drop(f);
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            crate::obs::obs().pool_hit();
            Some(PinnedPage { bytes })
        } else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            crate::obs::obs().pool_miss();
            None
        }
    }

    /// The current invalidation stamp. Capture it *before* reading a page
    /// from disk outside the store's write lock, then cache the bytes with
    /// [`insert_if`](Self::insert_if).
    pub fn stamp(&self) -> u64 {
        self.frames.lock().unwrap().stamp
    }

    /// Inserts a page only when no invalidation happened since `stamp` was
    /// captured — otherwise the bytes may predate a checkpoint's rewrite of
    /// that page and caching them would serve stale data to later readers.
    /// Always returns a pin on the bytes (the caller's copy is still a
    /// valid read of the state it looked the page up in).
    pub fn insert_if(&self, stamp: u64, page: u32, payload: Vec<u8>) -> PinnedPage {
        let f = self.frames.lock().unwrap();
        if f.stamp != stamp {
            return PinnedPage {
                bytes: Arc::new(payload),
            };
        }
        Self::insert_locked(f, page, &self.counters, self.capacity, payload)
    }

    /// Inserts (or refreshes) a page read from disk and returns a pin on
    /// it. Runs the clock sweep if the pool is at capacity.
    pub fn insert(&self, page: u32, payload: Vec<u8>) -> PinnedPage {
        let f = self.frames.lock().unwrap();
        Self::insert_locked(f, page, &self.counters, self.capacity, payload)
    }

    fn insert_locked(
        mut f: std::sync::MutexGuard<'_, Frames>,
        page: u32,
        counters: &Counters,
        capacity: usize,
        payload: Vec<u8>,
    ) -> PinnedPage {
        let bytes = Arc::new(payload);
        if let Some(&i) = f.index.get(&page) {
            f.ring[i].bytes = Arc::clone(&bytes);
            f.ring[i].referenced = true;
            return PinnedPage { bytes };
        }
        if f.ring.len() >= capacity {
            // Clock sweep: clear reference bits until a clear frame turns
            // up. Bounded: after one full lap every bit is clear.
            loop {
                let hand = f.hand;
                if f.ring[hand].referenced {
                    f.ring[hand].referenced = false;
                    f.hand = (hand + 1) % f.ring.len();
                    continue;
                }
                let evicted = f.ring[hand].page;
                f.index.remove(&evicted);
                f.ring[hand] = Frame {
                    page,
                    bytes: Arc::clone(&bytes),
                    referenced: true,
                };
                f.index.insert(page, hand);
                f.hand = (hand + 1) % f.ring.len();
                counters.evictions.fetch_add(1, Ordering::Relaxed);
                crate::obs::obs().eviction();
                return PinnedPage { bytes };
            }
        }
        let i = f.ring.len();
        f.ring.push(Frame {
            page,
            bytes: Arc::clone(&bytes),
            referenced: true,
        });
        f.index.insert(page, i);
        PinnedPage { bytes }
    }

    /// Drops any cached copies of the given pages. Used by checkpointing:
    /// free pages rewritten with new content must not serve stale frames.
    pub fn invalidate(&self, pages: &[u32]) {
        let mut f = self.frames.lock().unwrap();
        f.stamp += 1;
        for &p in pages {
            if let Some(i) = f.index.remove(&p) {
                // Swap-remove keeps the ring dense; fix the moved frame's
                // index entry and keep the hand in range.
                f.ring.swap_remove(i);
                if i < f.ring.len() {
                    let moved = f.ring[i].page;
                    f.index.insert(moved, i);
                }
                if !f.ring.is_empty() {
                    f.hand %= f.ring.len();
                } else {
                    f.hand = 0;
                }
            }
        }
    }

    /// Drops every cached frame.
    pub fn clear(&self) {
        let mut f = self.frames.lock().unwrap();
        f.stamp += 1;
        f.ring.clear();
        f.index.clear();
        f.hand = 0;
    }

    pub fn stats(&self) -> PoolStats {
        let resident = self.frames.lock().unwrap().ring.len() as u64;
        PoolStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            resident_pages: resident,
            capacity_pages: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction() {
        // Budget for exactly 4 frames.
        let pool = BufferPool::with_budget(4 * 128, 128);
        for p in 0..4u32 {
            assert!(pool.get(p).is_none());
            pool.insert(p, vec![p as u8; 8]);
        }
        assert_eq!(pool.stats().resident_pages, 4);
        // Fifth insert forces an eviction: every frame's bit is set, so a
        // full sweep clears them all and evicts the first frame (page 0).
        pool.insert(4, vec![4; 8]);
        let s = pool.stats();
        assert_eq!(s.resident_pages, 4);
        assert_eq!(s.evictions, 1);
        assert!(pool.get(0).is_none());
        // Re-reference page 1, then insert again: the clock skips the
        // referenced frame (second chance) and evicts page 2 instead.
        assert!(pool.get(1).is_some());
        pool.insert(5, vec![5; 8]);
        assert!(pool.get(1).is_some());
        assert!(pool.get(2).is_none());
    }

    #[test]
    fn pins_survive_eviction() {
        let pool = BufferPool::with_budget(4 * 128, 128);
        let pin = pool.insert(7, vec![42; 16]);
        // Evict everything.
        pool.clear();
        assert!(pool.get(7).is_none());
        // The pin still holds the bytes.
        assert_eq!(pin.bytes(), &[42u8; 16][..]);
    }

    #[test]
    fn stamped_insert_refuses_after_invalidation() {
        let pool = BufferPool::with_budget(8 * 128, 128);
        let stamp = pool.stamp();
        let pin = pool.insert_if(stamp, 1, vec![1]);
        assert_eq!(pin.bytes(), &[1][..]);
        assert!(pool.get(1).is_some());
        // A read that raced an invalidation: the returned pin is still a
        // valid snapshot read, but the frame must not be cached.
        let stale_stamp = pool.stamp();
        pool.invalidate(&[1]);
        let pin = pool.insert_if(stale_stamp, 1, vec![9]);
        assert_eq!(pin.bytes(), &[9][..]);
        assert!(pool.get(1).is_none());
        // With a fresh stamp the insert caches again.
        let pin = pool.insert_if(pool.stamp(), 1, vec![7]);
        assert_eq!(pin.bytes(), &[7][..]);
        assert!(pool.get(1).is_some());
    }

    #[test]
    fn invalidate_removes_specific_pages() {
        let pool = BufferPool::with_budget(8 * 128, 128);
        for p in 0..6u32 {
            pool.insert(p, vec![p as u8]);
        }
        pool.invalidate(&[1, 3, 5]);
        assert!(pool.get(1).is_none());
        assert!(pool.get(3).is_none());
        assert!(pool.get(5).is_none());
        assert!(pool.get(0).is_some());
        assert!(pool.get(2).is_some());
        assert!(pool.get(4).is_some());
    }
}
