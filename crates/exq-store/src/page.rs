//! The page file: fixed-size pages with a CRC32 each, plus a
//! double-buffered superblock.
//!
//! Layout (all little-endian):
//!
//! ```text
//! page 0         superblock slot A ┐ alternating targets; the valid slot
//! page 1         superblock slot B ┘ with the higher version wins on open
//! page 2..N      data pages
//! ```
//!
//! Every page is `page_size` bytes: a 8-byte header — `crc32: u32` over
//! (`used` ‖ payload\[..used\]), `used: u32` — followed by the payload. A
//! torn or bit-flipped page fails its CRC on read and surfaces as a typed
//! [`StoreError::Corrupt`], never as garbage bytes.
//!
//! The superblock is an ordinary CRC'd page whose payload is the store
//! epoch: magic, monotone version, page size, the WAL sequence number the
//! checkpoint folded in, and the page chain holding the record directory.
//! Checkpoints write the *other* slot, so a kill mid-write leaves the
//! previous slot intact and recovery falls back to it.

use crate::vfs::{OpenMode, Vfs, VfsFile};
use crate::{crc32, StoreError};
use std::path::Path;

/// Default page size: 8 KiB (within the 4–16 KiB band native XML stores
/// use; big enough that a typical sealed block spans a handful of pages).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

/// Smallest allowed page size (tests use tiny pages to force multi-page
/// records and eviction with small data).
pub const MIN_PAGE_SIZE: usize = 128;

/// Largest allowed page size.
pub const MAX_PAGE_SIZE: usize = 1 << 20;

/// Bytes of per-page header (`crc32` + `used`).
pub const PAGE_HEADER_BYTES: usize = 8;

/// Superblock payload magic.
const SUPER_MAGIC: &[u8; 8] = b"EXQPGSB1";

/// The two reserved superblock page ids.
pub const SUPER_SLOTS: [u32; 2] = [0, 1];

/// A decoded superblock: the durable epoch the page file is at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Monotone checkpoint version; the higher valid slot wins on open.
    pub version: u64,
    /// Page size this file was created with (fixed for the file's life).
    pub page_size: u64,
    /// Highest WAL sequence number folded into this checkpoint. Replay
    /// skips log records at or below it.
    pub wal_seq: u64,
    /// Total byte length of the encoded record directory.
    pub dir_len: u64,
    /// Page chain holding the encoded directory.
    pub dir_pages: Vec<u32>,
}

impl Superblock {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44 + 4 * self.dir_pages.len());
        out.extend_from_slice(SUPER_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.page_size.to_le_bytes());
        out.extend_from_slice(&self.wal_seq.to_le_bytes());
        out.extend_from_slice(&self.dir_len.to_le_bytes());
        out.extend_from_slice(&(self.dir_pages.len() as u32).to_le_bytes());
        for &p in &self.dir_pages {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<Superblock, StoreError> {
        let err = |m: &str| StoreError::Corrupt(format!("superblock: {m}"));
        if bytes.len() < 44 || &bytes[..8] != SUPER_MAGIC {
            return Err(err("bad magic"));
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let version = u64_at(8);
        let page_size = u64_at(16);
        let wal_seq = u64_at(24);
        let dir_len = u64_at(32);
        let n = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize;
        if bytes.len() != 44 + 4 * n {
            return Err(err("directory chain length mismatch"));
        }
        let dir_pages = (0..n)
            .map(|i| u32::from_le_bytes(bytes[44 + 4 * i..48 + 4 * i].try_into().unwrap()))
            .collect();
        Ok(Superblock {
            version,
            page_size,
            wal_seq,
            dir_len,
            dir_pages,
        })
    }
}

/// Recovers a page file's page size from its head bytes without knowing it
/// in advance. `head` must hold the first `min(file_len, 2 * MAX_PAGE_SIZE)`
/// bytes of the file.
///
/// Slot 0 starts at offset 0, so when it is intact its CRC-validated
/// superblock names the size directly. When slot 0 is torn (a crash mid
/// superblock flip), slot 1 begins exactly one page in — so any
/// CRC-validated superblock whose file offset equals its own recorded page
/// size identifies it. Only when *both* slots fail does this return `None`.
pub fn probe_page_size(head: &[u8], file_len: u64) -> Option<usize> {
    let plausible = |sz: usize| {
        (MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&sz)
            && file_len >= 2 * sz as u64
            && file_len.is_multiple_of(sz as u64)
    };
    if let Some(sb) = decode_superblock_at(head, 0) {
        let sz = sb.page_size as usize;
        if plausible(sz) {
            return Some(sz);
        }
    }
    let scan_end = head
        .len()
        .saturating_sub(PAGE_HEADER_BYTES + SUPER_MAGIC.len());
    for pos in MIN_PAGE_SIZE..=scan_end.min(MAX_PAGE_SIZE) {
        if &head[pos + PAGE_HEADER_BYTES..pos + PAGE_HEADER_BYTES + 8] == SUPER_MAGIC
            && plausible(pos)
        {
            if let Some(sb) = decode_superblock_at(head, pos) {
                if sb.page_size as usize == pos {
                    return Some(pos);
                }
            }
        }
    }
    None
}

/// Decodes a CRC-valid superblock page starting at byte `off` of `head`,
/// without needing the page size (the CRC covers only the used payload).
fn decode_superblock_at(head: &[u8], off: usize) -> Option<Superblock> {
    let rest = head.get(off..)?;
    if rest.len() < PAGE_HEADER_BYTES {
        return None;
    }
    let stored = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    let used = u32::from_le_bytes(rest[4..8].try_into().unwrap()) as usize;
    if used > rest.len() - PAGE_HEADER_BYTES {
        return None;
    }
    if stored != crc32(&rest[4..PAGE_HEADER_BYTES + used]) {
        return None;
    }
    Superblock::decode(&rest[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + used]).ok()
}

/// The page file handle. All reads verify the per-page CRC; all writes
/// compute it. Not internally synchronized — [`PagedStore`] wraps it in a
/// lock.
///
/// [`PagedStore`]: crate::store::PagedStore
#[derive(Debug)]
pub struct PageFile {
    file: Box<dyn VfsFile>,
    page_size: usize,
    /// Pages currently allocated in the file (file length / page size).
    pages: u32,
}

impl PageFile {
    /// Creates a fresh page file with two zeroed (invalid) superblock
    /// slots. The caller must write a valid superblock before the file is
    /// openable.
    pub fn create(vfs: &dyn Vfs, path: &Path, page_size: usize) -> Result<PageFile, StoreError> {
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StoreError::Corrupt(format!(
                "page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
            )));
        }
        let mut file = vfs.open(path, OpenMode::CreateTruncate)?;
        file.set_len(2 * page_size as u64)?;
        Ok(PageFile {
            file,
            page_size,
            pages: 2,
        })
    }

    /// Opens an existing page file read-write. The caller passes the page
    /// size it expects (see [`probe_page_size`] for recovering it from the
    /// file itself); the superblock read then validates it properly.
    pub fn open(vfs: &dyn Vfs, path: &Path, page_size: usize) -> Result<PageFile, StoreError> {
        let file = vfs.open(path, OpenMode::ReadWrite)?;
        Self::with_file(file, page_size)
    }

    /// Opens an existing page file for reading only — never writes, so it
    /// is safe against a store another process (or another handle in this
    /// one) currently owns. Calling [`write_page`](Self::write_page) on the
    /// result fails with an I/O error.
    pub fn open_read(vfs: &dyn Vfs, path: &Path, page_size: usize) -> Result<PageFile, StoreError> {
        let file = vfs.open(path, OpenMode::Read)?;
        Self::with_file(file, page_size)
    }

    fn with_file(mut file: Box<dyn VfsFile>, page_size: usize) -> Result<PageFile, StoreError> {
        let len = file.len()?;
        if page_size < MIN_PAGE_SIZE || len < 2 * page_size as u64 {
            return Err(StoreError::Corrupt(format!(
                "page file shorter than its superblocks ({len} bytes)"
            )));
        }
        let pages = (len / page_size as u64) as u32;
        Ok(PageFile {
            file,
            page_size,
            pages,
        })
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Usable payload bytes per page.
    pub fn payload_capacity(&self) -> usize {
        self.page_size - PAGE_HEADER_BYTES
    }

    /// Pages currently allocated (superblocks included).
    pub fn pages(&self) -> u32 {
        self.pages
    }

    /// On-disk size in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.pages as u64 * self.page_size as u64
    }

    /// Reads one page's payload, verifying the CRC.
    pub fn read_page(&mut self, id: u32) -> Result<Vec<u8>, StoreError> {
        if id >= self.pages {
            // Another handle on the same file may have extended it since
            // this one snapshotted its length (checkpoints allocate fresh
            // pages); re-derive the count before declaring `id` bad.
            self.pages = (self.file.len()? / self.page_size as u64) as u32;
        }
        if id >= self.pages {
            return Err(StoreError::Corrupt(format!(
                "page {id} out of range (file has {})",
                self.pages
            )));
        }
        let mut buf = vec![0u8; self.page_size];
        self.file
            .read_exact_at(id as u64 * self.page_size as u64, &mut buf)?;
        let stored = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let used = u32::from_le_bytes(buf[4..8].try_into().unwrap()) as usize;
        if used > self.payload_capacity() {
            return Err(StoreError::Corrupt(format!(
                "page {id}: used length {used} exceeds capacity"
            )));
        }
        let computed = crc32(&buf[4..PAGE_HEADER_BYTES + used]);
        if stored != computed {
            return Err(StoreError::Corrupt(format!(
                "page {id}: checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        buf.drain(..PAGE_HEADER_BYTES);
        buf.truncate(used);
        Ok(buf)
    }

    /// Writes one page's payload (must fit the capacity), extending the
    /// file if `id` is the next page. Durability is the caller's business
    /// ([`sync`](Self::sync)).
    pub fn write_page(&mut self, id: u32, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() > self.payload_capacity() {
            return Err(StoreError::Corrupt(format!(
                "payload {} exceeds page capacity {}",
                payload.len(),
                self.payload_capacity()
            )));
        }
        if id > self.pages {
            return Err(StoreError::Corrupt(format!(
                "non-contiguous page allocation: {id} > {}",
                self.pages
            )));
        }
        let mut buf = vec![0u8; self.page_size];
        buf[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        buf[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + payload.len()].copy_from_slice(payload);
        let crc = crc32(&buf[4..PAGE_HEADER_BYTES + payload.len()]);
        buf[0..4].copy_from_slice(&crc.to_le_bytes());
        self.file
            .write_all_at(id as u64 * self.page_size as u64, &buf)?;
        if id == self.pages {
            self.pages += 1;
        }
        Ok(())
    }

    /// fsync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync()
    }

    /// Reads the newest valid superblock: tries both slots, tolerating a
    /// corrupt one (that is the double-buffering working as designed), and
    /// returns the valid slot with the highest version plus its slot index.
    pub fn read_superblock(&mut self) -> Result<(Superblock, usize), StoreError> {
        let mut best: Option<(Superblock, usize)> = None;
        for (slot, &page) in SUPER_SLOTS.iter().enumerate() {
            let Ok(payload) = self.read_page(page) else {
                continue;
            };
            let Ok(sb) = Superblock::decode(&payload) else {
                continue;
            };
            if sb.page_size != self.page_size as u64 {
                return Err(StoreError::Corrupt(format!(
                    "superblock page size {} does not match file page size {}",
                    sb.page_size, self.page_size
                )));
            }
            if best.as_ref().is_none_or(|(b, _)| sb.version > b.version) {
                best = Some((sb, slot));
            }
        }
        best.ok_or_else(|| StoreError::Corrupt("no valid superblock in either slot".into()))
    }

    /// Writes a superblock into the slot the *previous* valid one does not
    /// occupy, fsyncs, and returns. The data pages it references must
    /// already be durable (the caller syncs them first).
    pub fn write_superblock(
        &mut self,
        sb: &Superblock,
        previous_slot: usize,
    ) -> Result<(), StoreError> {
        let target = SUPER_SLOTS[(previous_slot + 1) % 2];
        let payload = sb.encode();
        if payload.len() > self.payload_capacity() {
            return Err(StoreError::Corrupt(format!(
                "directory chain too long for one superblock page ({} bytes)",
                payload.len()
            )));
        }
        self.write_page(target, &payload)?;
        self.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::OsVfs;
    use std::fs::OpenOptions;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("exq-store-page-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn page_roundtrip_and_crc() {
        let path = tmp("roundtrip.exqp");
        let mut f = PageFile::create(&OsVfs, &path, MIN_PAGE_SIZE).unwrap();
        f.write_page(2, b"hello pages").unwrap();
        f.write_page(3, &[]).unwrap();
        assert_eq!(f.read_page(2).unwrap(), b"hello pages");
        assert_eq!(f.read_page(3).unwrap(), b"");
        // Flip a payload bit on disk: the read must fail, not return junk.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut raw = OpenOptions::new().write(true).open(&path).unwrap();
            raw.seek(SeekFrom::Start(2 * MIN_PAGE_SIZE as u64 + 12))
                .unwrap();
            raw.write_all(&[0xFF]).unwrap();
        }
        let mut f = PageFile::open(&OsVfs, &path, MIN_PAGE_SIZE).unwrap();
        assert!(matches!(f.read_page(2), Err(StoreError::Corrupt(_))));
        assert_eq!(f.read_page(3).unwrap(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn superblock_two_slot_fallback() {
        let path = tmp("super.exqp");
        let mut f = PageFile::create(&OsVfs, &path, MIN_PAGE_SIZE).unwrap();
        // Fresh file: no valid superblock at all.
        assert!(f.read_superblock().is_err());
        let v1 = Superblock {
            version: 1,
            page_size: MIN_PAGE_SIZE as u64,
            wal_seq: 0,
            dir_len: 0,
            dir_pages: vec![],
        };
        f.write_superblock(&v1, 1).unwrap(); // lands in slot 0
        assert_eq!(f.read_superblock().unwrap(), (v1.clone(), 0));
        let v2 = Superblock {
            version: 2,
            wal_seq: 9,
            ..v1.clone()
        };
        f.write_superblock(&v2, 0).unwrap(); // lands in slot 1
        assert_eq!(f.read_superblock().unwrap(), (v2.clone(), 1));
        // Corrupt the newer slot: recovery falls back to version 1.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut raw = OpenOptions::new().write(true).open(&path).unwrap();
            raw.seek(SeekFrom::Start(MIN_PAGE_SIZE as u64 + 9)).unwrap();
            raw.write_all(&[0xAA]).unwrap();
        }
        let mut f = PageFile::open(&OsVfs, &path, MIN_PAGE_SIZE).unwrap();
        assert_eq!(f.read_superblock().unwrap(), (v1, 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn probe_page_size_survives_torn_slot0() {
        let path = tmp("probe.exqp");
        let mut f = PageFile::create(&OsVfs, &path, 256).unwrap();
        let v1 = Superblock {
            version: 1,
            page_size: 256,
            wal_seq: 0,
            dir_len: 0,
            dir_pages: vec![],
        };
        f.write_superblock(&v1, 1).unwrap(); // slot 0
        let v2 = Superblock { version: 2, ..v1 };
        f.write_superblock(&v2, 0).unwrap(); // slot 1
        drop(f);
        let probe = |path: &Path| {
            let head = std::fs::read(path).unwrap();
            let len = head.len() as u64;
            probe_page_size(&head, len)
        };
        assert_eq!(probe(&path), Some(256), "intact slot 0");
        // Tear slot 0 (crash mid-flip targeting it): slot 1 still names it.
        let scribble = |path: &Path, off: u64| {
            use std::io::{Seek, SeekFrom, Write};
            let mut raw = OpenOptions::new().write(true).open(path).unwrap();
            raw.seek(SeekFrom::Start(off)).unwrap();
            raw.write_all(&[0xFF; 16]).unwrap();
        };
        scribble(&path, 0);
        assert_eq!(probe(&path), Some(256), "torn slot 0, intact slot 1");
        // Both slots torn: nothing to recover from.
        scribble(&path, 256);
        assert_eq!(probe(&path), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_capacity_enforced() {
        let path = tmp("cap.exqp");
        let mut f = PageFile::create(&OsVfs, &path, MIN_PAGE_SIZE).unwrap();
        let too_big = vec![0u8; MIN_PAGE_SIZE - PAGE_HEADER_BYTES + 1];
        assert!(f.write_page(2, &too_big).is_err());
        // Non-contiguous allocation is a bug, not silent file growth.
        assert!(f.write_page(9, b"x").is_err());
        std::fs::remove_file(&path).ok();
    }
}
