//! Out-of-core paged storage for hosted encrypted databases.
//!
//! The serving layers above (`exq-core`) keep a hosted database's *payload*
//! — sealed ciphertext blocks and index posting lists — in a page file
//! behind a pinning buffer pool, so a database several times larger than
//! RAM serves queries whose latency depends on the *working set*, not the
//! database size. Mutations append logical records to a write-ahead log
//! instead of rewriting the artifact, and a background checkpointer folds
//! the log into the page file off the serving path.
//!
//! This crate is the physical layer and knows nothing about XML or
//! encryption: it stores opaque variable-length **records** keyed by `u64`
//! ids across fixed-size pages. The pieces:
//!
//! * [`page`] — the page file: fixed-size pages, CRC32 per page, and a
//!   double-buffered superblock (two slots, monotonically versioned) so a
//!   torn superblock write falls back to the previous durable state.
//! * [`pool`] — the buffer pool: a byte budget's worth of page frames with
//!   clock (second-chance) eviction and pin guards that keep a page's bytes
//!   alive while a reader assembles a record from them.
//! * [`wal`] — the write-ahead log: length+CRC framed records with
//!   monotonic sequence numbers, fsync'd on append, replay that cleanly
//!   drops a torn tail but reports mid-file corruption as a typed error.
//! * [`store`] — [`PagedStore`]: the record directory plus copy-on-write
//!   checkpointing that folds dirty records into free pages, flips the
//!   superblock, and compacts the log — a kill at any instant leaves
//!   either the old durable state (plus the log) or the new one.
//! * [`vfs`] — the filesystem seam: every file operation above goes
//!   through a [`Vfs`], either the real OS filesystem ([`OsVfs`]) or a
//!   seeded in-memory [`FaultVfs`] that injects EIO/ENOSPC, torn writes,
//!   lying fsyncs, power cuts, and bit rot for crash-torture tests.

pub mod obs;
pub mod page;
pub mod pool;
pub mod store;
pub mod vfs;
pub mod wal;

pub use obs::{set_observer, StoreObserver};
pub use page::{PageFile, DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, MIN_PAGE_SIZE, PAGE_HEADER_BYTES};
pub use pool::{BufferPool, PinnedPage, PoolStats};
pub use store::{
    CorruptRecord, PagedStore, ScrubReport, StoreFootprint, StoreOptions, StoreReader,
    SCRUB_DIRECTORY,
};
pub use vfs::{os_vfs, FaultConfig, FaultVfs, OpenMode, OsVfs, Vfs, VfsFile};
pub use wal::{Wal, WalRecord, WalReplay};

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// On-disk state failed validation (bad magic, CRC mismatch, impossible
    /// lengths). The caller never sees garbage bytes — corruption is always
    /// a typed error.
    Corrupt(String),
    /// A record id was requested that the directory does not hold.
    MissingRecord(u64),
    /// The test-only crash injection point fired (see
    /// [`PagedStore::inject_checkpoint_crash`]).
    InjectedCrash,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage io: {e}"),
            StoreError::Corrupt(m) => write!(f, "storage corrupt: {m}"),
            StoreError::MissingRecord(id) => write!(f, "missing record {id:#x}"),
            StoreError::InjectedCrash => write!(f, "injected checkpoint crash"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// CRC32 (IEEE, reflected) over a byte slice — same polynomial as the wire
/// codec's frame checksum, reimplemented here so the crate stays
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
