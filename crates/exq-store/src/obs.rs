//! Observer hooks: how the physical layer reports what it just did.
//!
//! This crate deliberately knows nothing about telemetry (or XML, or
//! encryption) — but the serving layers above need per-event visibility
//! into the storage engine: pool hits and misses, page-fault read
//! latency, evictions under pressure, epoch retries, WAL fsync cost,
//! replay time, compactions, checkpoint folds. Rather than threading
//! callbacks through every constructor, the crate exposes one
//! process-wide [`StoreObserver`] installed once (normally by
//! `exq-core`'s telemetry glue) via [`set_observer`]. Every hook has an
//! empty default body, and until an observer is installed the call sites
//! dispatch to a no-op — a store used stand-alone pays one atomic load
//! per event and nothing else.
//!
//! Hooks fire on the thread that did the work: a page fault reported
//! from a query's serving thread can be attributed to that query, while
//! the background checkpointer's folds land on its own thread. That
//! thread affinity is what makes the layer above's per-query resource
//! profiles exact instead of sampled.

use std::sync::OnceLock;

/// Storage-engine event sink. All methods default to no-ops so an
/// observer only implements what it cares about. Implementations must be
/// cheap and must never call back into the store.
pub trait StoreObserver: Sync + Send {
    /// A buffer-pool lookup found the page resident.
    fn pool_hit(&self) {}
    /// A buffer-pool lookup missed (a disk read follows).
    fn pool_miss(&self) {}
    /// A page was read from disk to satisfy a record read; `nanos` is the
    /// read latency (lock wait included — that *is* the stall the caller
    /// experienced).
    fn page_fault(&self, nanos: u64) {
        let _ = nanos;
    }
    /// The clock sweep evicted a frame to make room (pool at capacity).
    fn eviction(&self) {}
    /// A record read raced a checkpoint publish and retried.
    fn epoch_retry(&self) {}
    /// A WAL append committed: `bytes` framed bytes written, `nanos` for
    /// the write + fsync (the mutation's on-path durability cost).
    fn wal_fsync(&self, bytes: u64, nanos: u64) {
        let _ = (bytes, nanos);
    }
    /// A WAL file was scanned on open: `records` valid records found.
    fn wal_replay(&self, records: u64, nanos: u64) {
        let _ = (records, nanos);
    }
    /// The WAL was compacted after a checkpoint fold.
    fn wal_compaction(&self) {}
    /// A checkpoint committed, folding `pages_folded` rewritten pages.
    fn checkpoint(&self, pages_folded: u64, nanos: u64) {
        let _ = (pages_folded, nanos);
    }
    /// One scrub step finished: `scanned` pages CRC-verified against disk,
    /// `corrupt_records` record chains found holding at least one corrupt
    /// page.
    fn scrub(&self, scanned: u64, corrupt_records: u64) {
        let _ = (scanned, corrupt_records);
    }
    /// The scrubber quarantined `pages` corrupt pages belonging to record
    /// `id` (`SCRUB_DIRECTORY` for the directory chain itself).
    fn scrub_corrupt(&self, id: u64, pages: u64) {
        let _ = (id, pages);
    }
}

struct Noop;
impl StoreObserver for Noop {}

static OBSERVER: OnceLock<&'static dyn StoreObserver> = OnceLock::new();

/// Installs the process-wide observer. First caller wins; later calls
/// return `false` and change nothing (so layered runtimes can install
/// idempotently from every store constructor).
pub fn set_observer(observer: &'static dyn StoreObserver) -> bool {
    OBSERVER.set(observer).is_ok()
}

/// The installed observer, or a no-op if none was installed.
pub(crate) fn obs() -> &'static dyn StoreObserver {
    static NOOP: Noop = Noop;
    match OBSERVER.get() {
        Some(o) => *o,
        None => &NOOP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingObserver {
        hits: AtomicU64,
    }

    impl StoreObserver for CountingObserver {
        fn pool_hit(&self) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn unset_observer_is_noop_and_first_install_wins() {
        // Before any install, hooks dispatch to the no-op.
        obs().pool_hit();
        obs().checkpoint(3, 125);

        static FIRST: CountingObserver = CountingObserver {
            hits: AtomicU64::new(0),
        };
        static SECOND: CountingObserver = CountingObserver {
            hits: AtomicU64::new(0),
        };
        let first_won = set_observer(&FIRST);
        // Whatever won (another test may have installed first within this
        // process), the second install must be refused.
        assert!(!set_observer(&SECOND));
        obs().pool_hit();
        if first_won {
            assert_eq!(FIRST.hits.load(Ordering::Relaxed), 1);
            assert_eq!(SECOND.hits.load(Ordering::Relaxed), 0);
        }
    }
}
