//! [`PagedStore`]: opaque records over pages, plus WAL and checkpointing.
//!
//! A store lives in its own directory holding two files:
//!
//! ```text
//! data.exqp   page file (superblocks + data pages, CRC each)
//! log.wal     write-ahead log
//! ```
//!
//! Records are variable-length byte strings keyed by `u64` ids, chunked
//! across pages; the **directory** (id → length + page chain) is itself
//! stored in pages referenced by the superblock. Reads pin pages through
//! the buffer pool.
//!
//! ## Checkpoint protocol (copy-on-write)
//!
//! 1. Write dirty records and the new directory into **free** pages only —
//!    pages not referenced by the current durable superblock — extending
//!    the file as needed. The old state remains fully intact.
//! 2. `fsync` the page file.
//! 3. Write the new superblock (version+1, the folded `wal_seq`) into the
//!    *alternate* slot and `fsync`. This single page flip is the commit
//!    point: a kill before it recovers to the old state plus the log; a
//!    kill after it recovers to the new state.
//! 4. Compact the WAL, dropping records with `seq ≤ wal_seq`. A kill
//!    between 3 and 4 is harmless — replay skips records the superblock
//!    already covers.
//!
//! ## Reads do not wait on checkpoints
//!
//! The writer state (page file write handle, superblock, slot) lives behind
//! one mutex that a checkpoint holds for its whole fold; the *published*
//! record directory lives behind a separate short-lived mutex, and reads go
//! through a dedicated read-only file handle. Because a checkpoint only
//! ever writes **free** pages — never a page the published directory
//! references — a read that snapshotted the directory stays consistent for
//! as long as no new directory is published. Each publish bumps an epoch
//! counter; a read that observes the epoch changing retries (publishes are
//! instants, so at most once in practice), and after a few raced retries it
//! falls back to the writer lock, which excludes checkpoints entirely.

use crate::page::{self, PageFile, Superblock};
use crate::pool::{BufferPool, PoolStats};
use crate::vfs::{os_vfs, OpenMode, Vfs};
use crate::wal::{Wal, WalRecord, WalReplay};
use crate::{StoreError, DEFAULT_PAGE_SIZE};
use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning: a panicking holder (a failed
/// checkpoint on the background thread, say) must degrade the store, not
/// wedge every later caller behind a `PoisonError`. The store's invariants
/// are structured so any interrupted writer leaves recoverable state (the
/// copy-on-write protocol never touches published pages).
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

const DATA_FILE: &str = "data.exqp";
const WAL_FILE: &str = "log.wal";

/// Tuning knobs for opening/creating a store.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Page size for a *new* store; existing stores keep the size they
    /// were created with.
    pub page_size: usize,
    /// Buffer-pool budget in bytes.
    pub cache_bytes: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            page_size: DEFAULT_PAGE_SIZE,
            cache_bytes: 64 << 20,
        }
    }
}

/// Point-in-time on-disk / in-memory footprint of a store.
#[derive(Debug, Clone, Copy)]
pub struct StoreFootprint {
    /// Page file + WAL bytes on disk.
    pub disk_bytes: u64,
    /// Pages allocated in the page file (superblocks included).
    pub page_count: u64,
    /// Pages currently resident in the buffer pool.
    pub resident_pages: u64,
    /// Buffer-pool frame capacity.
    pub capacity_pages: u64,
    /// Records currently in the WAL awaiting checkpoint.
    pub wal_depth: u64,
    /// WAL file size in bytes.
    pub wal_bytes: u64,
    /// Pages the scrubber has quarantined (never reused for allocation).
    pub quarantined_pages: u64,
}

/// Test-only crash injection points inside [`PagedStore::checkpoint`].
pub mod crash {
    /// No injected crash (default).
    pub const NONE: u8 = 0;
    /// Fail after writing data/directory pages, before the fsync.
    pub const BEFORE_DATA_SYNC: u8 = 1;
    /// Fail after the data fsync, before the superblock flip.
    pub const BEFORE_FLIP: u8 = 2;
    /// Fail after the superblock flip, before WAL compaction.
    pub const BEFORE_COMPACT: u8 = 3;
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RecordLoc {
    len: u64,
    pages: Vec<u32>,
}

/// Pseudo record id the scrubber reports when a *directory* page — not a
/// record's data page — fails its CRC. Repair is a forced directory
/// rewrite rather than a record rebuild.
pub const SCRUB_DIRECTORY: u64 = u64::MAX;

/// One corrupt record surfaced by [`PagedStore::scrub_step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptRecord {
    /// Record id (or [`SCRUB_DIRECTORY`]).
    pub id: u64,
    /// The pages of its chain that failed their CRC (now quarantined).
    pub pages: Vec<u32>,
}

/// What one bounded scrub step covered and found.
#[derive(Debug, Default)]
pub struct ScrubReport {
    /// Pages whose CRC was verified this step.
    pub scanned_pages: u64,
    /// Records with at least one corrupt page, quarantined and awaiting
    /// repair by the layer above.
    pub corrupt: Vec<CorruptRecord>,
    /// True when this step finished a full pass over the store.
    pub completed_pass: bool,
}

/// The writer side of the store: held for the whole of a checkpoint, never
/// touched by reads.
#[derive(Debug)]
struct Inner {
    file: PageFile,
    superblock: Superblock,
    slot: usize,
}

/// The paged store. Internally synchronized; share via `Arc`.
#[derive(Debug)]
pub struct PagedStore {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    inner: Mutex<Inner>,
    /// The published record directory (BTreeMap so directory encoding —
    /// and thus checkpoint output — is deterministic). Locked only for
    /// lookups and the post-checkpoint swap, never across I/O.
    published: Mutex<BTreeMap<u64, RecordLoc>>,
    /// Bumped on every directory publish; reads validate against it.
    dir_epoch: AtomicU64,
    /// Read-only page file handle serving [`get`](Self::get) misses.
    reader: Mutex<PageFile>,
    wal: Mutex<Wal>,
    pool: BufferPool,
    crash_at: AtomicU8,
    /// Pages whose CRC failed a scrub: suspected bad media, excluded from
    /// allocation for the store's lifetime (cleared by a reopen).
    quarantined: Mutex<HashSet<u32>>,
    /// Next record id a scrub step starts from (0 = start of a pass,
    /// which also verifies the directory chain).
    scrub_cursor: Mutex<u64>,
}

impl PagedStore {
    /// Creates a fresh, empty store in `dir` on the real filesystem.
    pub fn create(dir: &Path, opts: StoreOptions) -> Result<PagedStore, StoreError> {
        Self::create_with(os_vfs(), dir, opts)
    }

    /// Creates a fresh, empty store in `dir` over the given [`Vfs`]
    /// (created if absent; existing store files are truncated).
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        opts: StoreOptions,
    ) -> Result<PagedStore, StoreError> {
        vfs.create_dir_all(dir)?;
        let data_path = dir.join(DATA_FILE);
        let mut file = PageFile::create(&*vfs, &data_path, opts.page_size)?;
        let sb = Superblock {
            version: 1,
            page_size: opts.page_size as u64,
            wal_seq: 0,
            dir_len: 0,
            dir_pages: vec![],
        };
        file.write_superblock(&sb, 1)?; // lands in slot 0
        let reader = PageFile::open_read(&*vfs, &data_path, opts.page_size)?;
        let wal = Wal::create(Arc::clone(&vfs), &dir.join(WAL_FILE), 1)?;
        Ok(PagedStore {
            dir: dir.to_path_buf(),
            vfs,
            inner: Mutex::new(Inner {
                file,
                superblock: sb,
                slot: 0,
            }),
            published: Mutex::new(BTreeMap::new()),
            dir_epoch: AtomicU64::new(0),
            reader: Mutex::new(reader),
            wal: Mutex::new(wal),
            pool: BufferPool::with_budget(opts.cache_bytes, opts.page_size),
            crash_at: AtomicU8::new(crash::NONE),
            quarantined: Mutex::new(HashSet::new()),
            scrub_cursor: Mutex::new(0),
        })
    }

    /// True if `dir` looks like a paged store (has a page file).
    pub fn exists(dir: &Path) -> bool {
        dir.join(DATA_FILE).is_file()
    }

    /// [`exists`](Self::exists) over an arbitrary [`Vfs`].
    pub fn exists_in(vfs: &dyn Vfs, dir: &Path) -> bool {
        vfs.exists(&dir.join(DATA_FILE))
    }

    /// Opens an existing store on the real filesystem.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<(PagedStore, WalReplay), StoreError> {
        Self::open_with(os_vfs(), dir, opts)
    }

    /// Opens an existing store, recovering the newest durable superblock
    /// and scanning the WAL. Returns the store plus the log records **not
    /// yet folded into the checkpoint** (`seq > superblock.wal_seq`) for
    /// the logical layer to replay.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        opts: StoreOptions,
    ) -> Result<(PagedStore, WalReplay), StoreError> {
        let data_path = dir.join(DATA_FILE);
        let page_size = Self::detect_page_size(&*vfs, &data_path, opts.page_size)?;
        let mut file = PageFile::open(&*vfs, &data_path, page_size)?;
        let (superblock, slot) = file.read_superblock()?;
        let directory = Self::load_directory(&mut file, &superblock)?;
        let reader = PageFile::open_read(&*vfs, &data_path, page_size)?;
        // The compacted log alone no longer remembers how far the sequence
        // advanced; floor it past everything the checkpoint covers so new
        // appends never reuse a folded sequence number.
        let (wal, mut replay) = Wal::open(
            Arc::clone(&vfs),
            &dir.join(WAL_FILE),
            superblock.wal_seq + 1,
        )?;
        // Records the checkpoint already folded in must not replay twice.
        replay.records.retain(|r| r.seq > superblock.wal_seq);
        Ok((
            PagedStore {
                dir: dir.to_path_buf(),
                vfs,
                inner: Mutex::new(Inner {
                    file,
                    superblock,
                    slot,
                }),
                published: Mutex::new(directory),
                dir_epoch: AtomicU64::new(0),
                reader: Mutex::new(reader),
                wal: Mutex::new(wal),
                pool: BufferPool::with_budget(opts.cache_bytes, page_size),
                crash_at: AtomicU8::new(crash::NONE),
                quarantined: Mutex::new(HashSet::new()),
                scrub_cursor: Mutex::new(0),
            },
            replay,
        ))
    }

    /// Recovers the page size from the file via [`page::probe_page_size`]:
    /// a CRC-validated superblock in either slot names it, even when the
    /// other slot is torn mid-flip. Only when both slots fail does the
    /// caller's hint stand in (and the real superblock read then reports
    /// the corruption properly).
    fn detect_page_size(vfs: &dyn Vfs, path: &Path, hint: usize) -> Result<usize, StoreError> {
        let mut f = vfs.open(path, OpenMode::Read)?;
        let len = f.len()?;
        let head_len = len.min(2 * page::MAX_PAGE_SIZE as u64) as usize;
        let mut head = vec![0u8; head_len];
        f.read_exact_at(0, &mut head)?;
        Ok(page::probe_page_size(&head, len).unwrap_or(hint))
    }

    fn load_directory(
        file: &mut PageFile,
        sb: &Superblock,
    ) -> Result<BTreeMap<u64, RecordLoc>, StoreError> {
        let mut raw = Vec::with_capacity(sb.dir_len as usize);
        for &p in &sb.dir_pages {
            raw.extend_from_slice(&file.read_page(p)?);
        }
        if raw.len() < sb.dir_len as usize {
            return Err(StoreError::Corrupt(format!(
                "directory pages hold {} bytes, superblock says {}",
                raw.len(),
                sb.dir_len
            )));
        }
        raw.truncate(sb.dir_len as usize);
        Self::decode_directory(&raw)
    }

    fn encode_directory(dir: &BTreeMap<u64, RecordLoc>) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(dir.len() as u64).to_le_bytes());
        for (id, loc) in dir {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&loc.len.to_le_bytes());
            out.extend_from_slice(&(loc.pages.len() as u32).to_le_bytes());
            for &p in &loc.pages {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }
        out
    }

    fn decode_directory(raw: &[u8]) -> Result<BTreeMap<u64, RecordLoc>, StoreError> {
        let err = |m: &str| StoreError::Corrupt(format!("directory: {m}"));
        if raw.len() < 8 {
            return Err(err("truncated header"));
        }
        let count = u64::from_le_bytes(raw[0..8].try_into().unwrap());
        let mut pos = 8usize;
        let mut dir = BTreeMap::new();
        for _ in 0..count {
            if raw.len() - pos < 20 {
                return Err(err("truncated entry"));
            }
            let id = u64::from_le_bytes(raw[pos..pos + 8].try_into().unwrap());
            let len = u64::from_le_bytes(raw[pos + 8..pos + 16].try_into().unwrap());
            let n = u32::from_le_bytes(raw[pos + 16..pos + 20].try_into().unwrap()) as usize;
            pos += 20;
            if raw.len() - pos < 4 * n {
                return Err(err("truncated page chain"));
            }
            let pages = (0..n)
                .map(|i| u32::from_le_bytes(raw[pos + 4 * i..pos + 4 * i + 4].try_into().unwrap()))
                .collect();
            pos += 4 * n;
            dir.insert(id, RecordLoc { len, pages });
        }
        if pos != raw.len() {
            return Err(err("trailing bytes"));
        }
        Ok(dir)
    }

    /// Directory path this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of records in the directory.
    pub fn record_count(&self) -> usize {
        locked(&self.published).len()
    }

    /// Whether the directory holds a record with this id.
    pub fn contains(&self, id: u64) -> bool {
        locked(&self.published).contains_key(&id)
    }

    /// All record ids, ascending.
    pub fn record_ids(&self) -> Vec<u64> {
        locked(&self.published).keys().copied().collect()
    }

    /// Reads one record, pinning its pages through the buffer pool. Never
    /// waits on a running checkpoint: the directory lookup is a short
    /// critical section and page misses go through the read-only handle.
    pub fn get(&self, id: u64) -> Result<Vec<u8>, StoreError> {
        // A checkpoint publishing mid-read invalidates the directory
        // snapshot this read used; retry (at most once in practice — a
        // publish is an instant, not the checkpoint's whole duration).
        for _ in 0..8 {
            if let Some(out) = self.try_get(id)? {
                return Ok(out);
            }
            crate::obs::obs().epoch_retry();
        }
        // Pathological publish rate: the writer lock excludes checkpoints,
        // so under it the snapshot cannot be invalidated.
        let _writer = locked(&self.inner);
        self.try_get(id)?.ok_or_else(|| {
            StoreError::Corrupt(format!(
                "record {id:#x}: directory epoch changed under the writer lock"
            ))
        })
    }

    /// One read attempt against the current directory epoch. `Ok(None)`
    /// means a checkpoint published mid-read and the caller should retry.
    fn try_get(&self, id: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let (epoch, loc) = {
            let dir = locked(&self.published);
            // Reading the epoch under the directory lock pairs it with the
            // publish (which bumps the epoch under the same lock).
            let epoch = self.dir_epoch.load(Ordering::SeqCst);
            let loc = dir.get(&id).cloned();
            (epoch, loc)
        };
        // Present-or-absent was decided at one consistent instant, so a
        // miss needs no retry.
        let loc = loc.ok_or(StoreError::MissingRecord(id))?;
        let mut out = Vec::with_capacity(loc.len as usize);
        for &p in &loc.pages {
            let pin = match self.pool.get(p) {
                Some(pin) => pin,
                None => {
                    // The stamp is captured before the disk read: if an
                    // invalidation (checkpoint rewriting pages) races the
                    // read, insert_if refuses to cache possibly-stale bytes.
                    let stamp = self.pool.stamp();
                    let fault_started = std::time::Instant::now();
                    let payload = { locked(&self.reader).read_page(p) };
                    crate::obs::obs().page_fault(fault_started.elapsed().as_nanos() as u64);
                    match payload {
                        Ok(payload) => self.pool.insert_if(stamp, p, payload),
                        Err(e) => {
                            // A failed page read is only trustworthy if no
                            // checkpoint published since the lookup —
                            // otherwise the chain may simply be stale.
                            if self.dir_epoch.load(Ordering::SeqCst) != epoch {
                                return Ok(None);
                            }
                            return Err(e);
                        }
                    }
                }
            };
            out.extend_from_slice(&pin);
        }
        if self.dir_epoch.load(Ordering::SeqCst) != epoch {
            return Ok(None);
        }
        if out.len() != loc.len as usize {
            return Err(StoreError::Corrupt(format!(
                "record {id:#x}: page chain holds {} bytes, directory says {}",
                out.len(),
                loc.len
            )));
        }
        Ok(Some(out))
    }

    /// Appends a logical record to the WAL and fsyncs. `Ok(seq)` means the
    /// mutation is committed.
    pub fn append_wal(&self, kind: u8, payload: &[u8]) -> Result<u64, StoreError> {
        locked(&self.wal).append(kind, payload)
    }

    /// Highest WAL sequence folded into the durable checkpoint.
    pub fn checkpointed_seq(&self) -> u64 {
        locked(&self.inner).superblock.wal_seq
    }

    /// Sequence number the next WAL append will use.
    pub fn wal_next_seq(&self) -> u64 {
        locked(&self.wal).next_seq()
    }

    /// Arms a one-shot crash injection point (see [`crash`]) for the next
    /// [`checkpoint`](Self::checkpoint) call. Test-only.
    pub fn inject_checkpoint_crash(&self, point: u8) {
        self.crash_at.store(point, Ordering::SeqCst);
    }

    fn crash_if(&self, point: u8) -> Result<(), StoreError> {
        if self.crash_at.load(Ordering::SeqCst) == point {
            self.crash_at.store(crash::NONE, Ordering::SeqCst);
            return Err(StoreError::InjectedCrash);
        }
        Ok(())
    }

    /// Folds dirty records into the page file (copy-on-write) and declares
    /// every WAL record with `seq ≤ wal_seq` durable, then compacts the
    /// log. `None` content removes the record. Returns the number of pages
    /// written ("folded") by this checkpoint — data and directory pages —
    /// so the layer above can account checkpoint I/O per database.
    pub fn checkpoint(
        &self,
        dirty: &[(u64, Option<Vec<u8>>)],
        wal_seq: u64,
    ) -> Result<u64, StoreError> {
        self.checkpoint_impl(dirty, wal_seq, false)
    }

    /// Rewrites the given records (and, always, the directory) through the
    /// ordinary copy-on-write fold without advancing the folded WAL
    /// sequence: the scrubber's repair primitive. Because the fold only
    /// writes free, non-quarantined pages, the rebuilt records land on
    /// fresh media and the corrupt pages become unreferenced.
    pub fn rewrite_records(&self, dirty: &[(u64, Option<Vec<u8>>)]) -> Result<u64, StoreError> {
        let seq = self.checkpointed_seq();
        self.checkpoint_impl(dirty, seq, true)
    }

    fn checkpoint_impl(
        &self,
        dirty: &[(u64, Option<Vec<u8>>)],
        wal_seq: u64,
        force: bool,
    ) -> Result<u64, StoreError> {
        let fold_started = std::time::Instant::now();
        let mut inner = locked(&self.inner);
        if !force && dirty.is_empty() && wal_seq <= inner.superblock.wal_seq {
            return Ok(0);
        }
        let cur_dir = locked(&self.published).clone();
        // Pages the current durable state references: never overwrite them.
        // (This is also what keeps in-flight reads safe without a lock —
        // they only ever touch pages the published directory references.)
        let mut referenced: HashSet<u32> = [0u32, 1].into_iter().collect();
        for loc in cur_dir.values() {
            referenced.extend(loc.pages.iter().copied());
        }
        referenced.extend(inner.superblock.dir_pages.iter().copied());

        let quarantined = locked(&self.quarantined).clone();
        let total = inner.file.pages();
        let mut free: Vec<u32> = (2..total)
            .filter(|p| !referenced.contains(p) && !quarantined.contains(p))
            .collect();
        free.reverse(); // pop() yields the lowest ids first
        let mut next_new = total;
        let mut alloc = move || -> u32 {
            if let Some(p) = free.pop() {
                p
            } else {
                let p = next_new;
                next_new += 1;
                p
            }
        };

        let capacity = inner.file.payload_capacity();
        let mut new_dir = cur_dir;
        let mut written: Vec<u32> = Vec::new();
        for (id, content) in dirty {
            match content {
                None => {
                    new_dir.remove(id);
                }
                Some(bytes) => {
                    let mut pages = Vec::with_capacity(bytes.len() / capacity + 1);
                    let mut chunks: Vec<&[u8]> = bytes.chunks(capacity).collect();
                    if chunks.is_empty() {
                        chunks.push(&[]);
                    }
                    for chunk in chunks {
                        let p = alloc();
                        inner.file.write_page(p, chunk)?;
                        pages.push(p);
                        written.push(p);
                    }
                    new_dir.insert(
                        *id,
                        RecordLoc {
                            len: bytes.len() as u64,
                            pages,
                        },
                    );
                }
            }
        }

        let encoded = Self::encode_directory(&new_dir);
        let mut dir_pages = Vec::new();
        let mut dir_chunks: Vec<&[u8]> = encoded.chunks(capacity).collect();
        if dir_chunks.is_empty() {
            dir_chunks.push(&[]);
        }
        for chunk in dir_chunks {
            let p = alloc();
            inner.file.write_page(p, chunk)?;
            dir_pages.push(p);
            written.push(p);
        }

        self.crash_if(crash::BEFORE_DATA_SYNC)?;
        inner.file.sync()?;
        self.crash_if(crash::BEFORE_FLIP)?;

        let sb = Superblock {
            version: inner.superblock.version + 1,
            page_size: inner.superblock.page_size,
            wal_seq: wal_seq.max(inner.superblock.wal_seq),
            dir_len: encoded.len() as u64,
            dir_pages,
        };
        let slot = inner.slot;
        inner.file.write_superblock(&sb, slot)?;
        inner.slot = (slot + 1) % 2;
        inner.superblock = sb;
        // Freshly written pages may shadow stale frames cached from an
        // earlier epoch (free-page reuse): drop them *before* publishing
        // the new directory, so no reader can reach them through it.
        self.pool.invalidate(&written);
        {
            let mut dir = locked(&self.published);
            *dir = new_dir;
            self.dir_epoch.fetch_add(1, Ordering::SeqCst);
        }
        drop(inner);

        self.crash_if(crash::BEFORE_COMPACT)?;
        locked(&self.wal).compact(wal_seq)?;
        let folded = written.len() as u64;
        crate::obs::obs().checkpoint(folded, fold_started.elapsed().as_nanos() as u64);
        Ok(folded)
    }

    /// Verifies the CRCs of up to `max_pages` referenced pages against the
    /// *disk* image (the buffer pool is deliberately bypassed — a cached
    /// frame can mask rotted media indefinitely). Corrupt pages are
    /// quarantined (excluded from future allocation), dropped from the
    /// pool, and reported per owning record for the layer above to
    /// rebuild via [`rewrite_records`](Self::rewrite_records).
    ///
    /// Each call is one bounded step of a cyclic pass: the cursor persists
    /// across calls, so a background thread can spread a full-store scan
    /// over many idle ticks. Runs under the writer lock (excluding
    /// checkpoints) so the directory cannot shift mid-scan; reads stay
    /// unaffected.
    pub fn scrub_step(&self, max_pages: usize) -> Result<ScrubReport, StoreError> {
        let mut inner = locked(&self.inner);
        let mut cursor = locked(&self.scrub_cursor);
        let mut report = ScrubReport::default();
        let mut budget = max_pages;

        let mut verify_chain =
            |inner: &mut Inner, id: u64, pages: &[u32], budget: &mut usize| -> Vec<u32> {
                let mut bad = Vec::new();
                for &p in pages {
                    if *budget == 0 {
                        break;
                    }
                    *budget -= 1;
                    report.scanned_pages += 1;
                    match inner.file.read_page(p) {
                        Ok(_) => {}
                        Err(StoreError::Corrupt(_)) => bad.push(p),
                        // A read error is not a corruption verdict; the
                        // page stays unverified and the next pass retries.
                        Err(_) => {}
                    }
                }
                if !bad.is_empty() {
                    crate::obs::obs().scrub_corrupt(id, bad.len() as u64);
                }
                bad
            };

        // A pass opens with the directory chain itself.
        if *cursor == 0 && budget > 0 {
            let dir_pages = inner.superblock.dir_pages.clone();
            let bad = verify_chain(&mut inner, SCRUB_DIRECTORY, &dir_pages, &mut budget);
            if !bad.is_empty() {
                locked(&self.quarantined).extend(bad.iter().copied());
                report.corrupt.push(CorruptRecord {
                    id: SCRUB_DIRECTORY,
                    pages: bad,
                });
            }
        }

        let chains: Vec<(u64, Vec<u32>)> = locked(&self.published)
            .range(*cursor..)
            .map(|(id, loc)| (*id, loc.pages.clone()))
            .collect();
        let mut exhausted = true;
        for (id, pages) in chains {
            if budget < pages.len() {
                // Records are the scrub unit: partial-chain verdicts would
                // double-count pages across steps. Resume here next tick.
                *cursor = id;
                exhausted = false;
                break;
            }
            let bad = verify_chain(&mut inner, id, &pages, &mut budget);
            if !bad.is_empty() {
                locked(&self.quarantined).extend(bad.iter().copied());
                // Deliberately do NOT drop the pool frames of quarantined
                // pages: a cached frame passed its CRC when it was read, so
                // it is the last good copy of rotted media — both the bytes
                // readers keep being served and the source
                // [`salvage_record`] re-seals the record from. Quarantine
                // only stops the *page slot* from being reallocated; the
                // frame dies naturally when the repaired record's new pages
                // shadow it or the clock evicts it.
                report.corrupt.push(CorruptRecord { id, pages: bad });
            }
        }
        if exhausted {
            *cursor = 0;
            report.completed_pass = true;
        }
        crate::obs::obs().scrub(report.scanned_pages, report.corrupt.len() as u64);
        Ok(report)
    }

    /// Best-effort recovery of a record whose disk image is corrupt:
    /// assembles the chain from buffer-pool frames (CRC-verified when they
    /// were loaded) where the disk page fails, falling back to disk for
    /// the healthy pages. `None` when any page is unobtainable from either
    /// source.
    pub fn salvage_record(&self, id: u64) -> Option<Vec<u8>> {
        let loc = locked(&self.published).get(&id).cloned()?;
        let mut inner = locked(&self.inner);
        let mut out = Vec::with_capacity(loc.len as usize);
        for &p in &loc.pages {
            if let Some(pin) = self.pool.get(p) {
                out.extend_from_slice(&pin);
            } else if let Ok(bytes) = inner.file.read_page(p) {
                out.extend_from_slice(&bytes);
            } else {
                return None;
            }
        }
        (out.len() == loc.len as usize).then_some(out)
    }

    /// Every decodable record currently in the WAL file (folded or not):
    /// the scrubber's other repair source, for records whose insert is
    /// still in the log tail.
    pub fn wal_records(&self) -> Result<Vec<WalRecord>, StoreError> {
        locked(&self.wal).records()
    }

    /// fsyncs the WAL and page file without writing anything: degraded
    /// mode's "is storage answering again?" recovery probe.
    pub fn probe_sync(&self) -> Result<(), StoreError> {
        locked(&self.wal).probe_sync()?;
        locked(&self.inner).file.sync()
    }

    /// Pages currently quarantined by the scrubber.
    pub fn quarantined_pages(&self) -> u64 {
        locked(&self.quarantined).len() as u64
    }

    /// The [`Vfs`] this store was opened against.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        Arc::clone(&self.vfs)
    }

    /// The on-disk page chain currently published for `id` (repair tooling
    /// uses this to correlate scrub reports with records).
    pub fn record_pages(&self, id: u64) -> Option<Vec<u32>> {
        locked(&self.published).get(&id).map(|l| l.pages.clone())
    }

    /// Buffer-pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// On-disk and residency footprint.
    pub fn footprint(&self) -> StoreFootprint {
        let inner = locked(&self.inner);
        let (page_bytes, pages) = (inner.file.disk_bytes(), inner.file.pages());
        drop(inner);
        let wal = locked(&self.wal);
        let (wal_bytes, wal_depth) = (wal.bytes(), wal.depth());
        drop(wal);
        let pool = self.pool.stats();
        StoreFootprint {
            disk_bytes: page_bytes + wal_bytes,
            page_count: pages as u64,
            resident_pages: pool.resident_pages,
            capacity_pages: pool.capacity_pages,
            wal_depth,
            wal_bytes,
            quarantined_pages: self.quarantined_pages(),
        }
    }
}

/// A read-only snapshot view of a store directory, for inspection and
/// reporting tools (`exq db list`). Opens **nothing** for writing: the WAL
/// is scanned via [`Wal::replay`] — no torn-tail truncation, no compaction
/// — and pages go through a read-only handle, so it is safe to run against
/// a store a live server currently owns. The view is the last durable
/// checkpoint; [`StoreReader::wal_depth`] reports how many committed
/// mutations are still pending on top of it.
#[derive(Debug)]
pub struct StoreReader {
    file: PageFile,
    superblock: Superblock,
    directory: BTreeMap<u64, RecordLoc>,
    wal_depth: u64,
    wal_bytes: u64,
}

impl StoreReader {
    /// Opens a read-only view of the store in `dir`. `page_size_hint` is
    /// only consulted when both superblock slots fail to name the size.
    pub fn open(dir: &Path, page_size_hint: usize) -> Result<StoreReader, StoreError> {
        Self::open_with(os_vfs(), dir, page_size_hint)
    }

    /// [`open`](Self::open) against an explicit [`Vfs`].
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        page_size_hint: usize,
    ) -> Result<StoreReader, StoreError> {
        let data_path = dir.join(DATA_FILE);
        let page_size = PagedStore::detect_page_size(&*vfs, &data_path, page_size_hint)?;
        let mut file = PageFile::open_read(&*vfs, &data_path, page_size)?;
        let (superblock, _slot) = file.read_superblock()?;
        let directory = PagedStore::load_directory(&mut file, &superblock)?;
        let wal_path = dir.join(WAL_FILE);
        let replay = Wal::replay_with(&*vfs, &wal_path)?;
        let wal_depth = replay
            .records
            .iter()
            .filter(|r| r.seq > superblock.wal_seq)
            .count() as u64;
        let wal_bytes = vfs.open(&wal_path, OpenMode::Read)?.len()?;
        Ok(StoreReader {
            file,
            superblock,
            directory,
            wal_depth,
            wal_bytes,
        })
    }

    /// Reads one record as of the last durable checkpoint.
    pub fn get(&mut self, id: u64) -> Result<Vec<u8>, StoreError> {
        let loc = self
            .directory
            .get(&id)
            .cloned()
            .ok_or(StoreError::MissingRecord(id))?;
        let mut out = Vec::with_capacity(loc.len as usize);
        for &p in &loc.pages {
            out.extend_from_slice(&self.file.read_page(p)?);
        }
        if out.len() != loc.len as usize {
            return Err(StoreError::Corrupt(format!(
                "record {id:#x}: page chain holds {} bytes, directory says {}",
                out.len(),
                loc.len
            )));
        }
        Ok(out)
    }

    /// Number of records in the checkpointed directory.
    pub fn record_count(&self) -> usize {
        self.directory.len()
    }

    /// Whether the checkpointed directory holds a record with this id.
    pub fn contains(&self, id: u64) -> bool {
        self.directory.contains_key(&id)
    }

    /// The durable superblock this view reflects.
    pub fn superblock(&self) -> &Superblock {
        &self.superblock
    }

    /// Committed WAL records not yet folded into the checkpoint.
    pub fn wal_depth(&self) -> u64 {
        self.wal_depth
    }

    /// On-disk footprint. There is no buffer pool behind a reader, so the
    /// residency fields are zero.
    pub fn footprint(&self) -> StoreFootprint {
        StoreFootprint {
            disk_bytes: self.file.disk_bytes() + self.wal_bytes,
            page_count: self.file.pages() as u64,
            resident_pages: 0,
            capacity_pages: 0,
            wal_depth: self.wal_depth,
            wal_bytes: self.wal_bytes,
            quarantined_pages: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("exq-store-store-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_opts() -> StoreOptions {
        StoreOptions {
            page_size: crate::MIN_PAGE_SIZE,
            cache_bytes: 4 * crate::MIN_PAGE_SIZE, // 4 frames: constant eviction
        }
    }

    #[test]
    fn checkpoint_get_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        // Record 2 spans multiple tiny pages.
        let big: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        store
            .checkpoint(
                &[
                    (1, Some(b"small".to_vec())),
                    (2, Some(big.clone())),
                    (3, Some(vec![])),
                ],
                0,
            )
            .unwrap();
        assert_eq!(store.get(1).unwrap(), b"small");
        assert_eq!(store.get(2).unwrap(), big);
        assert_eq!(store.get(3).unwrap(), b"");
        assert!(matches!(store.get(9), Err(StoreError::MissingRecord(9))));
        drop(store);
        let (store, replay) = PagedStore::open(&dir, tiny_opts()).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(store.record_count(), 3);
        assert_eq!(store.get(2).unwrap(), big);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cow_checkpoint_reuses_free_pages_without_stale_reads() {
        let dir = tmpdir("cow");
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        let a: Vec<u8> = vec![0xAA; 500];
        let b: Vec<u8> = vec![0xBB; 500];
        store.checkpoint(&[(1, Some(a))], 0).unwrap();
        let pages_after_first = store.footprint().page_count;
        // Read to warm the pool, then rewrite the record several times:
        // free-page reuse must not grow the file unboundedly or serve
        // stale cached frames.
        for round in 0..5u8 {
            assert!(store.get(1).is_ok());
            let fresh: Vec<u8> = vec![0xB0 | round; 500];
            store.checkpoint(&[(1, Some(fresh.clone()))], 0).unwrap();
            assert_eq!(store.get(1).unwrap(), fresh, "round {round}");
        }
        let pages_final = store.footprint().page_count;
        // Old + new copies coexist transiently, so at most ~2x the single
        // copy footprint plus directory pages.
        assert!(
            pages_final <= pages_after_first * 2 + 4,
            "file grew {pages_after_first} -> {pages_final} pages"
        );
        store.checkpoint(&[(2, Some(b.clone()))], 0).unwrap();
        assert_eq!(store.get(2).unwrap(), b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_records_replay_only_once() {
        let dir = tmpdir("replay-once");
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        let s1 = store.append_wal(7, b"one").unwrap();
        let _s2 = store.append_wal(7, b"two").unwrap();
        // Checkpoint folds seq 1 only.
        store.checkpoint(&[(1, Some(b"x".to_vec()))], s1).unwrap();
        drop(store);
        let (_store, replay) = PagedStore::open(&dir, tiny_opts()).unwrap();
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2], "only the unfolded record replays");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_injection_preserves_old_state() {
        for point in [crash::BEFORE_DATA_SYNC, crash::BEFORE_FLIP] {
            let dir = tmpdir(&format!("crash-{point}"));
            let store = PagedStore::create(&dir, tiny_opts()).unwrap();
            store
                .checkpoint(&[(1, Some(b"stable".to_vec()))], 0)
                .unwrap();
            let seq = store.append_wal(9, b"pending").unwrap();
            store.inject_checkpoint_crash(point);
            let err = store
                .checkpoint(&[(1, Some(b"NEWER".to_vec()))], seq)
                .unwrap_err();
            assert!(matches!(err, StoreError::InjectedCrash));
            drop(store);
            // Reopen: old record intact, WAL record still pending replay.
            let (store, replay) = PagedStore::open(&dir, tiny_opts()).unwrap();
            assert_eq!(store.get(1).unwrap(), b"stable");
            assert_eq!(replay.records.len(), 1);
            assert_eq!(replay.records[0].payload, b"pending");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn crash_between_flip_and_compact_skips_folded_records() {
        let dir = tmpdir("crash-compact");
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        let seq = store.append_wal(9, b"folded").unwrap();
        store.inject_checkpoint_crash(crash::BEFORE_COMPACT);
        let err = store
            .checkpoint(&[(1, Some(b"new".to_vec()))], seq)
            .unwrap_err();
        assert!(matches!(err, StoreError::InjectedCrash));
        drop(store);
        // The flip landed, so the new state is durable and the stale WAL
        // record must NOT replay again.
        let (store, replay) = PagedStore::open(&dir, tiny_opts()).unwrap();
        assert_eq!(store.get(1).unwrap(), b"new");
        assert!(replay.records.is_empty());
        assert_eq!(store.checkpointed_seq(), seq);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_seq_stays_monotone_across_compaction_and_reopen() {
        let dir = tmpdir("seq-floor");
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        store.append_wal(1, b"one").unwrap();
        let s2 = store.append_wal(1, b"two").unwrap();
        // Fold both records: the WAL compacts to empty.
        store.checkpoint(&[(1, Some(b"x".to_vec()))], s2).unwrap();
        drop(store);
        // Reopen the now-empty log: the next sequence must start past the
        // superblock's wal_seq, not back at 1.
        let (store, replay) = PagedStore::open(&dir, tiny_opts()).unwrap();
        assert!(replay.records.is_empty());
        let s3 = store.append_wal(1, b"after-reopen").unwrap();
        assert!(s3 > s2, "seq {s3} must exceed folded seq {s2}");
        drop(store);
        // The fsync-acknowledged mutation must survive the next recovery
        // instead of being retained away as already-folded.
        let (store, replay) = PagedStore::open(&dir, tiny_opts()).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].payload, b"after-reopen");
        assert_eq!(replay.records[0].seq, s3);
        assert_eq!(store.checkpointed_seq(), s2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_recovers_page_size_from_slot1_when_slot0_is_torn() {
        let dir = tmpdir("torn-slot0");
        // Non-default page size: a hint-based fallback cannot guess it.
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        store
            .checkpoint(&[(1, Some(b"survivor".to_vec()))], 0)
            .unwrap(); // newest superblock lands in slot 1
        drop(store);
        // Tear slot 0, as a crash mid-flip targeting it would.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut raw = std::fs::OpenOptions::new()
                .write(true)
                .open(dir.join(DATA_FILE))
                .unwrap();
            raw.seek(SeekFrom::Start(0)).unwrap();
            raw.write_all(&[0xFF; 32]).unwrap();
        }
        // Open with the *default* options: the hint (8 KiB) is wrong, so
        // only probing slot 1 can recover the real size.
        let (store, replay) = PagedStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(store.get(1).unwrap(), b"survivor");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reads_stay_consistent_during_concurrent_checkpoints() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let dir = tmpdir("concurrent");
        let store = Arc::new(PagedStore::create(&dir, tiny_opts()).unwrap());
        // Multi-page record so a read spans several pool lookups.
        store.checkpoint(&[(1, Some(vec![0u8; 600]))], 0).unwrap();

        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    while !done.load(Ordering::SeqCst) {
                        let out = store.get(1).unwrap();
                        // Every published version is 600 identical bytes;
                        // anything else is a torn or stale read.
                        assert_eq!(out.len(), 600);
                        let first = out[0];
                        assert!(
                            out.iter().all(|&b| b == first),
                            "mixed-version read: {first} vs {:?}",
                            out.iter().find(|&&b| b != first)
                        );
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        // Rewrite the record 40 times; free-page reuse makes the new
        // version land on pages the previous-but-one version occupied.
        for round in 1..=40u8 {
            store.checkpoint(&[(1, Some(vec![round; 600]))], 0).unwrap();
        }
        done.store(true, Ordering::SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made no progress");
        }
        assert_eq!(store.get(1).unwrap(), vec![40u8; 600]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_reader_inspects_without_touching_the_wal() {
        let dir = tmpdir("reader");
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        let s1 = store.append_wal(1, b"folded").unwrap();
        store
            .checkpoint(&[(1, Some(b"payload".to_vec()))], s1)
            .unwrap();
        store.append_wal(1, b"pending").unwrap();
        drop(store);
        // Leave a torn tail, as a crash mid-append would.
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &full[..full.len() - 2]).unwrap();
        let torn_len = full.len() as u64 - 2;

        let mut rd = StoreReader::open(&dir, crate::MIN_PAGE_SIZE).unwrap();
        assert_eq!(rd.get(1).unwrap(), b"payload");
        assert_eq!(rd.record_count(), 1);
        assert_eq!(rd.superblock().wal_seq, s1);
        assert_eq!(rd.wal_depth(), 0, "the torn record never committed");
        let fp = rd.footprint();
        assert_eq!(fp.resident_pages, 0);
        assert!(fp.disk_bytes > 0);

        // The whole point: inspection must not have truncated the torn
        // tail (a live server may still be appending those bytes).
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            torn_len,
            "read-only inspection modified the WAL"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_removal() {
        let dir = tmpdir("removal");
        let store = PagedStore::create(&dir, tiny_opts()).unwrap();
        store
            .checkpoint(&[(1, Some(b"a".to_vec())), (2, Some(b"b".to_vec()))], 0)
            .unwrap();
        store.checkpoint(&[(1, None)], 0).unwrap();
        assert!(!store.contains(1));
        assert_eq!(store.get(2).unwrap(), b"b");
        drop(store);
        let (store, _) = PagedStore::open(&dir, tiny_opts()).unwrap();
        assert_eq!(store.record_ids(), vec![2]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
