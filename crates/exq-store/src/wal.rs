//! The write-ahead log.
//!
//! A WAL file is an 8-byte magic header followed by framed records:
//!
//! ```text
//! [len: u32] [seq: u64] [kind: u8] [payload: len bytes] [crc32: u32]
//! ```
//!
//! `crc32` covers `seq ‖ kind ‖ payload`. `seq` is strictly monotone within
//! a file. An append is *committed* when the fsync after it returns — the
//! caller acknowledges the mutation only then.
//!
//! Replay policy (the crash contract):
//!
//! * A **torn tail** — the file ends mid-record, or the final record's CRC
//!   is bad — is the expected artifact of a crash during append. Replay
//!   drops it and reports a clean recovery: that record was never
//!   acknowledged, so nothing committed is lost.
//! * A bad record **with valid data after it** cannot be a torn append —
//!   that is real corruption, reported as [`StoreError::Corrupt`] so the
//!   layer above refuses to serve garbage.

use crate::vfs::{OpenMode, OsVfs, Vfs, VfsFile};
use crate::{crc32, StoreError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const WAL_MAGIC: &[u8; 8] = b"EXQWAL1\n";
const FRAME_OVERHEAD: usize = 4 + 8 + 1 + 4;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub kind: u8,
    pub payload: Vec<u8>,
}

/// The outcome of scanning a WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// Records with valid frames, in file order.
    pub records: Vec<WalRecord>,
    /// True when a torn tail was dropped (crash during the final append).
    pub dropped_torn_tail: bool,
}

/// An append-only WAL handle. Not internally synchronized — the owner
/// wraps it in a lock and holds it across `append`.
#[derive(Debug)]
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    file: Box<dyn VfsFile>,
    next_seq: u64,
    /// Bytes of committed records in the file (magic included). This is
    /// the authoritative tail: a failed append never advances it.
    bytes: u64,
    records: u64,
    /// A failed append could not truncate its partial frame back off the
    /// file; the next append must restore the clean boundary first.
    tail_dirty: bool,
}

impl Wal {
    /// Creates an empty WAL (truncating any existing file) with the given
    /// first sequence number.
    pub fn create(vfs: Arc<dyn Vfs>, path: &Path, first_seq: u64) -> Result<Wal, StoreError> {
        let mut file = vfs.open(path, OpenMode::CreateTruncate)?;
        file.write_all_at(0, WAL_MAGIC)?;
        file.sync()?;
        Ok(Wal {
            vfs,
            path: path.to_path_buf(),
            file,
            next_seq: first_seq,
            bytes: WAL_MAGIC.len() as u64,
            records: 0,
            tail_dirty: false,
        })
    }

    /// Opens an existing WAL, scanning it fully (via [`Wal::replay`]) to
    /// find the tail, and truncating a torn tail so subsequent appends
    /// start on a clean boundary. Returns the handle and the replayable
    /// records.
    ///
    /// `first_seq` floors the next sequence number: after a checkpoint
    /// compacts the log to empty, the surviving records alone no longer
    /// remember how far the sequence advanced, so the owner passes the
    /// highest sequence its durable state covers plus one. Without the
    /// floor, appends after a reopen would reuse already-folded sequence
    /// numbers and the next recovery would silently skip them.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        path: &Path,
        first_seq: u64,
    ) -> Result<(Wal, WalReplay), StoreError> {
        let scan_started = std::time::Instant::now();
        let replay = Self::replay_with(&*vfs, path)?;
        crate::obs::obs().wal_replay(
            replay.records.len() as u64,
            scan_started.elapsed().as_nanos() as u64,
        );
        let valid_len = WAL_MAGIC.len() as u64
            + replay
                .records
                .iter()
                .map(|r| (FRAME_OVERHEAD + r.payload.len()) as u64)
                .sum::<u64>();
        let mut file = vfs.open(path, OpenMode::ReadWrite)?;
        if replay.dropped_torn_tail {
            file.set_len(valid_len)?;
            file.sync()?;
        }
        let next_seq = replay
            .records
            .last()
            .map(|r| r.seq + 1)
            .unwrap_or(1)
            .max(first_seq);
        Ok((
            Wal {
                vfs,
                path: path.to_path_buf(),
                file,
                next_seq,
                bytes: valid_len,
                records: replay.records.len() as u64,
                tail_dirty: false,
            },
            replay,
        ))
    }

    /// Scans a WAL file on the real filesystem. See
    /// [`replay_with`](Self::replay_with).
    pub fn replay(path: &Path) -> Result<WalReplay, StoreError> {
        Self::replay_with(&OsVfs, path)
    }

    /// Scans a WAL file without opening it for writing, classifying a torn
    /// tail (clean) vs. mid-file corruption (typed error).
    pub fn replay_with(vfs: &dyn Vfs, path: &Path) -> Result<WalReplay, StoreError> {
        let buf = vfs.read(path)?;
        if buf.len() < WAL_MAGIC.len() || &buf[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StoreError::Corrupt("wal: bad magic".into()));
        }
        let mut records = Vec::new();
        let mut pos = WAL_MAGIC.len();
        let mut torn_at: Option<usize> = None;
        let mut last_seq = 0u64;
        while pos < buf.len() {
            let Some(rec) = Self::decode_frame(&buf[pos..]) else {
                torn_at = Some(pos);
                break;
            };
            if rec.seq <= last_seq && !records.is_empty() {
                return Err(StoreError::Corrupt(format!(
                    "wal: sequence regressed ({} after {})",
                    rec.seq, last_seq
                )));
            }
            last_seq = rec.seq;
            pos += FRAME_OVERHEAD + rec.payload.len();
            records.push(rec);
        }
        if let Some(at) = torn_at {
            // Torn tail is fine only if nothing decodable follows. Scan
            // forward for any later frame that parses: if one does, the bad
            // bytes are mid-file corruption, not a crashed append.
            let rest = &buf[at..];
            for skip in 1..rest.len().saturating_sub(FRAME_OVERHEAD) {
                if Self::decode_frame(&rest[skip..]).is_some() {
                    return Err(StoreError::Corrupt(format!(
                        "wal: corrupt record at byte {at} with valid data after it"
                    )));
                }
            }
            return Ok(WalReplay {
                records,
                dropped_torn_tail: true,
            });
        }
        Ok(WalReplay {
            records,
            dropped_torn_tail: false,
        })
    }

    fn decode_frame(buf: &[u8]) -> Option<WalRecord> {
        if buf.len() < FRAME_OVERHEAD {
            return None;
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        if len > buf.len() - FRAME_OVERHEAD || len > 1 << 30 {
            return None;
        }
        let seq = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let kind = buf[12];
        let payload = &buf[13..13 + len];
        let stored = u32::from_le_bytes(buf[13 + len..17 + len].try_into().unwrap());
        if stored != crc32(&buf[4..13 + len]) {
            return None;
        }
        Some(WalRecord {
            seq,
            kind,
            payload: payload.to_vec(),
        })
    }

    /// Appends one record and fsyncs. When this returns `Ok`, the record is
    /// committed. Returns the record's sequence number.
    ///
    /// On `Err` the record is **not** committed and the log tail is back at
    /// the last good record: a mid-record ENOSPC or torn write truncates its
    /// partial frame immediately, and when even that truncation fails the
    /// next append restores the boundary before writing (`tail_dirty`) — so
    /// a fault mid-append never turns into "corrupt record with valid data
    /// after it" on a later replay.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<u64, StoreError> {
        if self.tail_dirty {
            self.file.set_len(self.bytes)?;
            self.tail_dirty = false;
        }
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.push(kind);
        frame.extend_from_slice(payload);
        let crc = crc32(&frame[4..]);
        frame.extend_from_slice(&crc.to_le_bytes());
        let sync_started = std::time::Instant::now();
        let wrote = self.file.write_all_at(self.bytes, &frame);
        // The fsync after a clean write is the commit point. A record that
        // was written but whose fsync failed is scrubbed back off too: the
        // caller sees an error and treats the mutation as not-committed, so
        // letting the frame survive to a later replay would resurrect a
        // mutation nobody acknowledged.
        let committed = wrote.and_then(|()| self.file.sync());
        if let Err(e) = committed {
            self.tail_dirty = self.file.set_len(self.bytes).is_err();
            return Err(e);
        }
        crate::obs::obs().wal_fsync(frame.len() as u64, sync_started.elapsed().as_nanos() as u64);
        self.next_seq = seq + 1;
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(seq)
    }

    /// Rewrites the log keeping only records with `seq > keep_after_seq`
    /// (checkpoint compaction). Crash-safe via tmp file + atomic rename.
    pub fn compact(&mut self, keep_after_seq: u64) -> Result<(), StoreError> {
        let replay = Self::replay_with(&*self.vfs, &self.path)?;
        let tmp = self.path.with_extension("wal.tmp");
        let mut out = self.vfs.open(&tmp, OpenMode::CreateTruncate)?;
        out.write_all_at(0, WAL_MAGIC)?;
        let mut bytes = WAL_MAGIC.len() as u64;
        let mut kept = 0u64;
        for rec in replay.records.iter().filter(|r| r.seq > keep_after_seq) {
            let mut frame = Vec::with_capacity(FRAME_OVERHEAD + rec.payload.len());
            frame.extend_from_slice(&(rec.payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&rec.seq.to_le_bytes());
            frame.push(rec.kind);
            frame.extend_from_slice(&rec.payload);
            let crc = crc32(&frame[4..]);
            frame.extend_from_slice(&crc.to_le_bytes());
            out.write_all_at(bytes, &frame)?;
            bytes += frame.len() as u64;
            kept += 1;
        }
        out.sync()?;
        drop(out);
        self.vfs.rename(&tmp, &self.path)?;
        let mut file = self.vfs.open(&self.path, OpenMode::ReadWrite)?;
        file.sync()?;
        self.file = file;
        self.bytes = bytes;
        self.records = kept;
        self.tail_dirty = false;
        crate::obs::obs().wal_compaction();
        Ok(())
    }

    /// Re-scans this log's current file, returning every decodable record
    /// (a torn tail is dropped, mid-file corruption is a typed error). The
    /// scrubber's repair source for recently inserted records.
    pub fn records(&self) -> Result<Vec<WalRecord>, StoreError> {
        Ok(Self::replay_with(&*self.vfs, &self.path)?.records)
    }

    /// fsync the log file without appending: the cheap "is storage
    /// answering again?" probe degraded-mode recovery uses.
    pub fn probe_sync(&mut self) -> Result<(), StoreError> {
        self.file.sync()
    }

    /// Sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current file size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records currently in the log (the WAL "depth").
    pub fn depth(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultVfs};

    fn osv() -> Arc<dyn Vfs> {
        Arc::new(OsVfs)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("exq-store-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip.wal");
        let mut wal = Wal::create(osv(), &path, 1).unwrap();
        assert_eq!(wal.append(1, b"first").unwrap(), 1);
        assert_eq!(wal.append(2, b"").unwrap(), 2);
        assert_eq!(wal.append(1, &[0xAB; 300]).unwrap(), 3);
        assert_eq!(wal.depth(), 3);
        let replay = Wal::replay(&path).unwrap();
        assert!(!replay.dropped_torn_tail);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0].payload, b"first");
        assert_eq!(replay.records[1].kind, 2);
        assert_eq!(replay.records[2].seq, 3);
    }

    #[test]
    fn torn_tail_at_every_boundary_recovers_cleanly() {
        let path = tmp("torn.wal");
        let mut wal = Wal::create(osv(), &path, 1).unwrap();
        wal.append(1, b"alpha").unwrap();
        wal.append(1, b"beta-longer-payload").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        let first_end = WAL_MAGIC.len() + FRAME_OVERHEAD + 5;
        // Truncate at every byte position inside the second record: always
        // a clean recovery preserving record 1.
        for cut in first_end..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (wal, replay) = Wal::open(osv(), &path, 1).unwrap();
            assert_eq!(replay.records.len(), 1, "cut at {cut}");
            // cut == first_end is a clean file ending exactly after
            // record 1; every other cut leaves a torn tail.
            assert!(cut == first_end || replay.dropped_torn_tail);
            assert_eq!(wal.next_seq(), 2);
        }
        // And truncation inside the FIRST record leaves an empty, usable log.
        for cut in WAL_MAGIC.len()..first_end {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (wal, replay) = Wal::open(osv(), &path, 1).unwrap();
            assert!(replay.records.is_empty(), "cut at {cut}");
            assert_eq!(wal.next_seq(), 1);
        }
    }

    #[test]
    fn append_after_torn_tail_truncation() {
        let path = tmp("truncate-then-append.wal");
        let mut wal = Wal::create(osv(), &path, 1).unwrap();
        wal.append(1, b"keep").unwrap();
        wal.append(1, b"torn").unwrap();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        let (mut wal, replay) = Wal::open(osv(), &path, 1).unwrap();
        assert!(replay.dropped_torn_tail);
        wal.append(3, b"fresh").unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].payload, b"fresh");
        assert_eq!(replay.records[1].seq, 2);
    }

    #[test]
    fn mid_file_corruption_is_typed_error() {
        let path = tmp("midfile.wal");
        let mut wal = Wal::create(osv(), &path, 1).unwrap();
        wal.append(1, b"one").unwrap();
        wal.append(1, b"two").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the FIRST record: record two still parses
        // after it, so this must be Corrupt, not a clean torn-tail drop.
        bytes[WAL_MAGIC.len() + 14] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::replay(&path), Err(StoreError::Corrupt(_))));
        assert!(matches!(
            Wal::open(osv(), &path, 1),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn enospc_mid_record_leaves_tail_at_last_good_record() {
        // Regression: a mid-record disk-full used to leave the partial
        // frame in the file with the next append written after it — which
        // replay then classified as mid-file corruption. The tail must be
        // restored to the last good record before anything new lands.
        let vfs = FaultVfs::new(0xE05);
        let path = PathBuf::from("log.wal");
        let mut wal = Wal::create(Arc::new(vfs.clone()), &path, 1).unwrap();
        wal.append(1, b"good-one").unwrap();
        let clean_len = vfs.file_bytes(&path).unwrap().len();
        // Every write now hits disk-full mid-record (a seeded prefix of
        // the frame lands first), and the truncate-back fails too — the
        // worst case, leaving a dirty tail for the *next* append to fix.
        vfs.set_config(FaultConfig {
            enospc_per_mille: 1000,
            write_err_per_mille: 1000,
            ..FaultConfig::default()
        });
        let err = wal.append(1, b"doomed-payload").unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "got: {err}");
        vfs.set_config(FaultConfig::default());
        // The failed append burned no sequence number, and the recovery
        // truncation happens before the new frame is placed.
        assert_eq!(wal.append(1, b"fresh").unwrap(), 2);
        let replay = wal.records().unwrap();
        assert_eq!(
            replay.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2],
            "partial frame must not survive between good records"
        );
        assert_eq!(replay[1].payload, b"fresh");
        assert!(vfs.file_bytes(&path).unwrap().len() > clean_len);
    }

    #[test]
    fn failed_fsync_scrubs_the_unacknowledged_record() {
        // A frame that was fully written but whose fsync failed was never
        // acknowledged; letting it replay later would resurrect a mutation
        // the caller was told failed.
        let vfs = FaultVfs::new(0xF5C);
        let path = PathBuf::from("log.wal");
        let mut wal = Wal::create(Arc::new(vfs.clone()), &path, 1).unwrap();
        wal.append(1, b"acked").unwrap();
        vfs.set_config(FaultConfig {
            sync_err_per_mille: 1000,
            ..FaultConfig::default()
        });
        assert!(wal.append(1, b"never-acked").is_err());
        vfs.set_config(FaultConfig::default());
        let replay = wal.records().unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].payload, b"acked");
        // And the log stays fully usable.
        assert_eq!(wal.append(1, b"next").unwrap(), 2);
    }

    #[test]
    fn compact_keeps_tail_and_stays_appendable() {
        let path = tmp("compact.wal");
        let mut wal = Wal::create(osv(), &path, 1).unwrap();
        for i in 0..5u8 {
            wal.append(1, &[i]).unwrap();
        }
        wal.compact(3).unwrap();
        assert_eq!(wal.depth(), 2);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(
            replay.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        wal.append(1, b"after-compact").unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.last().unwrap().seq, 6);
    }
}
