//! Property tests for the fault-injection VFS and the scrubber.
//!
//! Two guarantees the crash-torture harness leans on:
//!
//! 1. **Determinism** — a `FaultVfs` is a pure function of its seed and
//!    the operation sequence: same seed, same script → identical fault
//!    schedule (every operation succeeds or fails identically) and
//!    byte-identical volatile + durable file images. Without this, a
//!    torture failure is not replayable from its seed.
//! 2. **Scrub round-trip** — flipping a bit at *any* byte of a live page
//!    (CRC field, length field, payload) is detected by a scrub pass,
//!    the page is quarantined and never reallocated, and the record
//!    rebuilds onto fresh pages with its original bytes.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use exq_store::{
    FaultConfig, FaultVfs, OpenMode, PagedStore, StoreOptions, Vfs, MIN_PAGE_SIZE,
    PAGE_HEADER_BYTES,
};
use proptest::prelude::*;

/// Replays a small operation script against a fresh `FaultVfs`, logging
/// every outcome (success shape or error text) plus the final state
/// digest. Two runs with the same inputs must produce identical logs.
fn run_script(
    seed: u64,
    rates: (u16, u16, u16, u16, u16, u16),
    script: &[(u8, u16, u8)],
) -> (Vec<String>, u64) {
    let vfs = FaultVfs::new(seed);
    vfs.set_config(FaultConfig {
        read_err_per_mille: rates.0,
        write_err_per_mille: rates.1,
        enospc_per_mille: rates.2,
        torn_write_per_mille: rates.3,
        sync_err_per_mille: rates.4,
        lying_fsync_per_mille: rates.5,
    });
    let mut log = Vec::new();
    let path = PathBuf::from("/prop/a.bin");
    let mut file = match vfs.open(&path, OpenMode::CreateTruncate) {
        Ok(f) => f,
        Err(e) => {
            log.push(format!("open: {e}"));
            return (log, vfs.state_digest());
        }
    };
    let mut cursor = 0u64;
    for &(op, len, fill) in script {
        let entry = match op % 3 {
            0 => {
                let data = vec![fill; len as usize];
                let r = file.write_all_at(cursor, &data);
                if r.is_ok() {
                    cursor += len as u64;
                }
                format!("write {len}: {:?}", r.map_err(|e| e.to_string()))
            }
            1 => format!("sync: {:?}", file.sync().map_err(|e| e.to_string())),
            _ => {
                let flen = file.len().unwrap_or(0);
                let want = (len as u64).min(flen) as usize;
                let mut buf = vec![0u8; want];
                let r = file.read_exact_at(0, &mut buf);
                format!(
                    "read {want}: {:?} crc={}",
                    r.map_err(|e| e.to_string()),
                    exq_store::crc32(&buf)
                )
            }
        };
        log.push(entry);
    }
    (log, vfs.state_digest())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fault_vfs_is_deterministic_per_seed(
        seed in any::<u64>(),
        rates in (0u16..400, 0u16..400, 0u16..400, 0u16..400, 0u16..400, 0u16..400),
        script in proptest::collection::vec((0u8..3, 1u16..200, any::<u8>()), 1..40),
    ) {
        let (log_a, digest_a) = run_script(seed, rates, &script);
        let (log_b, digest_b) = run_script(seed, rates, &script);
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(digest_a, digest_b);
    }

    /// Different seeds must (overwhelmingly) produce different schedules
    /// once faults are possible — a constant schedule would also pass the
    /// determinism test, so pin the seed actually being consumed.
    #[test]
    fn fault_schedule_consumes_the_seed(seed in any::<u64>()) {
        let rates = (0, 500, 0, 0, 0, 0);
        let script: Vec<(u8, u16, u8)> = (0..24).map(|i| (0, 32, i as u8)).collect();
        let (log_a, _) = run_script(seed, rates, &script);
        let (log_b, _) = run_script(seed ^ 0x9E37_79B9_7F4A_7C15, rates, &script);
        let (log_a2, _) = run_script(seed, rates, &script);
        prop_assert_eq!(&log_a, &log_a2);
        // 24 draws at 50%: both runs all-same-outcome has probability ~2^-24
        // per run; a collision of full logs is effectively impossible.
        prop_assert_ne!(log_a, log_b);
    }
}

/// The quarantine/rebuild round trip, exhaustively over every byte of a
/// page: CRC header (0..4), used-length field (4..8), and a payload
/// sized to fill the page so every remaining byte is CRC-covered.
#[test]
fn scrub_quarantine_rebuild_roundtrips_every_corruption_site() {
    const ID: u64 = 7;
    let payload: Vec<u8> = (0..(MIN_PAGE_SIZE - PAGE_HEADER_BYTES))
        .map(|i| (i * 31 % 251) as u8)
        .collect();

    for site in 0..MIN_PAGE_SIZE {
        let vfs = FaultVfs::new(site as u64);
        let dir = Path::new("/scrub");
        let store = PagedStore::create_with(
            Arc::new(vfs.clone()),
            dir,
            StoreOptions {
                page_size: MIN_PAGE_SIZE,
                cache_bytes: 64 * MIN_PAGE_SIZE,
            },
        )
        .unwrap();
        store.checkpoint(&[(ID, Some(payload.clone()))], 1).unwrap();
        assert_eq!(store.get(ID).unwrap(), payload, "site {site}: seed read");

        let pages = store.record_pages(ID).unwrap();
        assert_eq!(pages.len(), 1, "payload fills exactly one page");
        let rotted = pages[0];
        let offset = rotted as u64 * MIN_PAGE_SIZE as u64 + site as u64;
        assert!(
            vfs.rot_bit(&dir.join("data.exqp"), offset, (site % 8) as u8),
            "site {site}: rot must land in the file"
        );

        // The warm buffer pool still holds the good frame: salvage works
        // even though the disk image is now rotten.
        assert_eq!(
            store.salvage_record(ID).as_ref(),
            Some(&payload),
            "site {site}: pool salvage"
        );

        let report = store.scrub_step(usize::MAX).unwrap();
        assert!(report.completed_pass, "site {site}");
        assert_eq!(report.corrupt.len(), 1, "site {site}: one corrupt record");
        assert_eq!(report.corrupt[0].id, ID, "site {site}");
        assert_eq!(report.corrupt[0].pages, vec![rotted], "site {site}");
        assert_eq!(store.quarantined_pages(), 1, "site {site}");

        // Quarantine keeps the CRC-verified frame alive: readers are still
        // served the last good copy of the rotted page, and that same
        // frame is what repair re-seals the record from.
        assert_eq!(
            store.get(ID).unwrap(),
            payload,
            "site {site}: quarantined record must keep serving from the pool"
        );
        assert_eq!(
            store.salvage_record(ID).as_ref(),
            Some(&payload),
            "site {site}: salvage after quarantine"
        );

        // Rebuild onto fresh pages; the quarantined page must not return.
        store
            .rewrite_records(&[(ID, Some(payload.clone()))])
            .unwrap();
        assert_eq!(store.get(ID).unwrap(), payload, "site {site}: rebuilt");
        let new_pages = store.record_pages(ID).unwrap();
        assert!(
            !new_pages.contains(&rotted),
            "site {site}: quarantined page {rotted} was reallocated"
        );

        let clean = store.scrub_step(usize::MAX).unwrap();
        assert!(clean.completed_pass, "site {site}");
        assert!(
            clean.corrupt.is_empty(),
            "site {site}: store still corrupt after rebuild: {:?}",
            clean.corrupt
        );
    }
}
