//! Document statistics used by the attack model and the experiments.

use crate::tree::{Document, NodeKind};
use std::collections::HashMap;

/// Aggregate statistics over a document.
#[derive(Debug, Clone, Default)]
pub struct DocumentStats {
    /// Live node count (elements + attributes + text).
    pub nodes: usize,
    pub elements: usize,
    pub attributes: usize,
    pub text_nodes: usize,
    /// Tree height over elements.
    pub height: usize,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Per-element-tag counts.
    pub tag_histogram: HashMap<String, usize>,
}

impl Document {
    /// Computes aggregate statistics.
    pub fn stats(&self) -> DocumentStats {
        let mut s = DocumentStats {
            height: self.height(),
            bytes: self.serialized_size(),
            ..Default::default()
        };
        for id in self.iter() {
            s.nodes += 1;
            match self.node(id).kind() {
                NodeKind::Element(t) => {
                    s.elements += 1;
                    *s.tag_histogram
                        .entry(self.tag_name(*t).to_owned())
                        .or_default() += 1;
                }
                NodeKind::Attribute(..) => s.attributes += 1,
                NodeKind::Text(_) => s.text_nodes += 1,
            }
        }
        s
    }

    /// The occurrence-frequency histogram of leaf values grouped by the
    /// "attribute" they belong to (parent element tag for text leaves,
    /// attribute name for attribute nodes).
    ///
    /// This is exactly the attacker's background knowledge in the paper's
    /// frequency-based attack model (§3.3): for each attribute, the domain
    /// values and their exact occurrence frequencies.
    pub fn value_histogram(&self) -> HashMap<String, HashMap<String, usize>> {
        let mut out: HashMap<String, HashMap<String, usize>> = HashMap::new();
        for id in self.iter() {
            match self.node(id).kind() {
                NodeKind::Attribute(name, v) => {
                    let key = format!("@{}", self.tag_name(*name));
                    *out.entry(key).or_default().entry(v.clone()).or_default() += 1;
                }
                NodeKind::Text(t) => {
                    let parent = self.node(id).parent().expect("text has a parent");
                    let key = self.element_name(parent).unwrap_or("#unknown").to_owned();
                    *out.entry(key).or_default().entry(t.clone()).or_default() += 1;
                }
                NodeKind::Element(_) => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_counts() {
        let d = Document::parse(r#"<r a="1"><x>hi</x><x>ho</x><y/></r>"#).unwrap();
        let s = d.stats();
        assert_eq!(s.elements, 4);
        assert_eq!(s.attributes, 1);
        assert_eq!(s.text_nodes, 2);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.height, 1);
        assert_eq!(s.tag_histogram["x"], 2);
        assert_eq!(s.bytes, d.to_xml().len());
    }

    #[test]
    fn value_histogram_groups_by_attribute() {
        let d = Document::parse(
            r#"<r><p><d>flu</d><d>flu</d><d>cold</d></p><q age="40"/><q age="40"/></r>"#,
        )
        .unwrap();
        let h = d.value_histogram();
        assert_eq!(h["d"]["flu"], 2);
        assert_eq!(h["d"]["cold"], 1);
        assert_eq!(h["@age"]["40"], 2);
    }
}
