//! Arena-based XML document model, parser, and serializer.
//!
//! This crate is the storage substrate for the encrypted-XML query system.
//! It deliberately implements only the XML subset the paper's databases use:
//! elements, attributes, and text leaves (no mixed content, namespaces,
//! processing-instruction semantics, or DTDs — comments, CDATA, the XML
//! declaration and numeric/named entities are parsed and normalized away).
//!
//! Documents are arenas: every node lives in a `Vec` and is addressed by a
//! [`NodeId`]. Tags and attribute names are interned as [`TagId`]s so that
//! structural algorithms (DSI labeling, structural joins, vertex cover over
//! the constraint graph) can work on dense integers.
//!
//! ```
//! use exq_xml::Document;
//!
//! let doc = Document::parse("<a x=\"1\"><b>hi</b></a>").unwrap();
//! let root = doc.root().unwrap();
//! assert_eq!(doc.element_name(root), Some("a"));
//! assert_eq!(doc.text_value(root), "hi");
//! assert_eq!(doc.to_xml(), "<a x=\"1\"><b>hi</b></a>");
//! ```

mod escape;
mod parse;
mod serialize;
mod stats;
mod tree;

pub use escape::{escape_attr, escape_text, unescape};
pub use parse::{ParseError, ParseOptions};
pub use stats::DocumentStats;
pub use tree::{Document, Node, NodeId, NodeKind, TagId};
