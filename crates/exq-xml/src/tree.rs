//! The arena document tree.

use std::collections::HashMap;
use std::fmt;

/// Interned identifier for an element tag or attribute name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

/// Index of a node in a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node; the tag is interned in the owning document.
    Element(TagId),
    /// An attribute node: interned name plus value.
    Attribute(TagId, String),
    /// A text leaf.
    Text(String),
}

/// One node of the arena tree.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    /// Attribute children (elements only). Kept separate from `children` so
    /// serialization and the child axis stay cheap; structural labeling uses
    /// [`Document::all_children`] to see both.
    pub(crate) attrs: Vec<NodeId>,
    /// Element and text children, in document order.
    pub(crate) children: Vec<NodeId>,
    /// Tombstone flag: detached nodes stay in the arena but are skipped by
    /// all traversals.
    pub(crate) detached: bool,
}

impl Node {
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }
    pub fn attrs(&self) -> &[NodeId] {
        &self.attrs
    }
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element(_))
    }
    pub fn is_text(&self) -> bool {
        matches!(self.kind, NodeKind::Text(_))
    }
    pub fn is_attribute(&self) -> bool {
        matches!(self.kind, NodeKind::Attribute(..))
    }
}

/// Tag/attribute-name interner owned by a document.
#[derive(Debug, Clone, Default)]
pub(crate) struct Interner {
    names: Vec<String>,
    index: HashMap<String, TagId>,
}

impl Interner {
    pub(crate) fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    pub(crate) fn get(&self, name: &str) -> Option<TagId> {
        self.index.get(name).copied()
    }

    pub(crate) fn resolve(&self, id: TagId) -> &str {
        &self.names[id.0 as usize]
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

/// An XML document: an arena of [`Node`]s plus a tag interner.
#[derive(Debug, Clone, Default)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: Option<NodeId>,
    pub(crate) interner: Interner,
}

impl Document {
    /// Creates an empty document with no root.
    pub fn new() -> Self {
        Self::default()
    }

    /// The root element, if one has been added.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Total number of live (non-detached) nodes, including attributes and
    /// text leaves.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.detached).count()
    }

    /// True when the document has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct interned tag/attribute names.
    pub fn tag_count(&self) -> usize {
        self.interner.len()
    }

    /// Borrows a node. Panics on an id from another document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Interns a tag name.
    pub fn intern(&mut self, name: &str) -> TagId {
        self.interner.intern(name)
    }

    /// Looks up an already-interned tag name.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.interner.get(name)
    }

    /// Resolves an interned tag to its string.
    pub fn tag_name(&self, id: TagId) -> &str {
        self.interner.resolve(id)
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Adds an element. With `parent = None` this sets the document root
    /// (panics if a root already exists).
    pub fn add_element(&mut self, parent: Option<NodeId>, tag: &str) -> NodeId {
        let tag = self.intern(tag);
        let id = self.push_node(Node {
            kind: NodeKind::Element(tag),
            parent,
            attrs: Vec::new(),
            children: Vec::new(),
            detached: false,
        });
        match parent {
            Some(p) => self.nodes[p.index()].children.push(id),
            None => {
                assert!(self.root.is_none(), "document already has a root");
                self.root = Some(id);
            }
        }
        id
    }

    /// Adds a text leaf under an element.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        debug_assert!(self.node(parent).is_element());
        let id = self.push_node(Node {
            kind: NodeKind::Text(text.to_owned()),
            parent: Some(parent),
            attrs: Vec::new(),
            children: Vec::new(),
            detached: false,
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Adds an attribute to an element.
    pub fn add_attr(&mut self, parent: NodeId, name: &str, value: &str) -> NodeId {
        debug_assert!(self.node(parent).is_element());
        let tag = self.intern(name);
        let id = self.push_node(Node {
            kind: NodeKind::Attribute(tag, value.to_owned()),
            parent: Some(parent),
            attrs: Vec::new(),
            children: Vec::new(),
            detached: false,
        });
        self.nodes[parent.index()].attrs.push(id);
        id
    }

    /// Detaches a node (and implicitly its whole subtree) from the tree.
    /// The arena slot becomes a tombstone; ids of other nodes are unaffected.
    pub fn detach(&mut self, id: NodeId) {
        if let Some(p) = self.nodes[id.index()].parent {
            let pn = &mut self.nodes[p.index()];
            pn.children.retain(|&c| c != id);
            pn.attrs.retain(|&c| c != id);
        } else if self.root == Some(id) {
            self.root = None;
        }
        self.mark_detached(id);
    }

    fn mark_detached(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            self.nodes[n.index()].detached = true;
            stack.extend(self.nodes[n.index()].children.iter().copied());
            stack.extend(self.nodes[n.index()].attrs.iter().copied());
        }
    }

    /// True if the node is still attached to the tree.
    pub fn is_live(&self, id: NodeId) -> bool {
        !self.nodes[id.index()].detached
    }

    /// Element tag name, or `None` for text/attribute nodes.
    pub fn element_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element(t) => Some(self.tag_name(*t)),
            _ => None,
        }
    }

    /// The "name" of a node as used by node tests: tag for elements,
    /// attribute name for attributes, `None` for text.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element(t) | NodeKind::Attribute(t, _) => Some(self.tag_name(*t)),
            NodeKind::Text(_) => None,
        }
    }

    /// XPath-style string value: attribute value, text content, or the
    /// concatenation of all descendant text for elements.
    pub fn text_value(&self, id: NodeId) -> String {
        match &self.node(id).kind {
            NodeKind::Attribute(_, v) => v.clone(),
            NodeKind::Text(t) => t.clone(),
            NodeKind::Element(_) => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        for &c in &self.node(id).children {
            match &self.node(c).kind {
                NodeKind::Text(t) => out.push_str(t),
                NodeKind::Element(_) => self.collect_text(c, out),
                NodeKind::Attribute(..) => {}
            }
        }
    }

    /// Attribute and regular children, in the order used for structural
    /// labeling (attributes first, then element/text children).
    pub fn all_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let n = self.node(id);
        n.attrs.iter().chain(n.children.iter()).copied()
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive),
    /// covering attributes and text.
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Pre-order traversal of the whole document.
    pub fn iter(&self) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: self.root.into_iter().collect(),
        }
    }

    /// Number of nodes (elements + attributes + text) in the subtree at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }

    /// Depth of a node; the root has depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the document tree (max depth over element nodes), or 0 for
    /// an empty document.
    pub fn height(&self) -> usize {
        self.iter()
            .filter(|&n| self.node(n).is_element())
            .map(|n| self.depth(n))
            .max()
            .unwrap_or(0)
    }

    /// Every live element with the given tag, in document order.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        let Some(t) = self.tag_id(tag) else {
            return Vec::new();
        };
        self.iter()
            .filter(|&n| matches!(self.node(n).kind, NodeKind::Element(tt) if tt == t))
            .collect()
    }

    /// The chain of ancestors of `id`, nearest first (excluding `id`).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Deep-copies the subtree rooted at `src` (which lives in `self`) under
    /// `dst_parent` in `dst`. `dst_parent = None` makes it the root of `dst`.
    /// Returns the id of the copy.
    pub fn clone_subtree_into(
        &self,
        src: NodeId,
        dst: &mut Document,
        dst_parent: Option<NodeId>,
    ) -> NodeId {
        match &self.node(src).kind {
            NodeKind::Element(t) => {
                let name = self.tag_name(*t).to_owned();
                let copy = dst.add_element(dst_parent, &name);
                for &a in &self.node(src).attrs {
                    if let NodeKind::Attribute(at, v) = &self.node(a).kind {
                        let an = self.tag_name(*at).to_owned();
                        dst.add_attr(copy, &an, v);
                    }
                }
                for &c in &self.node(src).children {
                    self.clone_subtree_into(c, dst, Some(copy));
                }
                copy
            }
            NodeKind::Text(t) => {
                let p = dst_parent.expect("text node cannot be a document root");
                dst.add_text(p, t)
            }
            NodeKind::Attribute(at, v) => {
                let p = dst_parent.expect("attribute node cannot be a document root");
                let an = self.tag_name(*at).to_owned();
                dst.add_attr(p, &an, v)
            }
        }
    }

    /// Extracts the subtree at `id` into a standalone document.
    pub fn extract_subtree(&self, id: NodeId) -> Document {
        let mut out = Document::new();
        self.clone_subtree_into(id, &mut out, None);
        out
    }
}

/// Pre-order iterator over a subtree. Attributes are yielded right after
/// their element, before element/text children. Detached nodes are skipped.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let id = self.stack.pop()?;
            let n = self.doc.node(id);
            if n.detached {
                continue;
            }
            // Push in reverse so pops come out in document order.
            for &c in n.children.iter().rev() {
                self.stack.push(c);
            }
            for &a in n.attrs.iter().rev() {
                self.stack.push(a);
            }
            return Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let root = d.add_element(None, "hospital");
        let p = d.add_element(Some(root), "patient");
        d.add_attr(p, "id", "7");
        let name = d.add_element(Some(p), "pname");
        d.add_text(name, "Betty");
        (d, root, p, name)
    }

    #[test]
    fn build_and_navigate() {
        let (d, root, p, name) = sample();
        assert_eq!(d.root(), Some(root));
        assert_eq!(d.element_name(root), Some("hospital"));
        assert_eq!(d.node(p).parent(), Some(root));
        assert_eq!(d.text_value(name), "Betty");
        assert_eq!(d.text_value(root), "Betty");
        assert_eq!(d.depth(name), 2);
        assert_eq!(d.height(), 2);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn attr_string_value() {
        let (d, _, p, _) = sample();
        let attr = d.node(p).attrs()[0];
        assert_eq!(d.text_value(attr), "7");
        assert_eq!(d.node_name(attr), Some("id"));
    }

    #[test]
    fn preorder_covers_everything() {
        let (d, ..) = sample();
        let order: Vec<_> = d
            .iter()
            .map(|n| d.node_name(n).unwrap_or("#text").to_owned())
            .collect();
        assert_eq!(order, ["hospital", "patient", "id", "pname", "#text"]);
    }

    #[test]
    fn detach_removes_subtree() {
        let (mut d, _, p, name) = sample();
        d.detach(name);
        assert!(!d.is_live(name));
        assert_eq!(d.text_value(p), "");
        assert_eq!(d.len(), 3);
        // ids of remaining nodes unaffected
        assert_eq!(d.element_name(p), Some("patient"));
    }

    #[test]
    fn detach_root() {
        let (mut d, root, ..) = sample();
        d.detach(root);
        assert!(d.root().is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn clone_subtree_roundtrip() {
        let (d, _, p, _) = sample();
        let sub = d.extract_subtree(p);
        let r = sub.root().unwrap();
        assert_eq!(sub.element_name(r), Some("patient"));
        assert_eq!(sub.text_value(r), "Betty");
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.node(r).attrs().len(), 1);
    }

    #[test]
    fn elements_by_tag_in_document_order() {
        let mut d = Document::new();
        let root = d.add_element(None, "r");
        let a1 = d.add_element(Some(root), "a");
        let b = d.add_element(Some(root), "b");
        let a2 = d.add_element(Some(b), "a");
        assert_eq!(d.elements_by_tag("a"), vec![a1, a2]);
        assert!(d.elements_by_tag("zzz").is_empty());
    }

    #[test]
    fn ancestors_nearest_first() {
        let (d, root, p, name) = sample();
        assert_eq!(d.ancestors(name), vec![p, root]);
        assert!(d.ancestors(root).is_empty());
    }

    #[test]
    fn subtree_size_counts_attrs_and_text() {
        let (d, root, p, _) = sample();
        assert_eq!(d.subtree_size(root), 5);
        assert_eq!(d.subtree_size(p), 4);
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn second_root_panics() {
        let mut d = Document::new();
        d.add_element(None, "a");
        d.add_element(None, "b");
    }
}
