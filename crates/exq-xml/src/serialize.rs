//! Document serialization back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Document, NodeId, NodeKind};

impl Document {
    /// Serializes the whole document (no XML declaration, no pretty
    /// printing — the output is byte-stable for hashing and size metrics).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            self.write_node(root, &mut out);
        }
        out
    }

    /// Serializes a single subtree.
    pub fn node_to_xml(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.write_node(id, &mut out);
        out
    }

    fn write_node(&self, id: NodeId, out: &mut String) {
        let n = self.node(id);
        if n.detached {
            return;
        }
        match &n.kind {
            NodeKind::Text(t) => out.push_str(&escape_text(t)),
            NodeKind::Attribute(name, v) => {
                // An attribute serialized on its own (outside a tag) renders
                // as name="value"; inside tags it is written by the Element arm.
                out.push_str(self.tag_name(*name));
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
            NodeKind::Element(tag) => {
                out.push('<');
                out.push_str(self.tag_name(*tag));
                for &a in &n.attrs {
                    let an = self.node(a);
                    if an.detached {
                        continue;
                    }
                    if let NodeKind::Attribute(name, v) = &an.kind {
                        out.push(' ');
                        out.push_str(self.tag_name(*name));
                        out.push_str("=\"");
                        out.push_str(&escape_attr(v));
                        out.push('"');
                    }
                }
                let live_children: Vec<NodeId> = n
                    .children
                    .iter()
                    .copied()
                    .filter(|&c| !self.node(c).detached)
                    .collect();
                if live_children.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    for c in live_children {
                        self.write_node(c, out);
                    }
                    out.push_str("</");
                    out.push_str(self.tag_name(*tag));
                    out.push('>');
                }
            }
        }
    }

    /// Size in bytes of the serialized document — the metric used for the
    /// paper's size-based attack and for transmission-cost accounting.
    pub fn serialized_size(&self) -> usize {
        self.to_xml().len()
    }

    /// Pretty-printed serialization with the given indent width (element-only
    /// documents gain newlines; elements with text content stay inline so
    /// re-parsing with whitespace-skipping reproduces the same tree).
    pub fn to_xml_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            self.write_pretty(root, 0, indent, &mut out);
        }
        out
    }

    fn write_pretty(&self, id: NodeId, depth: usize, indent: usize, out: &mut String) {
        let n = self.node(id);
        if n.detached {
            return;
        }
        let pad = " ".repeat(depth * indent);
        let NodeKind::Element(tag) = &n.kind else {
            return;
        };
        let live: Vec<NodeId> = n
            .children
            .iter()
            .copied()
            .filter(|&c| !self.node(c).detached)
            .collect();
        let has_element_children = live.iter().any(|&c| self.node(c).is_element());
        out.push_str(&pad);
        if has_element_children {
            // Open tag, children on their own lines, close tag.
            out.push('<');
            out.push_str(self.tag_name(*tag));
            self.write_attrs(id, out);
            out.push_str(">\n");
            for c in live {
                if self.node(c).is_element() {
                    self.write_pretty(c, depth + 1, indent, out);
                } else {
                    out.push_str(&" ".repeat((depth + 1) * indent));
                    self.write_node(c, out);
                    out.push('\n');
                }
            }
            out.push_str(&pad);
            out.push_str("</");
            out.push_str(self.tag_name(*tag));
            out.push_str(">\n");
        } else {
            // Leaf-ish element: inline.
            self.write_node(id, out);
            out.push('\n');
        }
    }

    fn write_attrs(&self, id: NodeId, out: &mut String) {
        for &a in self.node(id).attrs() {
            let an = self.node(a);
            if an.detached {
                continue;
            }
            if let NodeKind::Attribute(name, v) = &an.kind {
                out.push(' ');
                out.push_str(self.tag_name(*name));
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let src = r#"<r a="1"><x>hi</x><y/></r>"#;
        let d = Document::parse(src).unwrap();
        assert_eq!(d.to_xml(), src);
    }

    #[test]
    fn escaping_roundtrip() {
        let src = "<r a=\"1 &lt; 2\">x &amp; y</r>";
        let d = Document::parse(src).unwrap();
        assert_eq!(d.to_xml(), src);
    }

    #[test]
    fn detached_nodes_skipped() {
        let mut d = Document::parse("<r><a>1</a><b>2</b></r>").unwrap();
        let root = d.root().unwrap();
        let a = d.node(root).children()[0];
        d.detach(a);
        assert_eq!(d.to_xml(), "<r><b>2</b></r>");
    }

    #[test]
    fn empty_document_serializes_empty() {
        let d = Document::new();
        assert_eq!(d.to_xml(), "");
        assert_eq!(d.serialized_size(), 0);
    }

    #[test]
    fn subtree_serialization() {
        let d = Document::parse("<r><a k=\"v\">t</a></r>").unwrap();
        let a = d.node(d.root().unwrap()).children()[0];
        assert_eq!(d.node_to_xml(a), "<a k=\"v\">t</a>");
    }

    #[test]
    fn pretty_print_reparses_identically() {
        let src = "<r a=\"1\"><p><n>Betty</n><s>123</s></p><q/></r>";
        let d = Document::parse(src).unwrap();
        let pretty = d.to_xml_pretty(2);
        assert!(pretty.contains("\n"));
        assert!(pretty.contains("  <p>"));
        let reparsed = Document::parse(&pretty).unwrap();
        assert_eq!(reparsed.to_xml(), src);
    }

    #[test]
    fn pretty_print_empty_and_leaf() {
        assert_eq!(Document::new().to_xml_pretty(2), "");
        let d = Document::parse("<a>x</a>").unwrap();
        assert_eq!(d.to_xml_pretty(2), "<a>x</a>\n");
    }

    #[test]
    fn parse_serialize_parse_is_stable() {
        let src = "<r><p id=\"1\"><n>Betty</n><s>12&#65;3</s></p><p id=\"2\"/></r>";
        let d1 = Document::parse(src).unwrap();
        let s1 = d1.to_xml();
        let d2 = Document::parse(&s1).unwrap();
        assert_eq!(d2.to_xml(), s1);
    }
}
