//! XML entity escaping and unescaping.

use std::borrow::Cow;

/// Escapes text content: `& < >`.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape(s, false)
}

/// Escapes attribute values: `& < > "`.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape(s, true)
}

fn escape(s: &str, attr: bool) -> Cow<'_, str> {
    let needs = s
        .bytes()
        .any(|b| matches!(b, b'&' | b'<' | b'>') || (attr && b == b'"'));
    if !needs {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Expands the five predefined entities plus decimal/hex character
/// references. Unknown entities are left verbatim (lenient mode).
pub fn unescape(s: &str) -> Cow<'_, str> {
    if !s.contains('&') {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = match rest.find(';') {
            Some(e) if e <= 12 => e,
            _ => {
                // Not a well-formed entity; emit '&' verbatim and move on.
                out.push('&');
                rest = &rest[1..];
                continue;
            }
        };
        let ent = &rest[1..end];
        let expanded = match ent {
            "amp" => Some('&'),
            "lt" => Some('<'),
            "gt" => Some('>'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                u32::from_str_radix(&ent[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
            }
            _ if ent.starts_with('#') => ent[1..].parse::<u32>().ok().and_then(char::from_u32),
            _ => None,
        };
        match expanded {
            Some(c) => {
                out.push(c);
                rest = &rest[end + 1..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_borrows_when_clean() {
        assert!(matches!(escape_text("hello"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("hello"), Cow::Borrowed(_)));
    }

    #[test]
    fn escape_text_basic() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr("say \"hi\""), "say &quot;hi&quot;");
        // text mode leaves quotes alone
        assert_eq!(escape_text("say \"hi\""), "say \"hi\"");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;"),
            "<a> & \"b\" 'c'"
        );
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#x63;"), "ABc");
    }

    #[test]
    fn unescape_lenient_on_garbage() {
        assert_eq!(unescape("a & b"), "a & b");
        assert_eq!(unescape("fish&chips;"), "fish&chips;");
        assert_eq!(unescape("&#xZZ;"), "&#xZZ;");
    }

    #[test]
    fn roundtrip() {
        let samples = ["", "plain", "<tag attr=\"v\">&amp;</tag>", "a&b<c>d\"e'f"];
        for s in samples {
            assert_eq!(unescape(&escape_text(s)), s);
            assert_eq!(unescape(&escape_attr(s)), s);
        }
    }
}
