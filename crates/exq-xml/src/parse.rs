//! Hand-written recursive-descent XML parser.
//!
//! Supports elements, attributes, text, comments, CDATA sections, the XML
//! declaration and processing instructions (skipped), and entity references.
//! No namespaces or DTDs — the paper's databases do not use them.

use crate::escape::unescape;
use crate::tree::{Document, NodeId};
use std::fmt;

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Drop text nodes that consist solely of whitespace (indentation between
    /// elements). Defaults to `true`, matching data-oriented XML usage.
    pub skip_whitespace_text: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        Self {
            skip_whitespace_text: true,
        }
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Document {
    /// Parses a document with default options.
    pub fn parse(input: &str) -> Result<Document, ParseError> {
        Self::parse_with(input, ParseOptions::default())
    }

    /// Parses a document with explicit options.
    pub fn parse_with(input: &str, opts: ParseOptions) -> Result<Document, ParseError> {
        let mut p = Parser {
            input: input.as_bytes(),
            pos: 0,
            doc: Document::new(),
            opts,
        };
        p.skip_misc()?;
        p.parse_element(None)?;
        p.skip_misc()?;
        if p.pos != p.input.len() {
            return Err(p.err("trailing content after the root element"));
        }
        Ok(p.doc)
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    doc: Document,
    opts: ParseOptions,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, the XML declaration, PIs, and DOCTYPE.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), ParseError> {
        let hay = &self.input[self.pos..];
        match find_sub(hay, end.as_bytes()) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || matches!(b, b'_' | b'-' | b'.' | b':' | b'#')
                || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        String::from_utf8(self.input[start..self.pos].to_vec())
            .map_err(|_| self.err("name is not valid UTF-8"))
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_element(&mut self, parent: Option<NodeId>) -> Result<NodeId, ParseError> {
        self.expect(b'<')?;
        let tag = self.read_name()?;
        let el = self.doc.add_element(parent, &tag);

        // attributes
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(el);
                }
                Some(_) => {
                    let name = self.read_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.peek().map(|b| b != quote).unwrap_or(false) {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[vstart..self.pos])
                        .map_err(|_| self.err("attribute value is not valid UTF-8"))?;
                    let value = unescape(raw).into_owned();
                    self.expect(quote)?;
                    self.doc.add_attr(el, &name, &value);
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // content
        let mut text_buf = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unclosed element <{tag}>"))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.flush_text(el, &mut text_buf);
                        self.pos += 2;
                        let close = self.read_name()?;
                        if close != tag {
                            return Err(
                                self.err(format!("mismatched close tag: <{tag}> vs </{close}>"))
                            );
                        }
                        self.skip_ws();
                        self.expect(b'>')?;
                        return Ok(el);
                    } else if self.starts_with("<!--") {
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.pos += "<![CDATA[".len();
                        let hay = &self.input[self.pos..];
                        let end = find_sub(hay, b"]]>")
                            .ok_or_else(|| self.err("unterminated CDATA section"))?;
                        let raw = std::str::from_utf8(&hay[..end])
                            .map_err(|_| self.err("CDATA is not valid UTF-8"))?;
                        text_buf.push_str(raw);
                        self.pos += end + 3;
                    } else if self.starts_with("<?") {
                        self.skip_until("?>")?;
                    } else {
                        self.flush_text(el, &mut text_buf);
                        self.parse_element(Some(el))?;
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().map(|b| b != b'<').unwrap_or(false) {
                        self.pos += 1;
                    }
                    let raw = std::str::from_utf8(&self.input[start..self.pos])
                        .map_err(|_| self.err("text is not valid UTF-8"))?;
                    text_buf.push_str(&unescape(raw));
                }
            }
        }
    }

    fn flush_text(&mut self, el: NodeId, buf: &mut String) {
        if buf.is_empty() {
            return;
        }
        let keep = !self.opts.skip_whitespace_text || !buf.chars().all(char::is_whitespace);
        if keep {
            self.doc.add_text(el, buf);
        }
        buf.clear();
    }
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Document;

    #[test]
    fn minimal() {
        let d = Document::parse("<a/>").unwrap();
        assert_eq!(d.element_name(d.root().unwrap()), Some("a"));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn nested_with_attrs_and_text() {
        let d = Document::parse(r#"<r><p id="1">hi <b>there</b></p></r>"#).unwrap();
        let root = d.root().unwrap();
        assert_eq!(d.text_value(root), "hi there");
        let p = d.node(root).children()[0];
        assert_eq!(d.node(p).attrs().len(), 1);
    }

    #[test]
    fn declaration_comment_doctype() {
        let src = "<?xml version=\"1.0\"?><!DOCTYPE r><!-- c --><r>x</r><!-- after -->";
        let d = Document::parse(src).unwrap();
        assert_eq!(d.text_value(d.root().unwrap()), "x");
    }

    #[test]
    fn cdata_and_entities() {
        let d = Document::parse("<r>a &amp; b <![CDATA[<raw> & stuff]]></r>").unwrap();
        assert_eq!(d.text_value(d.root().unwrap()), "a & b <raw> & stuff");
    }

    #[test]
    fn inner_comment_splits_nothing() {
        let d = Document::parse("<r>ab<!-- x -->cd</r>").unwrap();
        assert_eq!(d.text_value(d.root().unwrap()), "abcd");
    }

    #[test]
    fn whitespace_skipping_default() {
        let d = Document::parse("<r>\n  <a>1</a>\n  <b>2</b>\n</r>").unwrap();
        let root = d.root().unwrap();
        assert_eq!(d.node(root).children().len(), 2);
    }

    #[test]
    fn whitespace_kept_on_request() {
        let opts = ParseOptions {
            skip_whitespace_text: false,
        };
        let d = Document::parse_with("<r>\n  <a>1</a>\n</r>", opts).unwrap();
        let root = d.root().unwrap();
        assert_eq!(d.node(root).children().len(), 3);
    }

    #[test]
    fn errors() {
        assert!(Document::parse("<a>").is_err());
        assert!(Document::parse("<a></b>").is_err());
        assert!(Document::parse("<a x=1/>").is_err());
        assert!(Document::parse("<a/><b/>").is_err());
        assert!(Document::parse("").is_err());
        assert!(Document::parse("just text").is_err());
    }

    #[test]
    fn error_reports_offset() {
        let e = Document::parse("<aa></bb>").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.to_string().contains("mismatched"));
    }

    #[test]
    fn single_quoted_attrs() {
        let d = Document::parse("<a x='1' y=\"2\"/>").unwrap();
        let r = d.root().unwrap();
        assert_eq!(d.node(r).attrs().len(), 2);
        assert_eq!(d.text_value(d.node(r).attrs()[0]), "1");
    }

    #[test]
    fn attr_entities_unescaped() {
        let d = Document::parse(r#"<a x="1 &lt; 2"/>"#).unwrap();
        let r = d.root().unwrap();
        assert_eq!(d.text_value(d.node(r).attrs()[0]), "1 < 2");
    }
}
