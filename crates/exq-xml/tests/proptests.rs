//! Property tests: serialize∘parse is the identity on the document model.

use exq_xml::{Document, NodeId};
use proptest::prelude::*;

/// A recursive generator for random documents built through the public API.
#[derive(Debug, Clone)]
enum Tree {
    Leaf(String),
    Element {
        tag: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
}

fn tag_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,8}"
}

fn text_value() -> impl Strategy<Value = String> {
    // Includes characters that require escaping.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('&'),
            Just('<'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just(' '),
            Just('é'),
        ],
        1..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn tree() -> impl Strategy<Value = Tree> {
    let leaf = text_value().prop_map(Tree::Leaf);
    leaf.prop_recursive(4, 40, 5, |inner| {
        (
            tag_name(),
            proptest::collection::vec((tag_name(), text_value()), 0..3),
            proptest::collection::vec(inner, 0..5),
        )
            .prop_map(|(tag, attrs, children)| Tree::Element {
                tag,
                attrs,
                children,
            })
    })
}

fn build(doc: &mut Document, parent: Option<NodeId>, t: &Tree) {
    match t {
        Tree::Leaf(s) => {
            if let Some(p) = parent {
                doc.add_text(p, s);
            }
        }
        Tree::Element {
            tag,
            attrs,
            children,
        } => {
            let el = doc.add_element(parent, tag);
            // Attribute names must be unique within an element for the
            // parse-serialize roundtrip to be exact.
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    doc.add_attr(el, k, v);
                }
            }
            for c in children {
                build(doc, Some(el), c);
            }
        }
    }
}

fn root_tree() -> impl Strategy<Value = Tree> {
    (
        tag_name(),
        proptest::collection::vec((tag_name(), text_value()), 0..3),
        proptest::collection::vec(tree(), 0..5),
    )
        .prop_map(|(tag, attrs, children)| Tree::Element {
            tag,
            attrs,
            children,
        })
}

proptest! {
    /// parse(serialize(doc)) reproduces the serialization exactly.
    #[test]
    fn serialize_parse_roundtrip(t in root_tree()) {
        let mut doc = Document::new();
        build(&mut doc, None, &t);
        let xml = doc.to_xml();
        // Whitespace-only text nodes are dropped by the default parser, so we
        // keep them for the comparison.
        let opts = exq_xml::ParseOptions { skip_whitespace_text: false };
        let reparsed = Document::parse_with(&xml, opts).unwrap();
        prop_assert_eq!(reparsed.to_xml(), xml);
    }

    /// The parsed copy preserves node counts apart from adjacent-text merging.
    #[test]
    fn roundtrip_preserves_text_value(t in root_tree()) {
        let mut doc = Document::new();
        build(&mut doc, None, &t);
        let xml = doc.to_xml();
        let opts = exq_xml::ParseOptions { skip_whitespace_text: false };
        let reparsed = Document::parse_with(&xml, opts).unwrap();
        let (r1, r2) = (doc.root().unwrap(), reparsed.root().unwrap());
        prop_assert_eq!(doc.text_value(r1), reparsed.text_value(r2));
        prop_assert_eq!(doc.height(), reparsed.height());
    }

    /// Escaping never panics and always survives unescaping.
    #[test]
    fn escape_unescape_identity(s in "\\PC*") {
        let esc = exq_xml::escape_text(&s);
        prop_assert_eq!(exq_xml::unescape(&esc).into_owned(), s);
    }
}
