//! The DSI index table and the encryption block table (§5.1.1).
//!
//! The DSI index table maps tags — Vernam-encrypted when the element is
//! inside an encryption block, plaintext otherwise — to the list of DSI
//! intervals of elements with that tag, after same-tag adjacent-sibling
//! grouping inside blocks. The block table maps each block's representative
//! interval (the interval of the block's subtree root) to the block id.
//!
//! Both tables are plain data: the decision of *which* tag string to store
//! (plain vs ciphertext) and which intervals to group is made by the
//! metadata builder in `exq-core`; the server only ever performs lookups.

use crate::dsi::Interval;
use crate::sjoin::sort_intervals;
use std::collections::HashMap;

/// Tag → interval list.
#[derive(Debug, Clone, Default)]
pub struct DsiIndexTable {
    entries: HashMap<String, Vec<Interval>>,
    /// Sorted, deduplicated union of every list — rebuilt by [`seal`],
    /// kept consistent by [`remove_within`] (retain preserves order).
    ///
    /// [`seal`]: Self::seal
    /// [`remove_within`]: Self::remove_within
    all_sorted: Vec<Interval>,
    sealed: bool,
}

impl DsiIndexTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one interval under a tag (plaintext or ciphertext form).
    pub fn add(&mut self, tag: &str, interval: Interval) {
        self.entries
            .entry(tag.to_owned())
            .or_default()
            .push(interval);
        self.sealed = false;
    }

    /// Finishes construction: sorts every interval list into join order and
    /// caches the sorted union so queries never sort again.
    pub fn seal(&mut self) {
        for list in self.entries.values_mut() {
            sort_intervals(list);
            list.dedup();
        }
        let mut all: Vec<Interval> = self.entries.values().flatten().copied().collect();
        sort_intervals(&mut all);
        all.dedup();
        self.all_sorted = all;
        self.sealed = true;
    }

    /// Whether [`seal`](Self::seal) has run since the last [`add`](Self::add).
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Looks up the intervals for a tag. Sorted in join order once the
    /// table is sealed.
    pub fn lookup(&self, tag: &str) -> &[Interval] {
        debug_assert!(self.sealed, "DsiIndexTable::seal() must run before lookups");
        self.entries.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every interval in the table — the server's "visible universe" used
    /// for parent–child derivation. Precomputed at seal time: sorted in
    /// join order, deduplicated, O(1) to obtain.
    pub fn all_intervals(&self) -> &[Interval] {
        debug_assert!(self.sealed, "DsiIndexTable::seal() must run before lookups");
        &self.all_sorted
    }

    /// Number of distinct tags.
    pub fn tag_count(&self) -> usize {
        self.entries.len()
    }

    /// Total interval entries — the structural-index size metric.
    pub fn entry_count(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Iterates `(tag, intervals)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Interval])> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Removes every interval covered by `range` (subtree deletion) and
    /// returns how many entries were dropped.
    pub fn remove_within(&mut self, range: Interval) -> usize {
        let mut removed = 0;
        self.entries.retain(|_, list| {
            let before = list.len();
            list.retain(|iv| !range.covers(iv));
            removed += before - list.len();
            !list.is_empty()
        });
        // Retain preserves order, so the cached union stays sorted and the
        // table stays sealed across deletes.
        self.all_sorted.retain(|iv| !range.covers(iv));
        removed
    }
}

/// Representative interval → block id.
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    /// Sorted by representative interval `lo`.
    entries: Vec<(Interval, u32)>,
    by_id: std::collections::HashMap<u32, Interval>,
    sealed: bool,
}

impl BlockTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, representative: Interval, block_id: u32) {
        self.entries.push((representative, block_id));
        self.by_id.insert(block_id, representative);
        self.sealed = false;
    }

    pub fn seal(&mut self) {
        self.entries.sort_by_key(|(iv, _)| (iv.lo, iv.hi));
        self.sealed = true;
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (Interval, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// The block whose representative interval covers `x` (equality or
    /// strict containment). Blocks never nest (encryption targets are
    /// disjoint subtrees), so the cover is unique if it exists.
    pub fn covering_block(&self, x: &Interval) -> Option<u32> {
        debug_assert!(self.sealed, "BlockTable::seal() must run before lookups");
        // Binary search for candidates with lo <= x.lo.
        let end = self.entries.partition_point(|(iv, _)| iv.lo <= x.lo);
        self.entries[..end]
            .iter()
            .rev()
            .find(|(iv, _)| iv.covers(x))
            .map(|&(_, id)| id)
    }

    /// The representative interval of a block id. O(1).
    pub fn representative(&self, block_id: u32) -> Option<Interval> {
        self.by_id.get(&block_id).copied()
    }

    /// Removes every block whose representative interval is covered by
    /// `range`; returns the removed ids.
    pub fn remove_within(&mut self, range: Interval) -> Vec<u32> {
        let mut removed = Vec::new();
        self.entries.retain(|&(iv, id)| {
            if range.covers(&iv) {
                removed.push(id);
                false
            } else {
                true
            }
        });
        for id in &removed {
            self.by_id.remove(id);
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn dsi_table_lookup() {
        let mut t = DsiIndexTable::new();
        t.add("patient", iv(14, 46));
        t.add("patient", iv(54, 86));
        t.add("U84573", iv(16, 20));
        t.seal();
        assert_eq!(t.lookup("patient").len(), 2);
        assert_eq!(t.lookup("U84573"), [iv(16, 20)]);
        assert!(t.lookup("ghost").is_empty());
        assert_eq!(t.tag_count(), 2);
        assert_eq!(t.entry_count(), 3);
    }

    #[test]
    fn dsi_table_sorts_on_seal() {
        let mut t = DsiIndexTable::new();
        t.add("a", iv(50, 60));
        t.add("a", iv(10, 20));
        t.add("a", iv(10, 90));
        t.seal();
        let l = t.lookup("a");
        assert_eq!(l, [iv(10, 90), iv(10, 20), iv(50, 60)]);
    }

    #[test]
    fn all_intervals_dedup() {
        let mut t = DsiIndexTable::new();
        t.add("a", iv(1, 5));
        t.add("b", iv(1, 5));
        t.add("b", iv(7, 9));
        t.seal();
        assert_eq!(t.all_intervals().len(), 2);
    }

    #[test]
    fn block_cover_lookup() {
        let mut b = BlockTable::new();
        b.add(iv(16, 20), 1);
        b.add(iv(39, 44), 2);
        b.add(iv(55, 60), 3);
        b.seal();
        assert_eq!(b.covering_block(&iv(17, 18)), Some(1));
        assert_eq!(b.covering_block(&iv(39, 44)), Some(2));
        assert_eq!(b.covering_block(&iv(25, 30)), None);
        assert_eq!(b.covering_block(&iv(10, 90)), None);
        assert_eq!(b.representative(3), Some(iv(55, 60)));
        assert_eq!(b.representative(99), None);
    }

    #[test]
    fn empty_tables() {
        let mut t = DsiIndexTable::new();
        t.seal();
        assert_eq!(t.entry_count(), 0);
        let mut b = BlockTable::new();
        b.seal();
        assert!(b.is_empty());
        assert_eq!(b.covering_block(&iv(1, 2)), None);
    }
}
