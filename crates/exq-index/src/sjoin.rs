//! Structural-join operators over DSI intervals (§6.2).
//!
//! The server evaluates the structural part of a translated query with
//! standard interval structural joins: an ancestor–descendant pair matches
//! when the descendant's interval nests strictly inside the ancestor's.
//! Parent–child is derived exactly as §5.1 prescribes:
//! `child(x, y) ⇔ desc(x, y) ∧ ¬∃z: desc(x, z) ∧ desc(z, y)`,
//! with `z` ranging over every interval the server can see.

use crate::dsi::Interval;

/// Sorts intervals by `(lo asc, hi desc)` — the order every join expects.
pub fn sort_intervals(iv: &mut [Interval]) {
    iv.sort_by(|a, b| a.lo.cmp(&b.lo).then(b.hi.cmp(&a.hi)));
}

/// Stack-based ancestor–descendant join. Inputs must be sorted with
/// [`sort_intervals`]; output is every `(ancestor-index, descendant-index)`
/// pair with strict containment.
pub fn join_anc_desc(anc: &[Interval], desc: &[Interval]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    // Sweep descendants; maintain a stack of enclosing ancestor candidates.
    let mut stack: Vec<usize> = Vec::new();
    let mut ai = 0;
    for (di, d) in desc.iter().enumerate() {
        // Push ancestors that start before this descendant.
        while ai < anc.len() && anc[ai].lo < d.lo {
            stack.push(ai);
            ai += 1;
        }
        // Pop ancestors that ended before this descendant starts.
        while let Some(&top) = stack.last() {
            if anc[top].hi < d.lo {
                stack.pop();
            } else {
                break;
            }
        }
        // All remaining stack entries that contain `d` match. Ancestor
        // intervals on the stack are nested; scan from the top until one no
        // longer contains the descendant... but because unrelated intervals
        // may interleave on the stack only as nested chains, every stack
        // member with hi > d.hi contains d.
        for &a in stack.iter() {
            if anc[a].contains(d) {
                out.push((a, di));
            }
        }
    }
    out
}

/// Descendant semi-join: indices of `desc` having at least one strict
/// ancestor in `anc`. Inputs sorted with [`sort_intervals`].
pub fn semijoin_desc(anc: &[Interval], desc: &[Interval]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack: Vec<Interval> = Vec::new();
    let mut ai = 0;
    for (di, d) in desc.iter().enumerate() {
        while ai < anc.len() && anc[ai].lo < d.lo {
            stack.push(anc[ai]);
            ai += 1;
        }
        while stack.last().is_some_and(|t| t.hi < d.lo) {
            stack.pop();
        }
        if stack.iter().any(|a| a.contains(d)) {
            out.push(di);
        }
    }
    out
}

/// Ancestor semi-join: indices of `anc` having at least one strict
/// descendant in `desc`. Inputs sorted with [`sort_intervals`].
///
/// Exploits laminarity (intervals from one labeling never partially
/// overlap): `d` nests in `a` iff `a.lo < d.lo < a.hi`, so one binary
/// search per ancestor suffices — O(n log m).
pub fn semijoin_anc(anc: &[Interval], desc: &[Interval]) -> Vec<usize> {
    let los: Vec<u64> = desc.iter().map(|d| d.lo).collect();
    anc.iter()
        .enumerate()
        .filter_map(|(i, a)| {
            let p = los.partition_point(|&lo| lo <= a.lo);
            (p < los.len() && los[p] < a.hi).then_some(i)
        })
        .collect()
}

/// The set of "visible" intervals the server uses for parent–child
/// derivation. The nesting forest (each interval's tightest container) is
/// precomputed with one stack sweep, so parent lookups are O(1).
#[derive(Debug, Clone)]
pub struct IntervalUniverse {
    sorted: Vec<Interval>,
    parent: std::collections::HashMap<Interval, Option<Interval>>,
}

impl IntervalUniverse {
    pub fn new(mut intervals: Vec<Interval>) -> Self {
        sort_intervals(&mut intervals);
        intervals.dedup();
        // Properly nesting intervals sorted by (lo asc, hi desc): a stack of
        // currently-open intervals yields each one's tightest container.
        let mut parent = std::collections::HashMap::with_capacity(intervals.len());
        let mut stack: Vec<Interval> = Vec::new();
        for &iv in &intervals {
            while stack.last().is_some_and(|top| !top.contains(&iv)) {
                stack.pop();
            }
            parent.insert(iv, stack.last().copied());
            stack.push(iv);
        }
        IntervalUniverse {
            sorted: intervals,
            parent,
        }
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Top-level intervals: universe members with no enclosing member.
    /// Sorted in join order (a subset of the sorted universe).
    pub fn roots(&self) -> impl Iterator<Item = Interval> + '_ {
        self.sorted
            .iter()
            .copied()
            .filter(|iv| self.parent.get(iv).is_some_and(|p| p.is_none()))
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The tightest universe interval strictly containing `x`, i.e. `x`'s
    /// parent as far as the server can tell. O(1) for universe members;
    /// falls back to a scan for foreign intervals.
    pub fn tightest_container(&self, x: &Interval) -> Option<Interval> {
        if let Some(p) = self.parent.get(x) {
            return *p;
        }
        // Foreign interval: scan backwards from its insertion point.
        let end = self.sorted.partition_point(|iv| iv.lo < x.lo);
        self.sorted[..end]
            .iter()
            .rev()
            .find(|iv| iv.contains(x))
            .copied()
    }

    /// Parent–child test per §5.1: `a` strictly contains `d` and no other
    /// visible interval lies strictly between them.
    pub fn is_parent_child(&self, a: &Interval, d: &Interval) -> bool {
        a.contains(d) && self.tightest_container(d).as_ref() == Some(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn basic_join() {
        let mut anc = vec![iv(0, 100), iv(10, 40), iv(50, 90)];
        let mut desc = vec![iv(20, 30), iv(60, 70), iv(95, 99)];
        sort_intervals(&mut anc);
        sort_intervals(&mut desc);
        let pairs = join_anc_desc(&anc, &desc);
        // (0,100) contains all three; (10,40) contains (20,30); (50,90) contains (60,70)
        assert_eq!(pairs.len(), 5);
    }

    #[test]
    fn semijoins() {
        let mut anc = vec![iv(10, 40), iv(50, 90)];
        let mut desc = vec![iv(20, 30), iv(95, 99)];
        sort_intervals(&mut anc);
        sort_intervals(&mut desc);
        assert_eq!(semijoin_desc(&anc, &desc), [0]);
        assert_eq!(semijoin_anc(&anc, &desc), [0]);
    }

    #[test]
    fn no_self_match() {
        let a = vec![iv(10, 40)];
        let d = vec![iv(10, 40)];
        assert!(join_anc_desc(&a, &d).is_empty());
    }

    #[test]
    fn empty_inputs() {
        assert!(join_anc_desc(&[], &[iv(1, 2)]).is_empty());
        assert!(join_anc_desc(&[iv(1, 2)], &[]).is_empty());
        assert!(semijoin_desc(&[], &[]).is_empty());
    }

    /// `roots()` is exactly the set of members with no enclosing member,
    /// in join order, and stays consistent with `tightest_container`.
    #[test]
    fn roots_are_uncontained_members() {
        let u = IntervalUniverse::new(vec![
            iv(0, 100),
            iv(10, 40),
            iv(20, 30),
            iv(200, 300),
            iv(210, 220),
            iv(400, 410),
        ]);
        let roots: Vec<Interval> = u.roots().collect();
        assert_eq!(roots, [iv(0, 100), iv(200, 300), iv(400, 410)]);
        for r in &roots {
            assert_eq!(u.tightest_container(r), None);
        }
        assert!(IntervalUniverse::new(vec![]).roots().next().is_none());
        // A single interval is its own root even when queried among nested
        // siblings that all share it as an ancestor.
        assert_eq!(u.tightest_container(&iv(210, 220)), Some(iv(200, 300)));
    }

    #[test]
    fn deep_nesting() {
        let mut anc: Vec<Interval> = (0..50).map(|i| iv(i, 200 - i)).collect();
        let desc = vec![iv(90, 110)];
        sort_intervals(&mut anc);
        let pairs = join_anc_desc(&anc, &desc);
        assert_eq!(pairs.len(), 50);
    }

    #[test]
    fn tightest_container() {
        let u = IntervalUniverse::new(vec![iv(0, 100), iv(10, 50), iv(20, 30), iv(60, 90)]);
        assert_eq!(u.tightest_container(&iv(22, 25)), Some(iv(20, 30)));
        assert_eq!(u.tightest_container(&iv(12, 15)), Some(iv(10, 50)));
        assert_eq!(u.tightest_container(&iv(61, 62)), Some(iv(60, 90)));
        assert_eq!(u.tightest_container(&iv(0, 100)), None);
        assert_eq!(u.tightest_container(&iv(200, 300)), None);
    }

    #[test]
    fn parent_child_derivation() {
        // r=[0,100], a=[10,50], b=[20,30]: a is child of r, b child of a,
        // b is NOT child of r (a lies between).
        let u = IntervalUniverse::new(vec![iv(0, 100), iv(10, 50), iv(20, 30)]);
        assert!(u.is_parent_child(&iv(0, 100), &iv(10, 50)));
        assert!(u.is_parent_child(&iv(10, 50), &iv(20, 30)));
        assert!(!u.is_parent_child(&iv(0, 100), &iv(20, 30)));
        assert!(!u.is_parent_child(&iv(20, 30), &iv(10, 50)));
    }

    #[test]
    fn interleaved_siblings() {
        let mut anc = vec![iv(0, 10), iv(20, 30), iv(40, 50)];
        let mut desc = vec![iv(2, 4), iv(22, 24), iv(42, 44), iv(60, 62)];
        sort_intervals(&mut anc);
        sort_intervals(&mut desc);
        let pairs = join_anc_desc(&anc, &desc);
        assert_eq!(pairs, [(0, 0), (1, 1), (2, 2)]);
    }
}
