//! An in-memory B-tree with duplicate keys and range scans.
//!
//! This carries the OPESS value index (§5.2): keys are 128-bit ciphertexts,
//! values are encryption-block ids. Duplicate keys arise from scaling
//! (replicated index entries) and from multiple blocks containing the same
//! ciphertext value; internally every entry is made unique by a monotone
//! insertion sequence number so separator invariants stay exact. Leaves are
//! chained for cheap range scans.

/// Default maximum number of keys per node.
const DEFAULT_ORDER: usize = 32;

/// Internal composite key: `(user key, insertion sequence)`.
type K = (u128, u64);

/// A B-tree from `u128` keys to `u32` values, duplicates allowed.
///
/// ```
/// use exq_index::BTree;
/// let mut t = BTree::new();
/// t.insert(50, 1);
/// t.insert(70, 2);
/// t.insert(50, 3); // duplicate key
/// assert_eq!(t.range(40, 60), [1, 3]);
/// assert_eq!(t.max_entry(), Some((70, 2)));
/// ```
#[derive(Debug, Clone)]
pub struct BTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    order: usize,
    seq: u64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<K>,
        vals: Vec<u32>,
        next: Option<usize>,
    },
    Internal {
        /// `keys[i]` separates `children[i]` (keys < keys[i]) from
        /// `children[i+1]` (keys >= keys[i]).
        keys: Vec<K>,
        children: Vec<usize>,
    },
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// Creates an empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with a custom order (max keys per node ≥ 3).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "B-tree order must be at least 3");
        BTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            order,
            seq: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tree nodes — the index-size metric of the experiments.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (1 for a lone leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        loop {
            match &self.nodes[n] {
                Node::Leaf { .. } => return h,
                Node::Internal { children, .. } => {
                    n = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Inserts an entry (duplicates permitted).
    pub fn insert(&mut self, key: u128, value: u32) {
        let k = (key, self.seq);
        self.seq += 1;
        if let Some((sep, right)) = self.insert_rec(self.root, k, value) {
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![self.root, right],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
        self.len += 1;
    }

    /// Recursive insert; returns `(separator, new-right-node)` on split.
    fn insert_rec(&mut self, n: usize, key: K, value: u32) -> Option<(K, usize)> {
        let child = match &self.nodes[n] {
            Node::Leaf { .. } => None,
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                Some(children[idx])
            }
        };
        match child {
            None => {
                if let Node::Leaf { keys, vals, .. } = &mut self.nodes[n] {
                    let pos = keys.partition_point(|&k| k <= key);
                    keys.insert(pos, key);
                    vals.insert(pos, value);
                    if keys.len() > self.order {
                        return Some(self.split_leaf(n));
                    }
                }
                None
            }
            Some(c) => {
                if let Some((sep, right)) = self.insert_rec(c, key, value) {
                    if let Node::Internal { keys, children } = &mut self.nodes[n] {
                        let idx = keys.partition_point(|&k| k <= sep);
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > self.order {
                            return Some(self.split_internal(n));
                        }
                    }
                }
                None
            }
        }
    }

    fn split_leaf(&mut self, n: usize) -> (K, usize) {
        let next_id = self.nodes.len();
        let Node::Leaf { keys, vals, next } = &mut self.nodes[n] else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        let rkeys = keys.split_off(mid);
        let rvals = vals.split_off(mid);
        let rnext = *next;
        *next = Some(next_id);
        let sep = rkeys[0];
        self.nodes.push(Node::Leaf {
            keys: rkeys,
            vals: rvals,
            next: rnext,
        });
        (sep, next_id)
    }

    fn split_internal(&mut self, n: usize) -> (K, usize) {
        let next_id = self.nodes.len();
        let Node::Internal { keys, children } = &mut self.nodes[n] else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        let sep = keys[mid];
        let rkeys = keys.split_off(mid + 1);
        keys.pop(); // drop the separator that moves up
        let rchildren = children.split_off(mid + 1);
        self.nodes.push(Node::Internal {
            keys: rkeys,
            children: rchildren,
        });
        (sep, next_id)
    }

    /// All values whose key is in `[lo, hi]` (inclusive), in key order.
    pub fn range(&self, lo: u128, hi: u128) -> Vec<u32> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let probe: K = (lo, 0);
        // Descend to the leaf that could contain the first `lo` entry.
        let mut n = self.root;
        while let Node::Internal { keys, children } = &self.nodes[n] {
            let idx = keys.partition_point(|&k| k <= probe);
            n = children[idx];
        }
        // Walk the leaf chain.
        let mut cur = Some(n);
        while let Some(id) = cur {
            let Node::Leaf { keys, vals, next } = &self.nodes[id] else {
                unreachable!()
            };
            let start = keys.partition_point(|&k| k < probe);
            for i in start..keys.len() {
                if keys[i].0 > hi {
                    return out;
                }
                out.push(vals[i]);
            }
            cur = *next;
        }
        out
    }

    /// All values for exactly `key`.
    pub fn get(&self, key: u128) -> Vec<u32> {
        self.range(key, key)
    }

    /// The entry with the smallest key, if any.
    pub fn min_entry(&self) -> Option<(u128, u32)> {
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = children[0];
        }
        let mut cur = Some(n);
        while let Some(id) = cur {
            let Node::Leaf { keys, vals, next } = &self.nodes[id] else {
                unreachable!()
            };
            if let (Some(k), Some(&v)) = (keys.first(), vals.first()) {
                return Some((k.0, v));
            }
            cur = *next;
        }
        None
    }

    /// The entry with the largest key, if any (leaf-chain walk; the chain
    /// has no back pointers, so this is O(leaves) — fine for the aggregate
    /// path, which runs once per query).
    pub fn max_entry(&self) -> Option<(u128, u32)> {
        let mut best = None;
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = *children.last().unwrap();
        }
        // The rightmost leaf by descent holds the max directly.
        if let Node::Leaf { keys, vals, .. } = &self.nodes[n] {
            if let (Some(k), Some(&v)) = (keys.last(), vals.last()) {
                best = Some((k.0, v));
            }
        }
        best
    }

    /// All `(key, value)` entries in key order (leaf-chain walk).
    pub fn iter(&self) -> Vec<(u128, u32)> {
        let mut out = Vec::with_capacity(self.len);
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n] {
            n = children[0];
        }
        let mut cur = Some(n);
        while let Some(id) = cur {
            let Node::Leaf { keys, vals, next } = &self.nodes[id] else {
                unreachable!()
            };
            out.extend(keys.iter().map(|k| k.0).zip(vals.iter().copied()));
            cur = *next;
        }
        out
    }

    /// The multiset histogram of keys: `(key, occurrence-count)` in key
    /// order. This is exactly what a frequency-based attacker reads off the
    /// value index (§3.3).
    pub fn key_histogram(&self) -> Vec<(u128, u64)> {
        let mut out: Vec<(u128, u64)> = Vec::new();
        for (k, _) in self.iter() {
            match out.last_mut() {
                Some((lk, c)) if *lk == k => *c += 1,
                _ => out.push((k, 1)),
            }
        }
        out
    }

    /// Checks structural invariants; returns a description of the first
    /// violation. Used by unit and property tests.
    pub fn validate(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        self.validate_rec(self.root, None, None, 1, &mut leaf_depths)?;
        if leaf_depths.windows(2).any(|w| w[0] != w[1]) {
            return Err("leaves at different depths".into());
        }
        let total: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { keys, .. } => keys.len(),
                Node::Internal { .. } => 0,
            })
            .sum();
        // Unreachable nodes would break this equality.
        let reachable = self.iter().len();
        if total != reachable || reachable != self.len {
            return Err(format!(
                "entry accounting broken: stored={total} reachable={reachable} len={}",
                self.len
            ));
        }
        Ok(())
    }

    fn validate_rec(
        &self,
        n: usize,
        lo: Option<K>,
        hi: Option<K>,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
    ) -> Result<(), String> {
        match &self.nodes[n] {
            Node::Leaf { keys, vals, .. } => {
                if keys.len() != vals.len() {
                    return Err("leaf key/val length mismatch".into());
                }
                if keys.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("leaf keys not strictly sorted".into());
                }
                for &k in keys {
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                        return Err("leaf key outside separator bounds".into());
                    }
                }
                leaf_depths.push(depth);
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("internal fanout mismatch".into());
                }
                if keys.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("internal keys not strictly sorted".into());
                }
                for (i, &c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    self.validate_rec(c, clo, chi, depth + 1, leaf_depths)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = BTree::new();
        t.insert(10, 1);
        t.insert(20, 2);
        t.insert(10, 3);
        assert_eq!(t.len(), 3);
        let mut v = t.get(10);
        v.sort();
        assert_eq!(v, [1, 3]);
        assert!(t.get(15).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn range_scan() {
        let mut t = BTree::new();
        for i in 0..100u32 {
            t.insert(i as u128 * 10, i);
        }
        let r = t.range(250, 400);
        assert_eq!(r, (25..=40).collect::<Vec<u32>>());
        assert!(t.range(5, 5).is_empty());
        assert_eq!(t.range(0, 0), [0]);
        assert!(t.range(10, 5).is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn splits_maintain_invariants() {
        let mut t = BTree::with_order(3);
        for i in 0..500u32 {
            t.insert((i * 7919 % 1000) as u128, i);
            t.validate().unwrap();
        }
        assert_eq!(t.len(), 500);
        assert!(t.height() > 2);
    }

    #[test]
    fn descending_and_duplicate_heavy() {
        let mut t = BTree::with_order(4);
        for i in (0..300u32).rev() {
            t.insert((i % 10) as u128, i);
        }
        t.validate().unwrap();
        assert_eq!(t.get(3).len(), 30);
        assert_eq!(t.range(0, 9).len(), 300);
    }

    #[test]
    fn iter_sorted() {
        let mut t = BTree::new();
        let keys = [5u128, 3, 9, 3, 7, 1, 9, 9];
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
        }
        let got: Vec<u128> = t.iter().into_iter().map(|(k, _)| k).collect();
        let mut want = keys.to_vec();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicates_preserve_insertion_order_within_key() {
        let mut t = BTree::with_order(3);
        for i in 0..50u32 {
            t.insert(42, i);
        }
        assert_eq!(t.get(42), (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn key_histogram_counts() {
        let mut t = BTree::new();
        for _ in 0..4 {
            t.insert(7, 0);
        }
        t.insert(9, 0);
        assert_eq!(t.key_histogram(), [(7, 4), (9, 1)]);
    }

    #[test]
    fn empty_tree() {
        let t = BTree::new();
        assert!(t.is_empty());
        assert!(t.range(0, u128::MAX).is_empty());
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn full_range_returns_everything() {
        let mut t = BTree::with_order(5);
        for i in 0..1000u32 {
            t.insert(u128::from(i) << 64, i);
        }
        assert_eq!(t.range(0, u128::MAX).len(), 1000);
    }

    #[test]
    #[should_panic(expected = "order must be at least 3")]
    fn tiny_order_rejected() {
        BTree::with_order(2);
    }

    /// `lo == hi` point probes are exact at every position, including the
    /// first/last key of each leaf and the gaps between leaves.
    #[test]
    fn point_ranges_at_every_leaf_boundary() {
        // Order 3 → many tiny leaves, so every few keys sit on a boundary.
        let mut t = BTree::with_order(3);
        for i in 0..64u32 {
            t.insert(u128::from(i) * 2, i);
        }
        t.validate().unwrap();
        assert!(t.height() > 2, "test needs a multi-level tree");
        for i in 0..64u32 {
            let k = u128::from(i) * 2;
            assert_eq!(t.range(k, k), [i], "point probe at key {k}");
            // Probes *between* keys are empty even when the gap straddles
            // two leaves.
            assert!(t.range(k + 1, k + 1).is_empty(), "gap probe at {}", k + 1);
        }
    }

    /// Ranges that start and end mid-leaf walk the whole leaf chain and
    /// stop exactly at `hi`.
    #[test]
    fn ranges_spanning_the_leaf_chain() {
        let mut t = BTree::with_order(4);
        for i in 0..200u32 {
            t.insert(u128::from(i), i);
        }
        assert!(t.height() > 2);
        assert_eq!(t.range(0, 199), (0..=200 - 1).collect::<Vec<u32>>());
        assert_eq!(t.range(3, 150), (3..=150).collect::<Vec<u32>>());
        // Endpoints absent from the tree clamp correctly.
        assert_eq!(t.range(150, u128::MAX), (150..200).collect::<Vec<u32>>());
    }

    /// A duplicate run longer than a leaf spans several leaves; a point
    /// probe must still return the entire run in insertion order.
    #[test]
    fn duplicate_run_spanning_leaves() {
        let mut t = BTree::with_order(3);
        t.insert(5, 1000);
        for i in 0..40u32 {
            t.insert(7, i);
        }
        t.insert(9, 2000);
        t.validate().unwrap();
        assert_eq!(t.range(7, 7), (0..40).collect::<Vec<u32>>());
        assert_eq!(t.range(5, 6), [1000]);
        assert_eq!(t.range(8, u128::MAX), [2000]);
    }

    /// Degenerate probes on an empty tree: point, reversed, and full-range
    /// scans all come back empty without touching a leaf chain.
    #[test]
    fn empty_tree_degenerate_probes() {
        let t = BTree::with_order(3);
        assert!(t.range(42, 42).is_empty());
        assert!(t.range(9, 3).is_empty());
        assert!(t.range(0, u128::MAX).is_empty());
        assert_eq!(t.min_entry(), None);
        assert_eq!(t.max_entry(), None);
    }
}
