//! The discontinuous structural interval (DSI) index (§5.1).
//!
//! Every node gets an interval `[lo, hi]` such that intervals of descendants
//! nest *strictly* inside their ancestors', with random-sized gaps between
//! (1) a parent's lower bound and its first child's, (2) adjacent children,
//! and (3) the last child's upper bound and the parent's. The gaps are what
//! make the index *discontinuous*: when the server sees a single interval in
//! the DSI table it cannot tell whether it labels one node or a group of
//! adjacent nodes that were merged (Theorem 5.1).
//!
//! Two constructions are provided:
//!
//! * [`DsiLabeling::assign`] — the production labeling over `u64` positions:
//!   a DFS counter that advances by a random gap before and after every
//!   node. This is order-isomorphic to the paper's real-valued scheme and
//!   immune to the float-resolution collapse the literal formula suffers on
//!   deep, high-fanout documents (see DESIGN.md §3).
//! * [`assign_real`] — the paper-literal Figure 3 formula over `f64`, with
//!   per-child random weights `w¹, w² ∈ (0, 0.5)`; used for demonstrations
//!   and for cross-checking the integer labeling on small documents.
//! * [`DsiLabeling::assign_continuous`] — the classic gap-free interval
//!   labeling (Al-Khalifa et al. \[4\]) used by the ablation experiment to
//!   show the information leak the paper describes.

use exq_xml::{Document, NodeId};
use rand::Rng;

/// A structural interval. Invariant: `lo < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    pub lo: u64,
    pub hi: u64,
}

impl Interval {
    pub fn new(lo: u64, hi: u64) -> Self {
        debug_assert!(lo < hi);
        Self { lo, hi }
    }

    /// Strict containment: `self` is a proper ancestor interval of `other`.
    #[inline]
    pub fn contains(&self, other: &Interval) -> bool {
        self.lo < other.lo && other.hi < self.hi
    }

    /// Containment or equality.
    #[inline]
    pub fn covers(&self, other: &Interval) -> bool {
        self == other || self.contains(other)
    }

    /// Merges two intervals into their span (used for same-tag grouping).
    pub fn span(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// A complete labeling of a document.
///
/// ```
/// use exq_index::dsi::DsiLabeling;
/// use exq_xml::Document;
/// use rand::{rngs::StdRng, SeedableRng};
/// let doc = Document::parse("<r><a/><b/></r>").unwrap();
/// let l = DsiLabeling::assign(&doc, &mut StdRng::seed_from_u64(1));
/// let root = l.interval(doc.root().unwrap()).unwrap();
/// let a = l.interval(doc.elements_by_tag("a")[0]).unwrap();
/// assert!(root.contains(&a)); // ancestors strictly contain descendants
/// l.validate(&doc).unwrap();  // and positive gaps separate everything
/// ```
#[derive(Debug, Clone)]
pub struct DsiLabeling {
    /// Interval per arena slot; `None` for detached nodes.
    intervals: Vec<Option<Interval>>,
}

/// Maximum random gap inserted between structural events (in stride units).
const MAX_GAP: u64 = 16;

/// Default stride: each gap unit spans this many label positions, leaving
/// room inside every gap for later subtree insertions (update support).
pub const UPDATE_STRIDE: u64 = 1 << 20;

impl DsiLabeling {
    /// Assigns DSI intervals to every live node (elements, attributes, and
    /// text leaves) with random gaps drawn from `rng`. Uses
    /// [`UPDATE_STRIDE`] so gaps can absorb future insertions.
    pub fn assign(doc: &Document, rng: &mut impl Rng) -> DsiLabeling {
        Self::assign_with_stride(doc, rng, UPDATE_STRIDE)
    }

    /// Assigns with an explicit gap stride (`1` = densest labeling).
    pub fn assign_with_stride(doc: &Document, rng: &mut impl Rng, stride: u64) -> DsiLabeling {
        let mut intervals = vec![None; doc_arena_len(doc)];
        let mut counter: u64 = 0;
        if let Some(root) = doc.root() {
            label(doc, root, &mut counter, rng, &mut intervals, stride.max(1));
        }
        DsiLabeling { intervals }
    }

    /// Labels a standalone fragment so that every assigned position falls
    /// strictly inside the open range `(slot_lo, slot_hi)` — the mechanism
    /// behind subtree insertion: the fragment's intervals nest into an
    /// existing gap without relabeling anything else. Returns `None` when
    /// the slot is too narrow for the fragment.
    pub fn assign_in_slot(
        doc: &Document,
        rng: &mut impl Rng,
        slot_lo: u64,
        slot_hi: u64,
    ) -> Option<DsiLabeling> {
        let events = 2 * doc.len() as u64 + 2;
        let width = slot_hi.checked_sub(slot_lo)?.checked_sub(1)?;
        if width < events {
            return None;
        }
        // Budget the fragment to ~1/16 of the slot (in expectation ~1/32:
        // gaps average MAX_GAP/2), so repeated insertions into the same gap
        // decay geometrically instead of halving it — hundreds of inserts
        // fit before the slot runs dry.
        let stride = (width / (events * MAX_GAP * 16)).max(1);
        if width / stride < events {
            return None;
        }
        let mut intervals = vec![None; doc_arena_len(doc)];
        let mut counter: u64 = slot_lo;
        if let Some(root) = doc.root() {
            label(doc, root, &mut counter, rng, &mut intervals, stride);
        }
        (counter < slot_hi).then_some(DsiLabeling { intervals })
    }

    /// The continuous (gap-free) labeling of the ablation baseline: the DFS
    /// counter advances by exactly one per structural event, so sibling
    /// intervals are adjacent and grouping becomes detectable.
    pub fn assign_continuous(doc: &Document) -> DsiLabeling {
        let mut intervals = vec![None; doc_arena_len(doc)];
        let mut counter: u64 = 0;
        if let Some(root) = doc.root() {
            let mut no_rng = rand::rngs::mock::StepRng::new(0, 0);
            label(doc, root, &mut counter, &mut no_rng, &mut intervals, 0);
        }
        DsiLabeling { intervals }
    }

    /// The interval of a node, if the node was live at labeling time.
    pub fn interval(&self, id: NodeId) -> Option<Interval> {
        self.intervals.get(id.index()).copied().flatten()
    }

    /// Every labeled `(node, interval)` pair in document order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Interval)> + '_ {
        self.intervals
            .iter()
            .enumerate()
            .filter_map(|(i, iv)| iv.map(|iv| (NodeId(i as u32), iv)))
    }

    /// Validates the DSI invariants over the document; returns a violation
    /// description if any. Used by tests and the experiment harness.
    pub fn validate(&self, doc: &Document) -> Result<(), String> {
        for id in doc.iter() {
            let iv = self
                .interval(id)
                .ok_or_else(|| format!("node {id} unlabeled"))?;
            if iv.lo >= iv.hi {
                return Err(format!("degenerate interval at {id}"));
            }
            let mut prev_hi = iv.lo;
            for c in doc.all_children(id) {
                if !doc.is_live(c) {
                    continue;
                }
                let civ = self
                    .interval(c)
                    .ok_or_else(|| format!("child {c} unlabeled"))?;
                if civ.lo <= prev_hi {
                    return Err(format!("missing gap before child {c}"));
                }
                prev_hi = civ.hi;
            }
            if prev_hi >= iv.hi {
                return Err(format!("missing gap after last child of {id}"));
            }
        }
        Ok(())
    }
}

fn doc_arena_len(doc: &Document) -> usize {
    // NodeIds index the arena; take 1 + max live id.
    doc.iter().map(|n| n.index() + 1).max().unwrap_or(0)
}

fn label(
    doc: &Document,
    id: NodeId,
    counter: &mut u64,
    rng: &mut impl Rng,
    out: &mut Vec<Option<Interval>>,
    stride: u64,
) {
    *counter += gap(rng, stride);
    let lo = *counter;
    for c in doc.all_children(id) {
        if doc.is_live(c) {
            label(doc, c, counter, rng, out, stride);
        }
    }
    *counter += gap(rng, stride);
    let hi = *counter;
    if id.index() >= out.len() {
        out.resize(id.index() + 1, None);
    }
    out[id.index()] = Some(Interval::new(lo, hi));
}

/// A random gap; `stride == 0` means the continuous (gap-free) labeling.
fn gap(rng: &mut impl Rng, stride: u64) -> u64 {
    if stride == 0 {
        1
    } else {
        rng.gen_range(1..=MAX_GAP) * stride
    }
}

/// The paper-literal Figure 3 construction over `f64`.
///
/// The root gets `[0, 1]`; the interval of child `i` (1-based) of a node
/// with interval `[min, max]` and `N` children is
/// `[min + (2i−1)d − w¹ᵢd,  min + 2i·d + w²ᵢd]` with `d = (max−min)/(2N+1)`
/// and fresh random weights `w¹ᵢ, w²ᵢ ∈ (0, 0.5)`.
///
/// Returns `None` entries for detached nodes. Only suitable for small
/// documents: `d` shrinks geometrically with depth and fanout and drops
/// below `f64` resolution quickly (which is why the production labeling is
/// integer-based).
pub fn assign_real(doc: &Document, rng: &mut impl Rng) -> Vec<Option<(f64, f64)>> {
    let mut out = vec![None; doc_arena_len(doc)];
    if let Some(root) = doc.root() {
        out[root.index()] = Some((0.0, 1.0));
        label_real(doc, root, (0.0, 1.0), rng, &mut out);
    }
    out
}

fn label_real(
    doc: &Document,
    id: NodeId,
    (min, max): (f64, f64),
    rng: &mut impl Rng,
    out: &mut Vec<Option<(f64, f64)>>,
) {
    let children: Vec<NodeId> = doc.all_children(id).filter(|&c| doc.is_live(c)).collect();
    let n = children.len();
    if n == 0 {
        return;
    }
    let d = (max - min) / (2.0 * n as f64 + 1.0);
    for (idx, &c) in children.iter().enumerate() {
        let i = (idx + 1) as f64;
        let w1: f64 = rng.gen_range(0.0..0.5);
        let w2: f64 = rng.gen_range(0.0..0.5);
        let lo = min + (2.0 * i - 1.0) * d - w1 * d;
        let hi = min + 2.0 * i * d + w2 * d;
        out[c.index()] = Some((lo, hi));
        label_real(doc, c, (lo, hi), rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn doc() -> Document {
        Document::parse(
            r#"<hospital><patient id="1"><pname>Betty</pname><SSN>763895</SSN></patient>
               <patient id="2"><pname>Matt</pname></patient></hospital>"#,
        )
        .unwrap()
    }

    #[test]
    fn labeling_validates() {
        let d = doc();
        let mut rng = StdRng::seed_from_u64(3);
        let l = DsiLabeling::assign(&d, &mut rng);
        l.validate(&d).unwrap();
    }

    #[test]
    fn ancestor_intervals_contain_descendants() {
        let d = doc();
        let mut rng = StdRng::seed_from_u64(3);
        let l = DsiLabeling::assign(&d, &mut rng);
        for node in d.iter() {
            let iv = l.interval(node).unwrap();
            for anc in d.ancestors(node) {
                let av = l.interval(anc).unwrap();
                assert!(av.contains(&iv), "ancestor {anc} !⊃ {node}");
            }
        }
    }

    #[test]
    fn unrelated_intervals_disjoint() {
        let d = doc();
        let mut rng = StdRng::seed_from_u64(3);
        let l = DsiLabeling::assign(&d, &mut rng);
        let patients = d.elements_by_tag("patient");
        let (a, b) = (
            l.interval(patients[0]).unwrap(),
            l.interval(patients[1]).unwrap(),
        );
        assert!(a.hi < b.lo || b.hi < a.lo);
    }

    #[test]
    fn gaps_exist_between_siblings() {
        let d = doc();
        let mut rng = StdRng::seed_from_u64(3);
        let l = DsiLabeling::assign(&d, &mut rng);
        let patients = d.elements_by_tag("patient");
        let (a, b) = (
            l.interval(patients[0]).unwrap(),
            l.interval(patients[1]).unwrap(),
        );
        assert!(b.lo - a.hi >= 1, "no sibling gap");
    }

    #[test]
    fn continuous_labeling_is_adjacent() {
        let d = Document::parse("<r><a/><b/><c/></r>").unwrap();
        let l = DsiLabeling::assign_continuous(&d);
        let root = d.root().unwrap();
        let kids: Vec<Interval> = d
            .node(root)
            .children()
            .iter()
            .map(|&c| l.interval(c).unwrap())
            .collect();
        for w in kids.windows(2) {
            assert_eq!(w[1].lo - w[0].hi, 1, "continuous labels must be adjacent");
        }
        // Continuous labels still nest correctly — the leak they cause is
        // about grouping detectability, demonstrated in experiment E11.
        l.validate(&d).unwrap();
    }

    #[test]
    fn detached_nodes_unlabeled() {
        let mut d = doc();
        let patients = d.elements_by_tag("patient");
        d.detach(patients[1]);
        let mut rng = StdRng::seed_from_u64(3);
        let l = DsiLabeling::assign(&d, &mut rng);
        assert!(l.interval(patients[1]).is_none());
        l.validate(&d).unwrap();
    }

    #[test]
    fn real_formula_produces_nested_intervals() {
        let d = doc();
        let mut rng = StdRng::seed_from_u64(5);
        let real = assign_real(&d, &mut rng);
        for node in d.iter() {
            let (lo, hi) = real[node.index()].unwrap();
            assert!(lo < hi);
            for anc in d.ancestors(node) {
                let (alo, ahi) = real[anc.index()].unwrap();
                assert!(alo < lo && hi < ahi, "figure-3 nesting violated");
            }
        }
        // Root is [0, 1] per the paper.
        assert_eq!(real[d.root().unwrap().index()].unwrap(), (0.0, 1.0));
    }

    #[test]
    fn real_and_integer_labelings_are_order_isomorphic() {
        let d = doc();
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(9);
        let real = assign_real(&d, &mut rng1);
        let int = DsiLabeling::assign(&d, &mut rng2);
        let nodes: Vec<NodeId> = d.iter().collect();
        for &x in &nodes {
            for &y in &nodes {
                let (rx, ry) = (real[x.index()].unwrap(), real[y.index()].unwrap());
                let (ix, iy) = (int.interval(x).unwrap(), int.interval(y).unwrap());
                let real_contains = rx.0 < ry.0 && ry.1 < rx.1;
                let int_contains = ix.contains(&iy);
                assert_eq!(real_contains, int_contains, "containment mismatch {x} {y}");
            }
        }
    }

    #[test]
    fn interval_ops() {
        let a = Interval::new(1, 10);
        let b = Interval::new(3, 5);
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert!(a.covers(&a));
        assert!(!a.contains(&a));
        assert_eq!(b.span(&Interval::new(7, 9)), Interval::new(3, 9));
    }

    #[test]
    fn empty_document() {
        let d = Document::new();
        let mut rng = StdRng::seed_from_u64(0);
        let l = DsiLabeling::assign(&d, &mut rng);
        assert_eq!(l.iter().count(), 0);
        l.validate(&d).unwrap();
    }

    #[test]
    fn deep_document_no_collapse() {
        // 200 levels deep — far beyond where the f64 formula collapses.
        let mut xml = String::new();
        for _ in 0..200 {
            xml.push_str("<d>");
        }
        xml.push('x');
        for _ in 0..200 {
            xml.push_str("</d>");
        }
        let d = Document::parse(&xml).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let l = DsiLabeling::assign(&d, &mut rng);
        l.validate(&d).unwrap();
    }
}
