//! Server-side metadata structures for the encrypted-XML system.
//!
//! * [`dsi`] — the discontinuous structural interval (DSI) index of §5.1:
//!   randomized-gap interval labels for tree nodes, plus the paper-literal
//!   real-valued construction of Figure 3 and the *continuous* labeling used
//!   as the ablation baseline;
//! * [`btree`] — an in-memory B-tree with duplicate keys and range scans,
//!   the carrier of the OPESS value index (§5.2);
//! * [`sjoin`] — stack-based structural-join operators over intervals
//!   (ancestor–descendant, and parent–child derived from interval nesting,
//!   §5.1/§6.2);
//! * [`tables`] — the DSI index table and encryption block table of §5.1.1;
//! * [`paged`] — page-aware posting/block access: the out-of-core store's
//!   record-id namespace and the delta-varint posting-list codec.

pub mod btree;
pub mod dsi;
pub mod paged;
pub mod sjoin;
pub mod tables;

pub use btree::BTree;
pub use dsi::{DsiLabeling, Interval};
pub use tables::{BlockTable, DsiIndexTable};
