//! Page-aware access to postings and blocks: the record-id namespace the
//! out-of-core store uses, and the compact interval codec posting lists are
//! stored in.
//!
//! A hosted database's payload lives in an [`exq_store::PagedStore`] as
//! opaque records. This module fixes the id namespace:
//!
//! | record            | id                    |
//! |-------------------|-----------------------|
//! | database metadata | `0`                   |
//! | sealed block *b*  | `(1 << 32) \| b`      |
//! | posting list *k*  | `(2 << 32) \| k`      |
//!
//! and the posting-list encoding: a varint count followed by one
//! `(zigzag-delta lo, varint width)` pair per interval, delta-coded against
//! the previous interval's `lo`. Lists arrive in join order (ascending
//! `lo`, ties broken descending `hi`), so deltas are small and the encoding
//! is typically a few bytes per interval instead of sixteen; the zigzag
//! makes it lossless for *any* order. Decoding preserves order exactly, so
//! a sealed table rehydrates without resorting.

use crate::dsi::Interval;
use exq_store::{PagedStore, StoreError};

/// Record id of the database metadata record.
pub const REC_META: u64 = 0;

/// Record id holding sealed block `b`'s ciphertext record.
pub fn block_record_id(block_id: u32) -> u64 {
    (1u64 << 32) | block_id as u64
}

/// Record id holding posting list `k` (the `k`-th tag in sorted order).
pub fn posting_record_id(k: u32) -> u64 {
    (2u64 << 32) | k as u64
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or("varint: truncated")?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err("varint: overflow".into());
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err("varint: too long".into());
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a posting list. Order-preserving and lossless for any input
/// order; most compact when the list is sorted by `lo`.
pub fn encode_postings(list: &[Interval]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + list.len() * 4);
    push_varint(&mut out, list.len() as u64);
    let mut prev_lo = 0i64;
    for iv in list {
        push_varint(&mut out, zigzag(iv.lo as i64 - prev_lo));
        push_varint(&mut out, iv.hi - iv.lo);
        prev_lo = iv.lo as i64;
    }
    out
}

/// Decodes a posting list, restoring the encoded order exactly.
pub fn decode_postings(bytes: &[u8]) -> Result<Vec<Interval>, String> {
    let mut pos = 0usize;
    let count = read_varint(bytes, &mut pos)?;
    if count > (bytes.len() as u64).saturating_sub(pos as u64) {
        // Each interval costs at least 2 bytes; an impossible count is
        // corruption, not an allocation request.
        return Err(format!("postings: impossible count {count}"));
    }
    let mut list = Vec::with_capacity(count as usize);
    let mut prev_lo = 0i64;
    for _ in 0..count {
        let lo = prev_lo + unzigzag(read_varint(bytes, &mut pos)?);
        let width = read_varint(bytes, &mut pos)?;
        if lo < 0 || width == 0 {
            return Err(format!(
                "postings: invalid interval (lo {lo}, width {width})"
            ));
        }
        prev_lo = lo;
        list.push(Interval {
            lo: lo as u64,
            hi: lo as u64 + width,
        });
    }
    if pos != bytes.len() {
        return Err("postings: trailing bytes".into());
    }
    Ok(list)
}

/// Loads and decodes posting list `k` from a store, pinning its pages
/// through the buffer pool.
pub fn load_postings(store: &PagedStore, k: u32) -> Result<Vec<Interval>, StoreError> {
    let raw = store.get(posting_record_id(k))?;
    decode_postings(&raw).map_err(|e| StoreError::Corrupt(format!("posting list {k}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn record_id_namespaces_are_disjoint() {
        assert_ne!(REC_META, block_record_id(0));
        assert_ne!(block_record_id(0), posting_record_id(0));
        assert_ne!(block_record_id(u32::MAX), posting_record_id(0));
        assert_eq!(block_record_id(7) & 0xFFFF_FFFF, 7);
    }

    #[test]
    fn roundtrip_simple() {
        let list = vec![iv(10, 90), iv(10, 20), iv(50, 60)];
        let enc = encode_postings(&list);
        assert_eq!(decode_postings(&enc).unwrap(), list);
        assert!(enc.len() < 16 * list.len(), "delta coding should shrink");
        assert_eq!(decode_postings(&encode_postings(&[])).unwrap(), vec![]);
    }

    #[test]
    fn roundtrip_randomized() {
        let mut rng = StdRng::seed_from_u64(0x9A6ED);
        for _ in 0..200 {
            let n = rng.gen_range(0..64);
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let lo = rng.gen_range(0..1u64 << 40);
                let width = rng.gen_range(1..1u64 << 20);
                list.push(iv(lo, lo + width));
            }
            // Unsorted input (zigzag handles descending deltas too).
            let enc = encode_postings(&list);
            assert_eq!(decode_postings(&enc).unwrap(), list);
        }
    }

    #[test]
    fn corrupt_encodings_are_errors_not_garbage() {
        let list = vec![iv(5, 9), iv(7, 30)];
        let enc = encode_postings(&list);
        // Truncation at every boundary.
        for cut in 0..enc.len() {
            assert!(decode_postings(&enc[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing junk.
        let mut padded = enc.clone();
        padded.push(0);
        assert!(decode_postings(&padded).is_err());
        // Absurd count.
        let mut absurd = Vec::new();
        push_varint(&mut absurd, u64::MAX);
        assert!(decode_postings(&absurd).is_err());
    }

    #[test]
    fn load_postings_via_store() {
        let dir = std::env::temp_dir().join(format!("exq-index-paged-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = PagedStore::create(
            &dir,
            exq_store::StoreOptions {
                page_size: exq_store::MIN_PAGE_SIZE,
                cache_bytes: 4 * exq_store::MIN_PAGE_SIZE,
            },
        )
        .unwrap();
        // A list long enough to span several tiny pages.
        let list: Vec<Interval> = (0..500u64).map(|i| iv(i * 7, i * 7 + 3)).collect();
        store
            .checkpoint(&[(posting_record_id(3), Some(encode_postings(&list)))], 0)
            .unwrap();
        assert_eq!(load_postings(&store, 3).unwrap(), list);
        assert!(load_postings(&store, 4).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
