//! Property tests for the index substrate.

use exq_index::dsi::{DsiLabeling, Interval};
use exq_index::sjoin::{
    join_anc_desc, semijoin_anc, semijoin_desc, sort_intervals, IntervalUniverse,
};
use exq_index::BTree;
use exq_xml::Document;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// B-tree behaves like a sorted multiset reference model.
    #[test]
    fn btree_matches_model(
        order in 3usize..12,
        ops in proptest::collection::vec((any::<u8>(), any::<u32>()), 0..300),
        (qlo, qhi) in (any::<u8>(), any::<u8>()),
    ) {
        let mut tree = BTree::with_order(order);
        let mut model: Vec<(u128, u32)> = Vec::new();
        for (k, v) in ops {
            tree.insert(k as u128, v);
            model.push((k as u128, v));
        }
        tree.validate().unwrap();
        model.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(tree.len(), model.len());
        // Full iteration matches the sorted model's keys.
        let got_keys: Vec<u128> = tree.iter().into_iter().map(|(k, _)| k).collect();
        let want_keys: Vec<u128> = model.iter().map(|&(k, _)| k).collect();
        prop_assert_eq!(got_keys, want_keys);
        // Range scans match model filtering (as multisets).
        let (lo, hi) = (qlo.min(qhi) as u128, qlo.max(qhi) as u128);
        let mut got = tree.range(lo, hi);
        got.sort_unstable();
        let mut want: Vec<u32> = model
            .iter()
            .filter(|&&(k, _)| k >= lo && k <= hi)
            .map(|&(_, v)| v)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

/// Random small documents via nested XML strings.
fn doc_strategy() -> impl Strategy<Value = Document> {
    proptest::collection::vec(0u8..5, 1..40).prop_map(|shape| {
        let mut d = Document::new();
        let root = d.add_element(None, "r");
        let mut stack = vec![root];
        for s in shape {
            let top = *stack.last().unwrap();
            match s {
                0 | 1 => {
                    let el = d.add_element(Some(top), if s == 0 { "x" } else { "y" });
                    stack.push(el);
                }
                2 => {
                    d.add_text(top, "t");
                }
                3 => {
                    d.add_attr(top, "k", "v");
                }
                _ => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
            }
        }
        d
    })
}

proptest! {
    /// DSI labeling always satisfies the gap/nesting invariants, and the
    /// interval order mirrors the tree's ancestor relation exactly.
    #[test]
    fn dsi_invariants(d in doc_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = DsiLabeling::assign(&d, &mut rng);
        l.validate(&d).unwrap();
        let nodes: Vec<_> = d.iter().collect();
        for &x in &nodes {
            for &y in &nodes {
                let ix = l.interval(x).unwrap();
                let iy = l.interval(y).unwrap();
                let is_anc = d.ancestors(y).contains(&x);
                prop_assert_eq!(ix.contains(&iy), is_anc);
            }
        }
    }

    /// The structural join over DSI intervals equals the tree-walk truth.
    #[test]
    fn sjoin_matches_tree(d in doc_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = DsiLabeling::assign(&d, &mut rng);
        let xs = d.elements_by_tag("x");
        let ys = d.elements_by_tag("y");
        let mut anc: Vec<Interval> = xs.iter().map(|&n| l.interval(n).unwrap()).collect();
        let mut desc: Vec<Interval> = ys.iter().map(|&n| l.interval(n).unwrap()).collect();
        sort_intervals(&mut anc);
        sort_intervals(&mut desc);
        let pairs = join_anc_desc(&anc, &desc).len();
        let truth = xs
            .iter()
            .map(|&x| {
                ys.iter()
                    .filter(|&&y| d.ancestors(y).contains(&x))
                    .count()
            })
            .sum::<usize>();
        prop_assert_eq!(pairs, truth);
        // Semijoins agree with the pair join.
        let da = semijoin_desc(&anc, &desc).len();
        let truth_d = ys
            .iter()
            .filter(|&&y| d.ancestors(y).iter().any(|a| xs.contains(a)))
            .count();
        prop_assert_eq!(da, truth_d);
        let aa = semijoin_anc(&anc, &desc).len();
        let truth_a = xs
            .iter()
            .filter(|&&x| ys.iter().any(|&y| d.ancestors(y).contains(&x)))
            .count();
        prop_assert_eq!(aa, truth_a);
    }

    /// The interval universe's parent pointers equal the tree's parents.
    #[test]
    fn universe_parents_match_tree(d in doc_strategy(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let l = DsiLabeling::assign(&d, &mut rng);
        let intervals: Vec<Interval> = d.iter().map(|n| l.interval(n).unwrap()).collect();
        let u = IntervalUniverse::new(intervals);
        for n in d.iter() {
            let iv = l.interval(n).unwrap();
            let expected = d.node(n).parent().map(|p| l.interval(p).unwrap());
            prop_assert_eq!(u.tightest_container(&iv), expected);
        }
    }
}
