//! Property tests for the cryptographic substrate.

use exq_crypto::bignum::{binomial, factorial, multinomial, BigUint};
use exq_crypto::ope::{f64_to_ordered_u64, OpeKey};
use exq_crypto::opess::RangeOp;
use exq_crypto::{open_block, seal_block, ChaCha20, OpessPlan, TagCipher};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// ChaCha20 keystream application is an involution.
    #[test]
    fn chacha_roundtrip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(), data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let c = ChaCha20::new(&key, &nonce);
        let mut buf = data.clone();
        c.apply_keystream(3, &mut buf);
        c.apply_keystream(3, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Sealed blocks open back to the exact plaintext; tampering is caught.
    #[test]
    fn block_seal_open(key in any::<[u8; 32]>(), data in proptest::collection::vec(any::<u8>(), 0..200), flip in any::<(usize, u8)>()) {
        let b = seal_block(&key, 9, [4u8; 12], &data);
        prop_assert_eq!(open_block(&key, &b).unwrap(), data.clone());
        if !b.ciphertext.is_empty() && flip.1 != 0 {
            let mut tampered = b.clone();
            let idx = flip.0 % tampered.ciphertext.len();
            tampered.ciphertext[idx] ^= flip.1;
            prop_assert!(open_block(&key, &tampered).is_err());
        }
    }

    /// OPE is strictly monotone on arbitrary pairs.
    #[test]
    fn ope_monotone(key in any::<[u8; 32]>(), a in any::<u64>(), b in any::<u64>()) {
        let k = OpeKey::new(key);
        let (ca, cb) = (k.encrypt(a), k.encrypt(b));
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(ca < cb),
            std::cmp::Ordering::Equal => prop_assert_eq!(ca, cb),
            std::cmp::Ordering::Greater => prop_assert!(ca > cb),
        }
    }

    /// OPE decrypt inverts encrypt.
    #[test]
    fn ope_invertible(key in any::<[u8; 32]>(), x in any::<u64>()) {
        let k = OpeKey::new(key);
        prop_assert_eq!(k.decrypt(k.encrypt(x)), Some(x));
    }

    /// The f64 → u64 embedding preserves order for finite values.
    #[test]
    fn f64_embedding_monotone(a in -1e300f64..1e300, b in -1e300f64..1e300) {
        let (ua, ub) = (f64_to_ordered_u64(a), f64_to_ordered_u64(b));
        match a.partial_cmp(&b).unwrap() {
            std::cmp::Ordering::Less => prop_assert!(ua < ub),
            std::cmp::Ordering::Equal => prop_assert_eq!(ua, ub),
            std::cmp::Ordering::Greater => prop_assert!(ua > ub),
        }
    }

    /// Tag encryption is deterministic and collision-free over small sets.
    #[test]
    fn tag_cipher_injective(key in any::<[u8; 32]>(), tags in proptest::collection::hash_set("[a-z]{1,8}", 1..12)) {
        let c = TagCipher::new(key);
        let encs: std::collections::HashSet<String> = tags.iter().map(|t| c.encrypt(t)).collect();
        prop_assert_eq!(encs.len(), tags.len());
    }

    /// OPESS invariants on random histograms: totals preserved by splitting
    /// (for counts ≥ 2), chunk frequencies flat, bands never straddle, and
    /// Eq-ranges select exactly the band.
    #[test]
    fn opess_invariants(
        seed in any::<u64>(),
        counts in proptest::collection::vec(2u32..40, 1..10),
    ) {
        let values: Vec<(f64, u32)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i * 3) as f64, c))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = OpessPlan::build(&values, OpeKey::new([7u8; 32]), &mut rng).unwrap();

        // totals preserved
        let total_in: u32 = counts.iter().sum();
        let total_out: u32 = plan.split_histogram().iter().sum();
        prop_assert_eq!(total_in, total_out);

        // flat frequencies
        let m = plan.m();
        for h in plan.split_histogram() {
            prop_assert!((m - 1..=m + 1).contains(&h));
        }

        // non-straddling + Eq exactness
        let mut prev_hi = None;
        for e in plan.entries() {
            let lo = e.chunks.first().unwrap().ciphertext;
            let hi = e.chunks.last().unwrap().ciphertext;
            if let Some(p) = prev_hi {
                prop_assert!(lo > p, "straddle at {}", e.plaintext);
            }
            prev_hi = Some(hi);
            let r = plan.translate(RangeOp::Eq, e.plaintext);
            for c in &e.chunks {
                prop_assert!(r.contains(c.ciphertext));
            }
        }
    }

    /// Pascal's identity: C(n,k) = C(n−1,k−1) + C(n−1,k).
    #[test]
    fn binomial_pascal(n in 1u64..80, k in 1u64..80) {
        let lhs = binomial(n, k);
        let rhs = binomial(n - 1, k - 1).add(&binomial(n - 1, k));
        prop_assert_eq!(lhs, rhs);
    }

    /// Multinomial consistency: multinomial([a,b]) = C(a+b, a).
    #[test]
    fn multinomial_two_parts(a in 0u64..50, b in 0u64..50) {
        prop_assert_eq!(multinomial(&[a, b]), binomial(a + b, a));
    }

    /// Factorial ratio: n! = n · (n−1)!.
    #[test]
    fn factorial_recurrence(n in 1u64..100) {
        prop_assert_eq!(factorial(n), factorial(n - 1).mul_u64(n));
    }

    /// Big integer add/mul agree with u128 on small values.
    #[test]
    fn bignum_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (ba, bb) = (BigUint::from(a), BigUint::from(b));
        prop_assert_eq!(ba.add(&bb), BigUint::from(a as u128 + b as u128));
        prop_assert_eq!(ba.mul(&bb), BigUint::from(a as u128 * b as u128));
        prop_assert_eq!(ba.mul_u64(b), BigUint::from(a as u128 * b as u128));
    }

    /// Decimal rendering round-trips through string parsing on u128 values.
    #[test]
    fn bignum_display_matches_u128(v in any::<u128>()) {
        prop_assert_eq!(BigUint::from(v).to_string(), v.to_string());
    }
}
