//! Keyed pseudo-random functions built on ChaCha20.
//!
//! The PRF maps arbitrary byte strings to pseudo-random output. It is used
//! for key derivation, OPE coin flipping, Vernam pad generation, and decoy
//! synthesis. Construction: absorb the input into a 12-byte nonce with a
//! simple Merkle–Damgård-style compression over ChaCha blocks, then emit
//! keystream. This is *not* a general-purpose MAC design, but it is a
//! perfectly serviceable PRF for a research system where the adversary model
//! is the curious server of the paper.

use crate::chacha::ChaCha20;

/// A keyed PRF.
#[derive(Clone)]
pub struct Prf {
    key: [u8; 32],
}

impl std::fmt::Debug for Prf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Prf(<key redacted>)")
    }
}

impl Prf {
    pub fn new(key: [u8; 32]) -> Self {
        Self { key }
    }

    /// Derives a fresh 32-byte subkey for a named purpose.
    pub fn derive_key(&self, purpose: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill(purpose.as_bytes(), &mut out);
        out
    }

    /// Fills `out` with PRF output for `input`.
    pub fn fill(&self, input: &[u8], out: &mut [u8]) {
        let nonce = self.absorb(input);
        let cipher = ChaCha20::new(&self.key, &nonce);
        for (i, chunk) in out.chunks_mut(64).enumerate() {
            let ks = cipher.block(i as u32);
            chunk.copy_from_slice(&ks[..chunk.len()]);
        }
    }

    /// PRF output as a u64.
    pub fn eval_u64(&self, input: &[u8]) -> u64 {
        let mut buf = [0u8; 8];
        self.fill(input, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// PRF output as a u128.
    pub fn eval_u128(&self, input: &[u8]) -> u128 {
        let mut buf = [0u8; 16];
        self.fill(input, &mut buf);
        u128::from_le_bytes(buf)
    }

    /// Compresses an arbitrary-length input to a 12-byte nonce by chaining
    /// ChaCha blocks over 32-byte input chunks.
    fn absorb(&self, input: &[u8]) -> [u8; 12] {
        let mut state = [0u8; 12];
        // Length prefix defends against trivial extension collisions.
        let mut first = [0u8; 12];
        first[..8].copy_from_slice(&(input.len() as u64).to_le_bytes());
        state = self.compress(&state, &first);
        let mut block = [0u8; 12];
        for chunk in input.chunks(12) {
            block[..chunk.len()].copy_from_slice(chunk);
            block[chunk.len()..].fill(0);
            state = self.compress(&state, &block);
        }
        state
    }

    fn compress(&self, state: &[u8; 12], block: &[u8; 12]) -> [u8; 12] {
        let mut nonce = [0u8; 12];
        for i in 0..12 {
            nonce[i] = state[i] ^ block[i];
        }
        let ks = ChaCha20::new(&self.key, &nonce).block(COMPRESS_COUNTER);
        let mut out = [0u8; 12];
        out.copy_from_slice(&ks[..12]);
        for i in 0..12 {
            out[i] ^= block[i];
        }
        out
    }
}

/// Domain-separation counter for the compression function, far away from the
/// sequential counters used for keystream output.
const COMPRESS_COUNTER: u32 = 0xFEED_BEEF;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = Prf::new([1u8; 32]);
        assert_eq!(p.eval_u64(b"hello"), p.eval_u64(b"hello"));
        assert_eq!(p.eval_u128(b"hello"), p.eval_u128(b"hello"));
    }

    #[test]
    fn input_sensitivity() {
        let p = Prf::new([1u8; 32]);
        assert_ne!(p.eval_u64(b"hello"), p.eval_u64(b"hellp"));
        assert_ne!(p.eval_u64(b""), p.eval_u64(b"\0"));
        assert_ne!(p.eval_u64(b"ab"), p.eval_u64(b"a\0"));
    }

    #[test]
    fn key_sensitivity() {
        let a = Prf::new([1u8; 32]);
        let b = Prf::new([2u8; 32]);
        assert_ne!(a.eval_u64(b"x"), b.eval_u64(b"x"));
    }

    #[test]
    fn derive_key_distinct_purposes() {
        let p = Prf::new([1u8; 32]);
        assert_ne!(p.derive_key("block"), p.derive_key("tag"));
        assert_eq!(p.derive_key("block"), p.derive_key("block"));
    }

    #[test]
    fn fill_lengths() {
        let p = Prf::new([5u8; 32]);
        let mut a = [0u8; 100];
        p.fill(b"in", &mut a);
        let mut b = [0u8; 100];
        p.fill(b"in", &mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn long_inputs() {
        let p = Prf::new([5u8; 32]);
        let long1 = vec![0x11u8; 1000];
        let mut long2 = long1.clone();
        long2[999] = 0x12;
        assert_ne!(p.eval_u64(&long1), p.eval_u64(&long2));
    }

    /// A crude avalanche sanity check: outputs over a counter sequence look
    /// roughly balanced per bit.
    #[test]
    fn output_bits_balanced() {
        let p = Prf::new([9u8; 32]);
        let n = 2000u64;
        let mut ones = [0u32; 64];
        for i in 0..n {
            let v = p.eval_u64(&i.to_le_bytes());
            for (b, c) in ones.iter_mut().enumerate() {
                *c += ((v >> b) & 1) as u32;
            }
        }
        for &c in &ones {
            let frac = c as f64 / n as f64;
            assert!((0.42..0.58).contains(&frac), "biased bit: {frac}");
        }
    }
}
