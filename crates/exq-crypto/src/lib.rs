//! From-scratch cryptographic substrate for the encrypted-XML system.
//!
//! Nothing here depends on external crypto crates; every primitive the paper
//! needs is implemented in this crate:
//!
//! * [`chacha`] — the ChaCha20 stream cipher (RFC 7539 core), used for block
//!   encryption and as the PRF underlying everything else;
//! * [`prf`] — keyed pseudo-random functions and key derivation;
//! * [`vernam`] — the deterministic fixed-width tag cipher used for element
//!   tags in the DSI index table and in client query translation (§5.1.1;
//!   the paper suggests a Vernam pad, but determinism forces pad reuse, so
//!   a keyed PRF realizes the same functional contract collision-free);
//! * [`ope`] — a lazy-sampled strictly-monotone order-preserving encryption
//!   function `u64 → u128` (the paper assumes an OPE function à la
//!   Agrawal et al. \[3\]);
//! * [`opess`] — Order-Preserving Encryption with Splitting and Scaling
//!   (§5.2): frequency-flattening value transformation for the B-tree index;
//! * [`block`] — authenticated sealing of serialized subtree blocks;
//! * [`bignum`] — exact big-integer combinatorics for the security theorems'
//!   candidate-database counts;
//! * [`keys`] — the client's key chain (master key → per-purpose subkeys).

pub mod bignum;
pub mod block;
pub mod chacha;
pub mod keys;
pub mod ope;
pub mod opess;
pub mod prf;
pub mod vernam;

pub use bignum::BigUint;
pub use block::{open_block, seal_block, BlockCryptError, SealedBlock};
pub use chacha::ChaCha20;
pub use keys::KeyChain;
pub use ope::OpeKey;
pub use opess::{OpessError, OpessPlan, RangeOp, ValueRange};
pub use prf::Prf;
pub use vernam::TagCipher;

/// The parallel query path shares sealed blocks and key material across
/// worker threads, so these types must stay `Send + Sync`. Breaking that
/// (e.g. by introducing `Rc` or interior mutability without a lock) is a
/// compile error here rather than a distant one in `exq-core`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SealedBlock>();
    assert_send_sync::<BlockCryptError>();
    assert_send_sync::<ChaCha20>();
    assert_send_sync::<KeyChain>();
    assert_send_sync::<OpeKey>();
    assert_send_sync::<OpessPlan>();
    assert_send_sync::<ValueRange>();
    assert_send_sync::<Prf>();
    assert_send_sync::<TagCipher>();
    assert_send_sync::<BigUint>();
};
