//! Minimal arbitrary-precision unsigned integers for exact candidate counts.
//!
//! The security theorems count candidate databases with multinomials and
//! binomials that overflow `u128` immediately (the paper calls them
//! "exponentially large"), so the analysis module needs exact big integers.
//! This implementation supports exactly the operations the counting needs:
//! construction, addition, small multiplication/division, comparison,
//! decimal rendering, and bit length.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian u64 limbs, no
/// trailing zero limbs; zero is the empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    pub fn one() -> Self {
        Self::from(1u64)
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self * k` for a small factor.
    pub fn mul_u64(&self, k: u64) -> BigUint {
        if k == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let prod = l as u128 * k as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Exact division by a small divisor; panics if the division has a
    /// remainder (counting formulas are always exact) or `k == 0`.
    pub fn div_exact_u64(&self, k: u64) -> BigUint {
        let (q, r) = self.div_rem_u64(k);
        assert_eq!(r, 0, "div_exact_u64 called with a non-divisor");
        q
    }

    /// Division with remainder by a small divisor.
    pub fn div_rem_u64(&self, k: u64) -> (BigUint, u64) {
        assert!(k != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | l as u128;
            out[i] = (cur / k as u128) as u64;
            rem = cur % k as u128;
        }
        let mut q = BigUint { limbs: out };
        q.trim();
        (q, rem as u64)
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u128;
        for (i, &ai) in a.iter().enumerate() {
            let sum = ai as u128 + b.get(i).copied().unwrap_or(0) as u128 + carry;
            out.push(sum as u64);
            carry = sum >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint { limbs: out }
    }

    /// Full multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Approximate log₁₀ — handy for reporting "exponentially large" counts.
    pub fn approx_log10(&self) -> f64 {
        if self.is_zero() {
            return f64::NEG_INFINITY;
        }
        // mantissa = top limb interpreted in [1, 2) · 2^lead, so
        // value ≈ mantissa_frac · 2^bits with mantissa_frac ∈ [0.5, 1).
        let bits = self.bits();
        let top = *self.limbs.last().unwrap();
        let lead = 64 - top.leading_zeros() as usize;
        let frac = top as f64 / 2f64.powi(lead as i32); // in [0.5, 1)
        frac.log10() + bits as f64 * std::f64::consts::LOG10_2
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `f64` (may saturate to infinity).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.limbs.iter().rev() {
            v = v * 2f64.powi(64) + l as f64;
        }
        v
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        let mut b = BigUint { limbs: vec![v] };
        b.trim();
        b
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        let mut b = BigUint {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        b.trim();
        b
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeatedly divide by 10^19 and render chunks.
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.into_iter().rev() {
            write!(f, "{c:019}")?;
        }
        Ok(())
    }
}

/// `n!` as a big integer.
pub fn factorial(n: u64) -> BigUint {
    let mut out = BigUint::one();
    for k in 2..=n {
        out = out.mul_u64(k);
    }
    out
}

/// Binomial coefficient `C(n, k)`, exact.
pub fn binomial(n: u64, k: u64) -> BigUint {
    if k > n {
        return BigUint::zero();
    }
    let k = k.min(n - k);
    let mut out = BigUint::one();
    for i in 0..k {
        out = out.mul_u64(n - i);
        out = out.div_exact_u64(i + 1);
    }
    out
}

/// Multinomial coefficient `(Σkᵢ)! / Πkᵢ!`, exact — the paper's count of
/// candidate plaintext→ciphertext mappings in Theorem 4.1.
///
/// ```
/// // The paper's worked example: (3+4+5)!/(3!·4!·5!) = 27720.
/// assert_eq!(exq_crypto::bignum::multinomial(&[3, 4, 5]).to_u64(), Some(27_720));
/// ```
pub fn multinomial(counts: &[u64]) -> BigUint {
    let mut out = BigUint::one();
    let mut total: u64 = 0;
    for &k in counts {
        total += k;
        // multiply by C(total, k)
        out = out.mul(&binomial(total, k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic() {
        let a = BigUint::from(12u64);
        assert_eq!(a.mul_u64(12).to_u64(), Some(144));
        assert_eq!(a.add(&BigUint::from(30u64)).to_u64(), Some(42));
        assert_eq!(a.div_exact_u64(4).to_u64(), Some(3));
        assert_eq!(a.div_rem_u64(5), (BigUint::from(2u64), 2));
    }

    #[test]
    fn zero_identities() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert_eq!(z.mul_u64(100), BigUint::zero());
        assert_eq!(z.add(&BigUint::from(5u64)).to_u64(), Some(5));
        assert_eq!(z.to_string(), "0");
        assert_eq!(z.bits(), 0);
    }

    #[test]
    fn carries_across_limbs() {
        let big = BigUint::from(u64::MAX);
        let sq = big.mul(&big);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let expected = BigUint::from((u64::MAX as u128) * (u64::MAX as u128));
        assert_eq!(sq, expected);
        assert_eq!(big.add(&BigUint::one()).bits(), 65);
    }

    #[test]
    fn display_large() {
        // 2^128 = 340282366920938463463374607431768211456
        let v = BigUint::from(u64::MAX).add(&BigUint::one());
        let sq = v.mul(&v);
        assert_eq!(sq.to_string(), "340282366920938463463374607431768211456");
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0).to_u64(), Some(1));
        assert_eq!(factorial(5).to_u64(), Some(120));
        assert_eq!(factorial(20).to_u64(), Some(2_432_902_008_176_640_000));
        // 25! needs more than 64 bits
        assert_eq!(factorial(25).to_string(), "15511210043330985984000000");
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2).to_u64(), Some(10));
        assert_eq!(binomial(10, 0).to_u64(), Some(1));
        assert_eq!(binomial(10, 10).to_u64(), Some(1));
        assert_eq!(binomial(10, 11).to_u64(), Some(0));
        // The paper's example: C(14, 4) = 1001
        assert_eq!(binomial(14, 4).to_u64(), Some(1001));
        assert_eq!(binomial(52, 26).to_string(), "495918532948104");
    }

    /// The paper's Theorem 4.1 example: (3+4+5)!/(3!·4!·5!) = 27720.
    #[test]
    fn multinomial_paper_example() {
        assert_eq!(multinomial(&[3, 4, 5]).to_u64(), Some(27_720));
    }

    #[test]
    fn multinomial_degenerate() {
        assert_eq!(multinomial(&[7]).to_u64(), Some(1));
        assert_eq!(multinomial(&[]).to_u64(), Some(1));
        assert_eq!(multinomial(&[1, 1, 1]).to_u64(), Some(6));
    }

    #[test]
    fn ordering() {
        let a = factorial(30);
        let b = factorial(31);
        assert!(a < b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(BigUint::from(2u64) > BigUint::one());
    }

    #[test]
    fn to_f64_monotone() {
        assert!(factorial(25).to_f64() > factorial(24).to_f64());
        assert!((BigUint::from(1000u64).to_f64() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(BigUint::from(255u64).bits(), 8);
        assert_eq!(BigUint::from(256u64).bits(), 9);
    }
}
