//! Encryption-block sealing.
//!
//! An encryption block is a serialized XML subtree (plus its decoy) that is
//! encrypted as a unit and stored on the server opaquely. We seal with
//! ChaCha20 plus a PRF-based authentication tag, and prepend a fixed header.
//! The header models the W3C XML-Encryption envelope overhead the paper
//! mentions in §7.4 (`EncryptionType`, `EncryptionMethod`, …): its *size* is
//! what makes fine-grained schemes pay a per-block constant, so we account
//! for it explicitly.

use crate::chacha::ChaCha20;
use crate::prf::Prf;

/// Serialized per-block envelope overhead in bytes, approximating the W3C
/// XML-Encryption metadata the paper's measured systems carried per block.
pub const BLOCK_HEADER_BYTES: usize = 96;

/// Length of the authentication tag.
pub const TAG_BYTES: usize = 16;

/// A sealed block as stored on the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlock {
    /// Server-visible block id.
    pub id: u32,
    /// Per-block nonce (fresh per block id and encryption run).
    pub nonce: [u8; 12],
    /// Ciphertext bytes.
    pub ciphertext: Vec<u8>,
    /// PRF authentication tag over (id, nonce, ciphertext).
    pub tag: [u8; TAG_BYTES],
}

impl SealedBlock {
    /// Total stored size, including the modeled envelope header.
    pub fn stored_size(&self) -> usize {
        BLOCK_HEADER_BYTES + self.ciphertext.len() + TAG_BYTES
    }
}

/// Errors from opening a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockCryptError {
    /// The authentication tag did not verify: wrong key or tampered data.
    BadTag,
}

impl std::fmt::Display for BlockCryptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockCryptError::BadTag => write!(f, "block authentication failed"),
        }
    }
}

impl std::error::Error for BlockCryptError {}

/// Seals plaintext bytes into a block.
pub fn seal_block(key: &[u8; 32], id: u32, nonce: [u8; 12], plaintext: &[u8]) -> SealedBlock {
    let mut ciphertext = plaintext.to_vec();
    ChaCha20::new(key, &nonce).apply_keystream(1, &mut ciphertext);
    let tag = auth_tag(key, id, &nonce, &ciphertext);
    SealedBlock {
        id,
        nonce,
        ciphertext,
        tag,
    }
}

/// Opens a sealed block, verifying the tag first.
pub fn open_block(key: &[u8; 32], block: &SealedBlock) -> Result<Vec<u8>, BlockCryptError> {
    let expected = auth_tag(key, block.id, &block.nonce, &block.ciphertext);
    if expected != block.tag {
        return Err(BlockCryptError::BadTag);
    }
    let mut plaintext = block.ciphertext.clone();
    ChaCha20::new(key, &block.nonce).apply_keystream(1, &mut plaintext);
    Ok(plaintext)
}

fn auth_tag(key: &[u8; 32], id: u32, nonce: &[u8; 12], ciphertext: &[u8]) -> [u8; TAG_BYTES] {
    let prf = Prf::new(*key);
    let mut input = Vec::with_capacity(ciphertext.len() + 20);
    input.extend_from_slice(b"blocktag");
    input.extend_from_slice(&id.to_le_bytes());
    input.extend_from_slice(nonce);
    input.extend_from_slice(ciphertext);
    let mut tag = [0u8; TAG_BYTES];
    prf.fill(&input, &mut tag);
    tag
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [11u8; 32];

    #[test]
    fn seal_open_roundtrip() {
        let pt = b"<patient><pname>Betty</pname><decoy>xyya</decoy></patient>";
        let b = seal_block(&KEY, 7, [1u8; 12], pt);
        assert_ne!(b.ciphertext, pt.to_vec());
        assert_eq!(open_block(&KEY, &b).unwrap(), pt.to_vec());
    }

    #[test]
    fn wrong_key_rejected() {
        let b = seal_block(&KEY, 7, [1u8; 12], b"secret");
        let other = [12u8; 32];
        assert_eq!(open_block(&other, &b), Err(BlockCryptError::BadTag));
    }

    #[test]
    fn tampering_detected() {
        let mut b = seal_block(&KEY, 7, [1u8; 12], b"secret");
        b.ciphertext[0] ^= 1;
        assert_eq!(open_block(&KEY, &b), Err(BlockCryptError::BadTag));
    }

    #[test]
    fn id_bound_into_tag() {
        let mut b = seal_block(&KEY, 7, [1u8; 12], b"secret");
        b.id = 8;
        assert_eq!(open_block(&KEY, &b), Err(BlockCryptError::BadTag));
    }

    #[test]
    fn distinct_nonces_distinct_ciphertexts() {
        let a = seal_block(&KEY, 1, [1u8; 12], b"same plaintext");
        let b = seal_block(&KEY, 1, [2u8; 12], b"same plaintext");
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn stored_size_includes_header() {
        let b = seal_block(&KEY, 1, [0u8; 12], b"12345");
        assert_eq!(b.stored_size(), BLOCK_HEADER_BYTES + 5 + TAG_BYTES);
    }

    #[test]
    fn empty_plaintext() {
        let b = seal_block(&KEY, 1, [0u8; 12], b"");
        assert_eq!(open_block(&KEY, &b).unwrap(), Vec::<u8>::new());
    }
}
