//! The deterministic tag cipher (§5.1.1).
//!
//! The paper encrypts element tags in the DSI index table with a "one-time
//! pad (Vernam cipher)", and translates query tags with *the same keys* so
//! the server can look encrypted tags up in the table. Determinism is
//! therefore a functional requirement: the same tag must always map to the
//! same ciphertext — which already rules out a true one-time pad (the pad
//! would be reused). We realize the same functional contract as a
//! fixed-width keyed PRF of the tag, rendered in a compact alphanumeric
//! alphabet so ciphertext tags look like the paper's `U84573`. Fixed width
//! buys two properties a XOR-pad scheme lacks: collision resistance across
//! different tags (found by a property test against an earlier pad-based
//! version: independent pads collide on short tags with birthday
//! probability) and tag-length hiding.

use crate::prf::Prf;

/// Alphabet for rendering ciphertext tags (XML-name safe, no vowels beyond
/// `U` to avoid accidentally spelling real words).
const ALPHABET: &[u8; 32] = b"0123456789BCDFGHJKLMNPQRSTUVWXYZ";

/// Deterministic tag encryption/decryption.
#[derive(Debug, Clone)]
pub struct TagCipher {
    prf: Prf,
}

impl TagCipher {
    pub fn new(key: [u8; 32]) -> Self {
        Self { prf: Prf::new(key) }
    }

    /// Encrypts a tag into a fixed-width, XML-name-safe ciphertext string
    /// starting with `X` (so it can never collide with a plaintext
    /// digit-initial name and remains a valid XML name). The width is
    /// constant — 128 PRF bits in base-32 — so ciphertext tags reveal
    /// nothing about plaintext tag lengths and never collide in practice.
    pub fn encrypt(&self, tag: &str) -> String {
        let mut mac = [0u8; 16];
        self.prf
            .fill(&[b"tagenc:", tag.as_bytes()].concat(), &mut mac);
        let mut out = String::with_capacity(27);
        out.push('X');
        // 16 bytes → 26 base-32 characters (5 bits each, final char 3 bits).
        let mut acc: u32 = 0;
        let mut bits = 0u32;
        for &b in &mac {
            acc = (acc << 8) | b as u32;
            bits += 8;
            while bits >= 5 {
                bits -= 5;
                out.push(ALPHABET[((acc >> bits) & 31) as usize] as char);
            }
        }
        if bits > 0 {
            out.push(ALPHABET[((acc << (5 - bits)) & 31) as usize] as char);
        }
        out
    }

    /// True when `cipher` is the encryption of `tag`. (Decryption proper is
    /// never needed: the client knows the plaintext set and checks
    /// membership, exactly as in the paper where the client owns the keys.)
    pub fn verifies(&self, tag: &str, cipher: &str) -> bool {
        self.encrypt(tag) == cipher
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> TagCipher {
        TagCipher::new([42u8; 32])
    }

    #[test]
    fn deterministic() {
        let c = cipher();
        assert_eq!(c.encrypt("SSN"), c.encrypt("SSN"));
    }

    #[test]
    fn distinct_tags_distinct_ciphertexts() {
        let c = cipher();
        assert_ne!(c.encrypt("SSN"), c.encrypt("SSM"));
        assert_ne!(c.encrypt("a"), c.encrypt("b"));
        assert_ne!(c.encrypt("insurance"), c.encrypt("insuranc"));
    }

    #[test]
    fn key_dependence() {
        let a = TagCipher::new([1u8; 32]);
        let b = TagCipher::new([2u8; 32]);
        assert_ne!(a.encrypt("SSN"), b.encrypt("SSN"));
    }

    #[test]
    fn ciphertext_is_valid_xml_name() {
        let c = cipher();
        for tag in ["SSN", "insurance", "policy#", "a-b_c.d", "coverage"] {
            let e = c.encrypt(tag);
            assert!(e.chars().next().unwrap().is_ascii_alphabetic());
            assert!(e.chars().all(|ch| ch.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn ciphertext_width_hides_tag_length() {
        let c = cipher();
        assert_eq!(c.encrypt("a").len(), c.encrypt("averylongtagname").len());
    }

    /// Regression for the property-test finding: short distinct tags must
    /// not collide under any key.
    #[test]
    fn short_tags_never_collide() {
        for seed in 0..50u8 {
            let c = TagCipher::new([seed; 32]);
            let mut seen = std::collections::HashSet::new();
            for b in b'a'..=b'z' {
                assert!(seen.insert(c.encrypt(&(b as char).to_string())));
            }
        }
    }

    #[test]
    fn verifies_membership() {
        let c = cipher();
        let e = c.encrypt("doctor");
        assert!(c.verifies("doctor", &e));
        assert!(!c.verifies("disease", &e));
    }

    #[test]
    fn no_collisions_over_vocabulary() {
        let c = cipher();
        let tags = [
            "hospital",
            "patient",
            "pname",
            "SSN",
            "age",
            "treat",
            "disease",
            "doctor",
            "insurance",
            "policy",
            "coverage",
            "site",
            "person",
            "name",
            "creditcard",
            "profile",
            "income",
            "address",
            "emailaddress",
            "dataset",
            "title",
            "author",
            "initial",
            "last",
            "publisher",
            "date",
            "city",
        ];
        let mut seen = std::collections::HashSet::new();
        for t in tags {
            assert!(seen.insert(c.encrypt(t)), "collision for {t}");
        }
    }
}
