//! The ChaCha20 stream cipher (RFC 7539 core function).
//!
//! This is the workhorse primitive of the crate: block encryption XORs the
//! keystream over serialized subtrees, and [`crate::prf`] uses single blocks
//! as a PRF.

/// ChaCha20 constants: `"expand 32-byte k"` as four little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 keystream generator for one (key, nonce) pair.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl ChaCha20 {
    /// Creates a cipher instance from a 256-bit key and 96-bit nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        Self { key: k, nonce: n }
    }

    /// Produces the 64-byte keystream block for the given counter.
    pub fn block(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut w = state;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = w[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream (starting at block counter `counter0`) into `data`.
    /// Applying it twice with the same parameters decrypts.
    pub fn apply_keystream(&self, counter0: u32, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(counter0.wrapping_add(i as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 §2.1.1 quarter-round test vector.
    #[test]
    fn quarter_round_vector() {
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    /// RFC 7539 §2.3.2 block function test vector (first keystream bytes).
    #[test]
    fn block_function_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let ks = ChaCha20::new(&key, &nonce).block(1);
        let expected_prefix = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&ks[..16], &expected_prefix);
    }

    #[test]
    fn keystream_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let c = ChaCha20::new(&key, &nonce);
        let mut data = b"attack at dawn, bring the umbrella and the long ladder too!".to_vec();
        let orig = data.clone();
        c.apply_keystream(0, &mut data);
        assert_ne!(data, orig);
        c.apply_keystream(0, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [7u8; 32];
        let a = ChaCha20::new(&key, &[0u8; 12]).block(0);
        let b = ChaCha20::new(&key, &[1u8; 12]).block(0);
        assert_ne!(a, b);
    }

    #[test]
    fn different_counters_differ() {
        let key = [7u8; 32];
        let c = ChaCha20::new(&key, &[0u8; 12]);
        assert_ne!(c.block(0), c.block(1));
    }

    #[test]
    fn multi_block_messages() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let c = ChaCha20::new(&key, &nonce);
        let mut data = vec![0xABu8; 200];
        c.apply_keystream(5, &mut data);
        // decrypting the tail alone with the right counter offset works
        let mut tail = data[128..].to_vec();
        c.apply_keystream(7, &mut tail);
        assert!(tail.iter().all(|&b| b == 0xAB));
    }
}
