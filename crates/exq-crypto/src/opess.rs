//! Order-Preserving Encryption with Splitting and Scaling (OPESS, §5.2).
//!
//! Given the exact occurrence histogram of a plaintext attribute, OPESS maps
//! each plaintext value to *several* ciphertext values so that the ciphertext
//! histogram is nearly flat, then replicates index entries by a per-value
//! random scale factor so an attacker who knows the exact plaintext
//! frequencies cannot re-group ciphertexts back to plaintexts:
//!
//! 1. pick the largest `m` such that every occurrence count is a
//!    non-negative combination of the chunk sizes `{m−1, m, m+1}`;
//! 2. split each value's occurrences into such chunks; the `j`-th chunk is
//!    displaced from the value by the weight prefix-sum `w₁+⋯+w_j` scaled
//!    into the gap to the next value, keeping ciphertexts of different
//!    plaintexts from straddling (condition (*) of the paper);
//! 3. encrypt each displaced value with the order-preserving function;
//! 4. draw a random integer scale `s ∈ [1, 10]` per value; every index entry
//!    of that value is replicated `s` times in the B-tree.
//!
//! Deviation from the paper, documented in DESIGN.md: the paper sets
//! `δ = max` gap between consecutive plaintext values, but condition (*)
//! (non-straddling) only holds in general with `δ = min` positive gap; we use
//! the min. The paper's worked example (two values, one gap) is unaffected.

use crate::ope::{f64_to_ordered_u64, OpeKey};
use rand::Rng;

/// Errors from plan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpessError {
    EmptyInput,
    NonFiniteValue,
    ZeroCount,
}

impl std::fmt::Display for OpessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpessError::EmptyInput => write!(f, "OPESS plan needs at least one value"),
            OpessError::NonFiniteValue => write!(f, "OPESS values must be finite"),
            OpessError::ZeroCount => write!(f, "OPESS occurrence counts must be positive"),
        }
    }
}

impl std::error::Error for OpessError {}

/// One ciphertext chunk of a plaintext value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkCipher {
    pub ciphertext: u128,
    /// How many plaintext occurrences this chunk carries.
    pub occurrences: u32,
}

/// The per-plaintext-value part of a plan.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    pub plaintext: f64,
    pub count: u32,
    pub chunks: Vec<ChunkCipher>,
    /// Scaling replication factor in `[1, 10]`.
    pub scale: u32,
}

/// An inclusive ciphertext range, the unit of server-side B-tree lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRange {
    pub lo: u128,
    pub hi: u128,
}

impl ValueRange {
    pub const FULL: ValueRange = ValueRange {
        lo: 0,
        hi: u128::MAX,
    };

    pub fn contains(&self, c: u128) -> bool {
        self.lo <= c && c <= self.hi
    }
}

/// Comparison operators for range translation, mirroring the query AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A built OPESS plan for one attribute.
///
/// ```
/// use exq_crypto::{OpeKey, OpessPlan};
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// // A skewed histogram: value 10.0 occurs 30 times, 20.0 occurs 7 times.
/// let plan = OpessPlan::build(&[(10.0, 30), (20.0, 7)], OpeKey::new([1; 32]), &mut rng).unwrap();
/// // Every ciphertext chunk's frequency lands in {m-1, m, m+1}: flat.
/// let m = plan.m();
/// assert!(plan.split_histogram().iter().all(|&f| (m - 1..=m + 1).contains(&f)));
/// ```
#[derive(Debug, Clone)]
pub struct OpessPlan {
    ope: OpeKey,
    /// Middle chunk size `m`.
    m: u32,
    /// Prefix sums of the `K` weights, each in `(0, 1)`, strictly increasing,
    /// final value `< K/(K+1) < 1`.
    weight_prefix: Vec<f64>,
    /// Minimum positive gap between consecutive distinct plaintext values.
    delta: f64,
    entries: Vec<PlanEntry>,
}

impl OpessPlan {
    /// Builds a plan from `(value, occurrence-count)` pairs. Duplicated
    /// values are merged. The `rng` drives weight/scale sampling; the OPE key
    /// drives ciphertext placement.
    pub fn build(
        values: &[(f64, u32)],
        ope: OpeKey,
        rng: &mut impl Rng,
    ) -> Result<OpessPlan, OpessError> {
        if values.is_empty() {
            return Err(OpessError::EmptyInput);
        }
        if values.iter().any(|(v, _)| !v.is_finite()) {
            return Err(OpessError::NonFiniteValue);
        }
        if values.iter().any(|(_, c)| *c == 0) {
            return Err(OpessError::ZeroCount);
        }

        // Merge duplicates and sort.
        let mut merged: Vec<(f64, u32)> = Vec::with_capacity(values.len());
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (v, c) in sorted {
            match merged.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }

        let delta = merged
            .windows(2)
            .map(|w| w[1].0 - w[0].0)
            .fold(f64::INFINITY, f64::min);
        let delta = if delta.is_finite() { delta } else { 1.0 };

        let m = choose_m(merged.iter().map(|&(_, c)| c));

        // Chunk decomposition per value; K = max chunk count.
        let mut chunk_sizes: Vec<Vec<u32>> = Vec::with_capacity(merged.len());
        for &(_, count) in &merged {
            chunk_sizes.push(decompose(count, m));
        }
        let k_max = chunk_sizes.iter().map(Vec::len).max().unwrap_or(1);

        // K weights in (0, 1/(K+1)), ascending; keep prefix sums.
        let bound = 1.0 / (k_max as f64 + 1.0);
        let mut ws: Vec<f64> = (0..k_max)
            .map(|_| rng.gen_range(bound * 1e-3..bound))
            .collect();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut weight_prefix = Vec::with_capacity(k_max);
        let mut acc = 0.0;
        for w in ws {
            acc += w;
            weight_prefix.push(acc);
        }

        let mut plan = OpessPlan {
            ope,
            m,
            weight_prefix,
            delta,
            entries: Vec::with_capacity(merged.len()),
        };

        for (&(v, count), sizes) in merged.iter().zip(&chunk_sizes) {
            let mut chunks = Vec::with_capacity(sizes.len());
            for (j, &sz) in sizes.iter().enumerate() {
                chunks.push(ChunkCipher {
                    ciphertext: plan.chunk_ciphertext(v, j),
                    occurrences: sz,
                });
            }
            debug_assert!(chunks.windows(2).all(|w| w[0].ciphertext < w[1].ciphertext));
            plan.entries.push(PlanEntry {
                plaintext: v,
                count,
                chunks,
                scale: rng.gen_range(1..=10),
            });
        }
        Ok(plan)
    }

    /// The chunk middle size `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The minimum-gap δ used for displacement (persistence support).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The weight prefix sums (persistence support).
    pub fn weight_prefix(&self) -> &[f64] {
        &self.weight_prefix
    }

    /// Reassembles a plan from persisted parts. The caller is responsible
    /// for the parts having come from [`build`](Self::build) (weights
    /// ascending, entries sorted by plaintext with non-straddling chunks).
    pub fn from_parts(
        ope: OpeKey,
        m: u32,
        weight_prefix: Vec<f64>,
        delta: f64,
        entries: Vec<PlanEntry>,
    ) -> OpessPlan {
        OpessPlan {
            ope,
            m,
            weight_prefix,
            delta,
            entries,
        }
    }

    /// `K`: the maximum number of chunks any value was split into, which is
    /// also the number of splitting keys/weights.
    pub fn key_count(&self) -> usize {
        self.weight_prefix.len()
    }

    /// Per-value plan entries, ordered by plaintext.
    pub fn entries(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// The displaced, order-preserving ciphertext for chunk `j` (0-based) of
    /// plaintext `v`. Displacement happens in the ordered-u64 embedding of
    /// the gap `[v, v + δ)` so that chunk ciphertexts are strictly increasing
    /// and never straddle the next plaintext value.
    fn chunk_ciphertext(&self, v: f64, j: usize) -> u128 {
        self.ope.encrypt(self.displaced(v, j))
    }

    fn displaced(&self, v: f64, j: usize) -> u64 {
        let base = f64_to_ordered_u64(v);
        let next = f64_to_ordered_u64(v + self.delta);
        let k = self.weight_prefix.len() as u64;
        let span = next.saturating_sub(base).max((k + 2) * (k + 2));
        let frac = self.weight_prefix[j];
        // The additive `j + 1` keeps offsets strictly increasing in `j` even
        // if the float products round to the same integer.
        let off = ((span as f64) * frac) as u64 + j as u64 + 1;
        debug_assert!(off < span, "chunk displacement escaped the value gap");
        base + off
    }

    /// Ciphertexts for inserting occurrences of a (possibly new) plaintext
    /// value after the plan was built: the value's band positions, reusing
    /// the plan's weights (update support). At most `min(m, K)` chunks.
    pub fn insert_ciphertexts(&self, v: f64) -> Vec<u128> {
        let n = (self.m as usize).min(self.weight_prefix.len()).max(1);
        (0..n).map(|j| self.chunk_ciphertext(v, j)).collect()
    }

    /// Lower bound of plaintext `v`'s ciphertext band (its first chunk).
    pub fn band_lo(&self, v: f64) -> u128 {
        self.chunk_ciphertext(v, 0)
    }

    /// Upper bound of plaintext `v`'s ciphertext band (its last chunk).
    pub fn band_hi(&self, v: f64) -> u128 {
        self.chunk_ciphertext(v, self.weight_prefix.len() - 1)
    }

    /// Translates a comparison predicate into a ciphertext range that is a
    /// *superset* of the matching entries (exact for `=` on domain values);
    /// the client's post-processing removes any false positives, so
    /// over-approximation is safe. See also [`translate_paper`].
    ///
    /// [`translate_paper`]: Self::translate_paper
    pub fn translate(&self, op: RangeOp, v: f64) -> ValueRange {
        match op {
            RangeOp::Eq => ValueRange {
                lo: self.band_lo(v),
                hi: self.band_hi(v),
            },
            RangeOp::Ne => ValueRange::FULL,
            RangeOp::Lt | RangeOp::Le => ValueRange {
                lo: 0,
                hi: self.band_hi(v),
            },
            RangeOp::Gt | RangeOp::Ge => ValueRange {
                lo: self.ope.encrypt(f64_to_ordered_u64(v)),
                hi: u128::MAX,
            },
        }
    }

    /// The literal translation table of the paper's Figure 7(a):
    ///
    /// * `v = v₁` → `[E(v₁+w₁δ), E(v₁+Σwδ)]`
    /// * `v < v₁` → `< E(v₁+w₁δ)`
    /// * `v > v₁` → `> E(v₁+Σwδ)`
    /// * `v ≤ v₁` → `≤ E(v₁+Σwδ)`
    /// * `v ≥ v₁` → `≥ E(v₁+w₁δ)`
    ///
    /// Exact when `v` is an active-domain value; may miss fringe chunks for
    /// constants strictly between domain values (which is why the system
    /// pipeline uses [`translate`](Self::translate) instead).
    pub fn translate_paper(&self, op: RangeOp, v: f64) -> ValueRange {
        let lo = self.band_lo(v);
        let hi = self.band_hi(v);
        match op {
            RangeOp::Eq => ValueRange { lo, hi },
            RangeOp::Ne => ValueRange::FULL,
            RangeOp::Lt => ValueRange {
                lo: 0,
                hi: lo.saturating_sub(1),
            },
            RangeOp::Le => ValueRange { lo: 0, hi },
            RangeOp::Gt => ValueRange {
                lo: hi.saturating_add(1),
                hi: u128::MAX,
            },
            RangeOp::Ge => ValueRange { lo, hi: u128::MAX },
        }
    }

    /// The ciphertext histogram *after splitting only* — each entry is one
    /// ciphertext value's occurrence count. By construction every entry is
    /// in `{m−1, m, m+1}` (or 1 for split singletons). This is the
    /// distribution of Figure 6(b).
    pub fn split_histogram(&self) -> Vec<u32> {
        self.entries
            .iter()
            .flat_map(|e| e.chunks.iter().map(|c| c.occurrences))
            .collect()
    }

    /// The ciphertext histogram after splitting *and* scaling — what the
    /// server actually observes in the B-tree.
    pub fn scaled_histogram(&self) -> Vec<u64> {
        self.entries
            .iter()
            .flat_map(|e| {
                e.chunks
                    .iter()
                    .map(move |c| c.occurrences as u64 * e.scale as u64)
            })
            .collect()
    }

    /// Total number of B-tree index entries the plan produces.
    pub fn index_entry_count(&self) -> u64 {
        self.scaled_histogram().iter().sum()
    }
}

/// Chooses the maximum `m ≥ 3` such that every count `n ≥ 2` can be written
/// as a non-negative combination of `{m−1, m, m+1}` — equivalently, such that
/// some `t ≥ 1` satisfies `t(m−1) ≤ n ≤ t(m+1)`. `(2,3,4)` always works for
/// `n ≥ 2`, so the search is total.
fn choose_m(counts: impl Iterator<Item = u32>) -> u32 {
    let relevant: Vec<u32> = counts.filter(|&c| c >= 2).collect();
    if relevant.is_empty() {
        return 3;
    }
    let upper = relevant.iter().min().copied().unwrap_or(3) + 1;
    for m in (3..=upper.max(3)).rev() {
        if relevant.iter().all(|&n| representable(n, m)) {
            return m;
        }
    }
    3
}

/// Is `n` a non-negative combination of `{m−1, m, m+1}`?
fn representable(n: u32, m: u32) -> bool {
    let (lo, hi) = (m - 1, m + 1);
    // exists t with t*lo <= n <= t*hi
    let t_min = n.div_ceil(hi);
    let t_max = n / lo;
    t_min <= t_max && t_min >= 1
}

/// Splits `n` occurrences into the fewest chunks with sizes in
/// `{m−1, m, m+1}`. Singletons (`n = 1`) split into `m` one-occurrence
/// chunks per the paper, so unique values don't betray themselves.
fn decompose(n: u32, m: u32) -> Vec<u32> {
    if n == 1 {
        return vec![1; m as usize];
    }
    let (lo, hi) = (m - 1, m + 1);
    let t = n.div_ceil(hi).max(1);
    debug_assert!(t * lo <= n && n <= t * hi, "decompose({n}, {m}) broken");
    let extra = n - t * lo; // 0 ..= 2t
    let mut sizes = vec![lo; t as usize];
    let bump1 = extra.min(t);
    for s in sizes.iter_mut().take(bump1 as usize) {
        *s += 1;
    }
    if extra > t {
        for s in sizes.iter_mut().take((extra - t) as usize) {
            *s += 1;
        }
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan(values: &[(f64, u32)]) -> OpessPlan {
        let mut rng = StdRng::seed_from_u64(7);
        OpessPlan::build(values, OpeKey::new([3u8; 32]), &mut rng).unwrap()
    }

    /// The paper's Figure 6 example: skewed counts flatten to ~m±1.
    #[test]
    fn figure6_flattening() {
        let values = [
            (1001.0, 20u32),
            (932.0, 8),
            (23.0, 27),
            (77.0, 7),
            (90.0, 34),
            (12.0, 13),
        ];
        let p = plan(&values);
        let hist = p.split_histogram();
        let m = p.m();
        for &h in &hist {
            assert!(
                (m - 1..=m + 1).contains(&h),
                "chunk occurrence {h} outside m±1 (m={m})"
            );
        }
        // Splitting preserves total occurrences.
        let total: u32 = hist.iter().sum();
        assert_eq!(total, values.iter().map(|&(_, c)| c).sum::<u32>());
    }

    /// The paper's worked decomposition: 34 = 1·6 + 4·7 with (6,7,8).
    #[test]
    fn decompose_paper_example() {
        let sizes = decompose(34, 7);
        assert_eq!(sizes.iter().sum::<u32>(), 34);
        assert!(sizes.iter().all(|&s| (6..=8).contains(&s)));
        assert_eq!(sizes.len(), 5); // 34 split into 5 chunks
    }

    #[test]
    fn representable_small_cases() {
        assert!(representable(2, 3));
        assert!(representable(3, 3));
        assert!(representable(4, 3));
        assert!(representable(5, 3));
        // 5 with m=5: chunks {4,5,6}: yes (t=1, 4<=5<=6)
        assert!(representable(5, 5));
        // 7 with m=5: t=1 gives 4..6 (no), t=2 gives 8..12 (no) -> not representable
        assert!(!representable(7, 5));
    }

    #[test]
    fn choose_m_respects_all_counts() {
        // counts {2}: m must keep 2 representable; m-1 <= 2 -> m <= 3
        assert_eq!(choose_m([2u32].into_iter()), 3);
        // all counts large and equal: m can be count+1? t=1 needs m-1 <= n <= m+1
        let m = choose_m([10u32, 10, 10].into_iter());
        assert!(representable(10, m));
        assert!(m >= 3);
    }

    #[test]
    fn singleton_splits_into_m_chunks() {
        let p = plan(&[(5.0, 1), (10.0, 6)]);
        let single = &p.entries()[0];
        assert_eq!(single.count, 1);
        assert_eq!(single.chunks.len(), p.m() as usize);
        assert!(single.chunks.iter().all(|c| c.occurrences == 1));
    }

    #[test]
    fn non_straddling_condition() {
        // Condition (*): all ciphertexts of v_i are below all of v_j for v_i < v_j.
        let values = [(10.0, 9u32), (11.0, 3), (15.0, 22), (100.0, 5)];
        let p = plan(&values);
        let mut prev_hi = 0u128;
        for e in p.entries() {
            let lo = e.chunks.first().unwrap().ciphertext;
            let hi = e.chunks.last().unwrap().ciphertext;
            assert!(lo > prev_hi, "bands straddle at {}", e.plaintext);
            assert!(lo <= hi);
            prev_hi = hi;
        }
    }

    #[test]
    fn chunks_strictly_increasing() {
        let p = plan(&[(1.0, 30), (2.0, 30)]);
        for e in p.entries() {
            for w in e.chunks.windows(2) {
                assert!(w[0].ciphertext < w[1].ciphertext);
            }
        }
    }

    #[test]
    fn eq_translation_covers_exactly_the_band() {
        let values = [(10.0, 9u32), (20.0, 12), (30.0, 7)];
        let p = plan(&values);
        for e in p.entries() {
            let r = p.translate(RangeOp::Eq, e.plaintext);
            for c in &e.chunks {
                assert!(r.contains(c.ciphertext));
            }
            // No other value's chunks fall in the band.
            for other in p.entries() {
                if other.plaintext != e.plaintext {
                    for c in &other.chunks {
                        assert!(!r.contains(c.ciphertext));
                    }
                }
            }
        }
    }

    #[test]
    fn range_translations_are_supersets() {
        let values = [(10.0, 9u32), (20.0, 12), (30.0, 7)];
        let p = plan(&values);
        // Lt 20 must cover all chunks of 10.
        let r = p.translate(RangeOp::Lt, 20.0);
        for c in &p.entries()[0].chunks {
            assert!(r.contains(c.ciphertext));
        }
        // Gt 20 must cover all chunks of 30.
        let r = p.translate(RangeOp::Gt, 20.0);
        for c in &p.entries()[2].chunks {
            assert!(r.contains(c.ciphertext));
        }
        // Ge 20 covers 20 and 30.
        let r = p.translate(RangeOp::Ge, 20.0);
        for e in &p.entries()[1..] {
            for c in &e.chunks {
                assert!(r.contains(c.ciphertext));
            }
        }
        // Le 20 covers 10 and 20.
        let r = p.translate(RangeOp::Le, 20.0);
        for e in &p.entries()[..2] {
            for c in &e.chunks {
                assert!(r.contains(c.ciphertext));
            }
        }
    }

    #[test]
    fn paper_translation_exact_on_domain_values() {
        let values = [(10.0, 9u32), (20.0, 12), (30.0, 7)];
        let p = plan(&values);
        let r = p.translate_paper(RangeOp::Lt, 20.0);
        // covers all of 10, none of 20/30
        for c in &p.entries()[0].chunks {
            assert!(r.contains(c.ciphertext));
        }
        for e in &p.entries()[1..] {
            for c in &e.chunks {
                assert!(!r.contains(c.ciphertext));
            }
        }
        let r = p.translate_paper(RangeOp::Gt, 20.0);
        for c in &p.entries()[2].chunks {
            assert!(r.contains(c.ciphertext));
        }
        for e in &p.entries()[..2] {
            for c in &e.chunks {
                assert!(!r.contains(c.ciphertext));
            }
        }
    }

    #[test]
    fn scaling_in_bounds_and_applied() {
        let values = [(10.0, 9u32), (20.0, 12)];
        let p = plan(&values);
        for e in p.entries() {
            assert!((1..=10).contains(&e.scale));
        }
        let split_total: u64 = p.split_histogram().iter().map(|&x| x as u64).sum();
        let scaled_total = p.index_entry_count();
        assert!(scaled_total >= split_total);
    }

    #[test]
    fn scaled_histogram_breaks_total_frequency_attack() {
        // After scaling, the sum of ciphertext occurrences no longer equals
        // the plaintext total (with overwhelming probability over scales).
        let values = [(10.0, 30u32), (20.0, 10), (30.0, 20)];
        let mut any_changed = false;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = OpessPlan::build(&values, OpeKey::new([3u8; 32]), &mut rng).unwrap();
            let scaled: u64 = p.index_entry_count();
            if scaled != 60 {
                any_changed = true;
            }
        }
        assert!(any_changed);
    }

    #[test]
    fn duplicate_values_merge() {
        let p = plan(&[(5.0, 3), (5.0, 4), (6.0, 2)]);
        assert_eq!(p.entries().len(), 2);
        assert_eq!(p.entries()[0].count, 7);
    }

    #[test]
    fn errors() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            OpessPlan::build(&[], OpeKey::new([0u8; 32]), &mut rng).unwrap_err(),
            OpessError::EmptyInput
        );
        assert_eq!(
            OpessPlan::build(&[(f64::NAN, 1)], OpeKey::new([0u8; 32]), &mut rng).unwrap_err(),
            OpessError::NonFiniteValue
        );
        assert_eq!(
            OpessPlan::build(&[(1.0, 0)], OpeKey::new([0u8; 32]), &mut rng).unwrap_err(),
            OpessError::ZeroCount
        );
    }

    #[test]
    fn single_value_domain() {
        let p = plan(&[(42.0, 10)]);
        assert_eq!(p.entries().len(), 1);
        let r = p.translate(RangeOp::Eq, 42.0);
        for c in &p.entries()[0].chunks {
            assert!(r.contains(c.ciphertext));
        }
    }
}
