//! The client's key chain.
//!
//! The data owner holds one master key; every purpose-specific key (block
//! encryption, tag cipher, OPE per attribute, decoy generation) is derived
//! from it with the PRF, so the client state is a single 32-byte secret.

use crate::ope::OpeKey;
use crate::prf::Prf;
use crate::vernam::TagCipher;

/// Derives all per-purpose keys from a master key.
#[derive(Debug, Clone)]
pub struct KeyChain {
    master: Prf,
    master_key: [u8; 32],
}

impl KeyChain {
    pub fn new(master_key: [u8; 32]) -> Self {
        Self {
            master: Prf::new(master_key),
            master_key,
        }
    }

    /// The raw master key — everything else derives from it. Only the
    /// owner-side persistence layer should touch this.
    pub fn master_key(&self) -> [u8; 32] {
        self.master_key
    }

    /// Convenience: build from a seed integer (tests, examples, benches).
    pub fn from_seed(seed: u64) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..16].copy_from_slice(&seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes());
        Self::new(key)
    }

    /// Key for sealing encryption blocks.
    pub fn block_key(&self) -> [u8; 32] {
        self.master.derive_key("exq:block")
    }

    /// The deterministic tag cipher for DSI-table tags and query tags.
    pub fn tag_cipher(&self) -> TagCipher {
        TagCipher::new(self.master.derive_key("exq:tag"))
    }

    /// Per-attribute OPE key for the value index.
    pub fn ope_key(&self, attribute: &str) -> OpeKey {
        OpeKey::new(self.master.derive_key(&format!("exq:ope:{attribute}")))
    }

    /// Deterministic per-context nonce (e.g. per block id) for sealing.
    pub fn nonce(&self, context: &str, n: u64) -> [u8; 12] {
        let mut out = [0u8; 12];
        self.master
            .fill(format!("exq:nonce:{context}:{n}").as_bytes(), &mut out);
        out
    }

    /// PRF for decoy value synthesis.
    pub fn decoy_prf(&self) -> Prf {
        Prf::new(self.master.derive_key("exq:decoy"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivations_are_deterministic() {
        let a = KeyChain::from_seed(9);
        let b = KeyChain::from_seed(9);
        assert_eq!(a.block_key(), b.block_key());
        assert_eq!(a.nonce("blk", 4), b.nonce("blk", 4));
        assert_eq!(a.tag_cipher().encrypt("SSN"), b.tag_cipher().encrypt("SSN"));
        assert_eq!(a.ope_key("age").encrypt(5), b.ope_key("age").encrypt(5));
    }

    #[test]
    fn purposes_are_separated() {
        let k = KeyChain::from_seed(9);
        assert_ne!(k.block_key(), k.master.derive_key("exq:tag"));
        assert_ne!(k.ope_key("age").encrypt(5), k.ope_key("income").encrypt(5));
        assert_ne!(k.nonce("blk", 1), k.nonce("blk", 2));
        assert_ne!(k.nonce("a", 1), k.nonce("b", 1));
    }

    #[test]
    fn seeds_are_separated() {
        let a = KeyChain::from_seed(1);
        let b = KeyChain::from_seed(2);
        assert_ne!(a.block_key(), b.block_key());
    }
}
