//! Order-preserving encryption: a lazy-sampled strictly-monotone random
//! function `u64 → u128`.
//!
//! The paper assumes "any order-preserving encryption function, such as was
//! proposed by [Agrawal et al.]". We implement the classic lazy-sampling
//! construction: conceptually a random strictly-increasing function from the
//! 2⁶⁴ domain into a 2⁹⁶ range, realized by binary range splitting with
//! PRF-derived coins so that encryption is deterministic under a key and
//! needs no stored state.
//!
//! Also provided: the standard order-preserving embedding of `f64` into
//! `u64`, used by OPESS to encrypt displaced (fractional) plaintext values.

use crate::prf::Prf;

/// Number of bits of the ciphertext range.
pub const RANGE_BITS: u32 = 96;

/// An order-preserving encryption key.
///
/// ```
/// use exq_crypto::OpeKey;
/// let key = OpeKey::new([7u8; 32]);
/// let (a, b) = (key.encrypt(100), key.encrypt(200));
/// assert!(a < b);                       // order preserved
/// assert_eq!(key.decrypt(a), Some(100)); // and invertible with the key
/// ```
#[derive(Debug, Clone)]
pub struct OpeKey {
    prf: Prf,
}

impl OpeKey {
    pub fn new(key: [u8; 32]) -> Self {
        Self { prf: Prf::new(key) }
    }

    /// Encrypts a domain value. Strictly monotone: `x < y` implies
    /// `encrypt(x) < encrypt(y)`.
    pub fn encrypt(&self, x: u64) -> u128 {
        let mut dlo: u128 = 0;
        let mut dhi: u128 = u64::MAX as u128;
        let mut rlo: u128 = 0;
        let mut rhi: u128 = (1u128 << RANGE_BITS) - 1;
        let x = x as u128;
        loop {
            if dlo == dhi {
                let span = rhi - rlo + 1;
                return rlo + self.coin(dlo, dhi, rlo, rhi) % span;
            }
            let dmid = dlo + (dhi - dlo) / 2;
            let dl = dmid - dlo + 1; // size of left domain half
            let dr = dhi - dmid; // size of right domain half
            let r_total = rhi - rlo + 1;
            // The left half of the range must hold at least `dl` values and
            // leave at least `dr` for the right half.
            let lo_min = dl;
            let lo_max = r_total - dr;
            let rl = lo_min + self.coin(dlo, dhi, rlo, rhi) % (lo_max - lo_min + 1);
            if x <= dmid {
                dhi = dmid;
                rhi = rlo + rl - 1;
            } else {
                dlo = dmid + 1;
                rlo += rl;
            }
        }
    }

    /// Decrypts a ciphertext produced by [`encrypt`](Self::encrypt).
    /// Returns `None` for range values that no domain point maps to.
    pub fn decrypt(&self, c: u128) -> Option<u64> {
        let mut dlo: u128 = 0;
        let mut dhi: u128 = u64::MAX as u128;
        let mut rlo: u128 = 0;
        let mut rhi: u128 = (1u128 << RANGE_BITS) - 1;
        if c > rhi {
            return None;
        }
        loop {
            if dlo == dhi {
                let span = rhi - rlo + 1;
                let expected = rlo + self.coin(dlo, dhi, rlo, rhi) % span;
                return (expected == c).then_some(dlo as u64);
            }
            let dmid = dlo + (dhi - dlo) / 2;
            let dl = dmid - dlo + 1;
            let dr = dhi - dmid;
            let r_total = rhi - rlo + 1;
            let lo_min = dl;
            let lo_max = r_total - dr;
            let rl = lo_min + self.coin(dlo, dhi, rlo, rhi) % (lo_max - lo_min + 1);
            if c < rlo + rl {
                dhi = dmid;
                rhi = rlo + rl - 1;
            } else {
                dlo = dmid + 1;
                rlo += rl;
            }
        }
    }

    fn coin(&self, dlo: u128, dhi: u128, rlo: u128, rhi: u128) -> u128 {
        let mut input = [0u8; 64];
        input[..16].copy_from_slice(&dlo.to_le_bytes());
        input[16..32].copy_from_slice(&dhi.to_le_bytes());
        input[32..48].copy_from_slice(&rlo.to_le_bytes());
        input[48..64].copy_from_slice(&rhi.to_le_bytes());
        self.prf.eval_u128(&input)
    }
}

/// Order-preserving embedding of finite `f64` values into `u64`:
/// `a < b  ⇔  f64_to_ordered_u64(a) < f64_to_ordered_u64(b)`.
pub fn f64_to_ordered_u64(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63) // positive: set the sign bit
    } else {
        !bits // negative: flip everything
    }
}

/// Inverse of [`f64_to_ordered_u64`].
pub fn ordered_u64_to_f64(u: u64) -> f64 {
    if u >> 63 == 1 {
        f64::from_bits(u & !(1 << 63))
    } else {
        f64::from_bits(!u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> OpeKey {
        OpeKey::new([13u8; 32])
    }

    #[test]
    fn strictly_monotone_on_samples() {
        let k = key();
        let xs = [
            0u64,
            1,
            2,
            100,
            1000,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let cs: Vec<u128> = xs.iter().map(|&x| k.encrypt(x)).collect();
        for w in cs.windows(2) {
            assert!(w[0] < w[1], "monotonicity violated: {} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn deterministic() {
        let k = key();
        assert_eq!(k.encrypt(123456), k.encrypt(123456));
    }

    #[test]
    fn key_dependence() {
        let a = OpeKey::new([1u8; 32]);
        let b = OpeKey::new([2u8; 32]);
        assert_ne!(a.encrypt(42), b.encrypt(42));
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let k = key();
        for x in [0u64, 1, 7, 65535, 1 << 40, u64::MAX] {
            let c = k.encrypt(x);
            assert_eq!(k.decrypt(c), Some(x));
        }
    }

    #[test]
    fn decrypt_rejects_out_of_range() {
        let k = key();
        assert_eq!(k.decrypt(u128::MAX), None);
    }

    #[test]
    fn adjacent_inputs_stay_ordered() {
        let k = key();
        for base in [0u64, 12345, 1 << 33, u64::MAX - 10] {
            let mut prev = k.encrypt(base);
            for i in 1..10 {
                let c = k.encrypt(base + i);
                assert!(c > prev);
                prev = c;
            }
        }
    }

    #[test]
    fn ciphertexts_fit_range() {
        let k = key();
        for x in [0u64, u64::MAX, 42] {
            assert!(k.encrypt(x) < (1u128 << RANGE_BITS));
        }
    }

    #[test]
    fn f64_embedding_orders() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            2.5000001,
            1e300,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(
                f64_to_ordered_u64(w[0]) <= f64_to_ordered_u64(w[1]),
                "order broken between {} and {}",
                w[0],
                w[1]
            );
        }
        // strictness for distinct non-zero values
        assert!(f64_to_ordered_u64(2.5) < f64_to_ordered_u64(2.5000001));
    }

    #[test]
    fn f64_embedding_roundtrip() {
        for v in [-123.456, 0.0, 1.0, 9e99, -7e-77] {
            assert_eq!(ordered_u64_to_f64(f64_to_ordered_u64(v)), v);
        }
    }
}
