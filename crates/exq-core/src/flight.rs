//! The always-on flight recorder: a lock-free ring of recent structured
//! events, from scratch (no external crates, per repo policy).
//!
//! Logs answer "what happened?"; metrics answer "how much?"; neither
//! answers "what happened *just before* the incident?". The recorder
//! keeps the last [`CAPACITY`] operationally interesting events —
//! admissions, sheds, Busy replies, checkpoint begin/end, slow WAL
//! fsyncs, pool-pressure evictions, slow queries, accept errors — in a
//! fixed-size ring that writers never block on and that costs nothing to
//! carry when nobody looks at it. Two consumers read it: the `FlightReq`
//! wire frame (`exq debug --addr`) dumps it as JSON lines from a live
//! server, and the panic hook dumps it to stderr so a crashing server
//! leaves its last seconds behind.
//!
//! ## Lock-free design
//!
//! Writers claim a ticket from a global atomic counter; the ticket picks
//! a slot (`ticket % CAPACITY`) and doubles as the slot's generation
//! stamp. Each slot is a seqlock of plain `AtomicU64` words (no
//! `unsafe`): the writer stores an *odd* stamp, writes the payload
//! words, then stores the *even* stamp `(ticket + 1) << 1` — SeqCst
//! fences on both sides order the payload against the stamps. A reader
//! loads the stamp, copies the payload, fences, and re-loads the stamp:
//! any mismatch or odd value means a concurrent writer and the slot is
//! skipped. Torn events are therefore *detected and dropped*, never
//! emitted. Memory is `CAPACITY` slots of 8 words + a stamp — fixed at
//! init, bounded forever.
//!
//! Event timestamps are microseconds since the recorder's first use;
//! [`dump_json`] reports the Unix-epoch microseconds of that instant so
//! consumers can reconstruct absolute times.

use crate::telemetry;
use std::fmt::Write as _;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Ring capacity (power of two). 512 events of ~72 bytes ≈ 36 KiB —
/// small enough to be always-on, deep enough to cover the seconds before
/// an incident at realistic event rates.
pub const CAPACITY: usize = 512;

/// Bytes of the db name stored inline per event (longer names truncate;
/// db ids are ≤ 63 bytes, and the first 24 identify them in practice).
pub const DB_BYTES: usize = 24;

/// What happened. The discriminant is stored in the slot and must stay
/// stable across versions (dump output is consumed by tooling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A request passed admission control. `a` = global in-flight after.
    Admit = 1,
    /// Admission shed a request. `a` = global in-flight, `b` = db cap.
    Shed = 2,
    /// A Busy reply went out (shed, deadline miss, or full event-loop
    /// queue). `a` = retry-after ms.
    Busy = 3,
    /// A checkpoint began. `a` = WAL depth entering the fold.
    CheckpointBegin = 4,
    /// A checkpoint committed. `a` = pages folded, `b` = duration µs.
    CheckpointEnd = 5,
    /// A WAL fsync exceeded [`FSYNC_SLOW_NANOS`]. `a` = bytes, `b` = µs.
    WalFsyncSlow = 6,
    /// Pool evictions under pressure (sampled: one event per
    /// [`EVICT_SAMPLE`] evictions). `a` = total evictions so far.
    EvictPressure = 7,
    /// A dispatched request crossed the slow threshold. `a` = µs,
    /// `b` = pages faulted, `c` = blocks shipped.
    SlowQuery = 8,
    /// The accept loop hit an error and backed off. `a` = consecutive
    /// errors.
    AcceptError = 9,
    /// A db's health dropped after a storage fault. `a` = new health
    /// (1 = degraded read-only, 2 = faulted).
    Degraded = 10,
    /// A degraded db's storage probe succeeded; back to healthy.
    /// `a` = milliseconds spent degraded (0 when unknown).
    Recovered = 11,
    /// The scrubber quarantined and rebuilt corrupt pages. `a` = records
    /// repaired, `b` = pages quarantined, `c` = records lost (unrepairable).
    ScrubRepair = 12,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Admit => "admit",
            Kind::Shed => "shed",
            Kind::Busy => "busy",
            Kind::CheckpointBegin => "checkpoint_begin",
            Kind::CheckpointEnd => "checkpoint_end",
            Kind::WalFsyncSlow => "wal_fsync_slow",
            Kind::EvictPressure => "evict_pressure",
            Kind::SlowQuery => "slow_query",
            Kind::AcceptError => "accept_error",
            Kind::Degraded => "degraded",
            Kind::Recovered => "recovered",
            Kind::ScrubRepair => "scrub_repair",
        }
    }

    fn from_code(code: u64) -> Option<Kind> {
        Some(match code {
            1 => Kind::Admit,
            2 => Kind::Shed,
            3 => Kind::Busy,
            4 => Kind::CheckpointBegin,
            5 => Kind::CheckpointEnd,
            6 => Kind::WalFsyncSlow,
            7 => Kind::EvictPressure,
            8 => Kind::SlowQuery,
            9 => Kind::AcceptError,
            10 => Kind::Degraded,
            11 => Kind::Recovered,
            12 => Kind::ScrubRepair,
            _ => return None,
        })
    }

    /// Names for the generic `a`/`b`/`c` payload words, per kind, so the
    /// JSON dump is self-describing. `None` omits the field.
    fn arg_names(self) -> [Option<&'static str>; 3] {
        match self {
            Kind::Admit => [Some("inflight"), None, None],
            Kind::Shed => [Some("inflight"), Some("cap"), None],
            Kind::Busy => [Some("retry_after_ms"), None, None],
            Kind::CheckpointBegin => [Some("wal_depth"), None, None],
            Kind::CheckpointEnd => [Some("pages_folded"), Some("dur_us"), None],
            Kind::WalFsyncSlow => [Some("bytes"), Some("dur_us"), None],
            Kind::EvictPressure => [Some("evictions_total"), None, None],
            Kind::SlowQuery => [Some("dur_us"), Some("pages_faulted"), Some("blocks")],
            Kind::AcceptError => [Some("consecutive"), None, None],
            Kind::Degraded => [Some("health"), None, None],
            Kind::Recovered => [Some("degraded_ms"), None, None],
            Kind::ScrubRepair => [Some("repaired"), Some("quarantined"), Some("lost")],
        }
    }
}

/// WAL fsyncs slower than this get a [`Kind::WalFsyncSlow`] event (5 ms:
/// an order of magnitude past a healthy commit on local storage).
pub const FSYNC_SLOW_NANOS: u64 = 5_000_000;

/// One [`Kind::EvictPressure`] event per this many evictions — steady
/// thrash is one line per batch instead of flooding the ring.
pub const EVICT_SAMPLE: u64 = 64;

/// Payload words per slot: timestamp, kind|db_len, 3 words of db name,
/// a, b, c.
const WORDS: usize = 8;
const W_TS: usize = 0;
const W_META: usize = 1;
const W_DB0: usize = 2; // ..W_DB0+3
const W_A: usize = 5;
const W_B: usize = 6;
const W_C: usize = 7;

struct Slot {
    /// 0 = never written; odd = write in progress; even `(t + 1) << 1` =
    /// ticket `t`'s event is complete.
    stamp: AtomicU64,
    words: [AtomicU64; WORDS],
}

struct Recorder {
    slots: Vec<Slot>,
    head: AtomicU64,
    /// Unix-epoch µs at init; event timestamps are µs since `epoch`.
    epoch_unix_us: u64,
    epoch: Instant,
}

fn recorder() -> &'static Recorder {
    static REC: OnceLock<Recorder> = OnceLock::new();
    REC.get_or_init(|| Recorder {
        slots: (0..CAPACITY)
            .map(|_| Slot {
                stamp: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect(),
        head: AtomicU64::new(0),
        epoch_unix_us: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0),
        epoch: Instant::now(),
    })
}

/// Records one event. Lock-free and wait-free apart from the one
/// `fetch_add`; safe from any thread, including under the frame lock of a
/// buffer pool. Gated on the telemetry master switch so the telemetry-off
/// configuration measures a true zero-instrumentation baseline.
pub fn event(kind: Kind, db: &str, a: u64, b: u64, c: u64) {
    if !telemetry::enabled() {
        return;
    }
    let r = recorder();
    let ticket = r.head.fetch_add(1, Ordering::Relaxed);
    let slot = &r.slots[(ticket as usize) & (CAPACITY - 1)];
    let ts = r.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;

    let name = db.as_bytes();
    let db_len = name.len().min(DB_BYTES);
    let mut db_words = [0u64; 3];
    for (i, &byte) in name[..db_len].iter().enumerate() {
        db_words[i / 8] |= (byte as u64) << ((i % 8) * 8);
    }

    // Seqlock write: odd stamp → payload → even stamp, fenced so the
    // payload cannot be observed outside the odd window.
    slot.stamp.store(((ticket + 1) << 1) - 1, Ordering::SeqCst);
    fence(Ordering::SeqCst);
    slot.words[W_TS].store(ts, Ordering::Relaxed);
    slot.words[W_META].store(kind as u64 | ((db_len as u64) << 8), Ordering::Relaxed);
    for (i, w) in db_words.iter().enumerate() {
        slot.words[W_DB0 + i].store(*w, Ordering::Relaxed);
    }
    slot.words[W_A].store(a, Ordering::Relaxed);
    slot.words[W_B].store(b, Ordering::Relaxed);
    slot.words[W_C].store(c, Ordering::Relaxed);
    fence(Ordering::SeqCst);
    slot.stamp.store((ticket + 1) << 1, Ordering::SeqCst);
}

/// Sampled eviction-pressure event: call on every eviction with the
/// running total; emits once per [`EVICT_SAMPLE`].
pub fn evict_pressure(total_evictions: u64) {
    if total_evictions.is_multiple_of(EVICT_SAMPLE) {
        event(Kind::EvictPressure, "", total_evictions, 0, 0);
    }
}

/// One decoded event (consistent snapshot of a slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (older events have smaller numbers; gaps
    /// mean the ring lapped).
    pub seq: u64,
    /// Microseconds since the recorder epoch.
    pub ts_us: u64,
    pub kind: Kind,
    pub db: String,
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

fn read_slot(slot: &Slot) -> Option<Event> {
    let s1 = slot.stamp.load(Ordering::SeqCst);
    if s1 == 0 || s1 & 1 == 1 {
        return None;
    }
    let mut words = [0u64; WORDS];
    for (i, w) in words.iter_mut().enumerate() {
        *w = slot.words[i].load(Ordering::Relaxed);
    }
    fence(Ordering::SeqCst);
    if slot.stamp.load(Ordering::SeqCst) != s1 {
        return None; // torn: a writer raced the copy
    }
    let meta = words[W_META];
    let kind = Kind::from_code(meta & 0xFF)?;
    let db_len = ((meta >> 8) & 0xFF) as usize;
    if db_len > DB_BYTES {
        return None;
    }
    let mut db = Vec::with_capacity(db_len);
    for i in 0..db_len {
        db.push(((words[W_DB0 + i / 8] >> ((i % 8) * 8)) & 0xFF) as u8);
    }
    Some(Event {
        seq: (s1 >> 1) - 1,
        ts_us: words[W_TS],
        kind,
        db: String::from_utf8_lossy(&db).into_owned(),
        a: words[W_A],
        b: words[W_B],
        c: words[W_C],
    })
}

/// A consistent snapshot of the ring, oldest first. Slots a writer is
/// mid-update on are skipped — the dump never contains a torn event.
pub fn snapshot() -> Vec<Event> {
    let r = recorder();
    let mut out: Vec<Event> = r.slots.iter().filter_map(read_slot).collect();
    out.sort_by_key(|e| e.seq);
    out
}

/// JSON string escaping for db names (which validated ids never need, but
/// the dump must stay parseable whatever ended up in the ring).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn event_json(e: &Event, epoch_unix_us: u64) -> String {
    let mut line = format!(
        "{{\"seq\":{},\"unix_us\":{},\"event\":\"{}\"",
        e.seq,
        epoch_unix_us.saturating_add(e.ts_us),
        e.kind.name()
    );
    if !e.db.is_empty() {
        let _ = write!(line, ",\"db\":\"{}\"", escape_json(&e.db));
    }
    for (name, value) in e.kind.arg_names().iter().zip([e.a, e.b, e.c]) {
        if let Some(name) = name {
            let _ = write!(line, ",\"{name}\":{value}");
        }
    }
    line.push('}');
    line
}

/// The ring as JSON lines, oldest event first — the payload of the
/// `FlightDump` wire reply and of the panic-hook dump.
pub fn dump_json() -> String {
    let epoch = recorder().epoch_unix_us;
    let mut out = String::new();
    for e in snapshot() {
        out.push_str(&event_json(&e, epoch));
        out.push('\n');
    }
    out
}

/// Validates that `text` is well-formed JSON lines: every non-empty line
/// parses as one self-contained JSON value. Returns the line count.
/// Shared by `exq debug --check` and the test suite so validation needs
/// no external JSON dependency.
pub fn validate_json_lines(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rest = json_value(line.trim()).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !rest.trim_start().is_empty() {
            return Err(format!("line {}: trailing garbage after value", i + 1));
        }
        n += 1;
    }
    Ok(n)
}

/// Minimal recursive-descent JSON checker: consumes one value from the
/// front of `s`, returning the unconsumed tail.
fn json_value(s: &str) -> Result<&str, String> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next().map(|(_, c)| c) {
        Some('{') => json_sequence(&s[1..], '}', true),
        Some('[') => json_sequence(&s[1..], ']', false),
        Some('"') => json_string(s).map(|(rest, _)| rest),
        Some('t') => s.strip_prefix("true").ok_or("bad literal".to_string()),
        Some('f') => s.strip_prefix("false").ok_or("bad literal".to_string()),
        Some('n') => s.strip_prefix("null").ok_or("bad literal".to_string()),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            s[..end]
                .parse::<f64>()
                .map_err(|_| format!("bad number `{}`", &s[..end]))?;
            Ok(&s[end..])
        }
        Some(c) => Err(format!("unexpected `{c}`")),
        None => Err("empty value".to_string()),
    }
}

/// Consumes `{…}` / `[…]` bodies after the opening bracket.
fn json_sequence(mut s: &str, close: char, keyed: bool) -> Result<&str, String> {
    s = s.trim_start();
    if let Some(rest) = s.strip_prefix(close) {
        return Ok(rest);
    }
    loop {
        if keyed {
            let (rest, _) = json_string(s.trim_start())?;
            s = rest.trim_start();
            s = s.strip_prefix(':').ok_or("missing `:`".to_string())?;
        }
        s = json_value(s)?.trim_start();
        if let Some(rest) = s.strip_prefix(',') {
            s = rest.trim_start();
            continue;
        }
        return s
            .strip_prefix(close)
            .ok_or_else(|| format!("missing `{close}`"));
    }
}

/// Consumes one JSON string (opening quote included in `s`).
fn json_string(s: &str) -> Result<(&str, &str), String> {
    let body = s.strip_prefix('"').ok_or("expected string".to_string())?;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((&body[i + c.len_utf8()..], &body[..i]));
        }
    }
    Err("unterminated string".to_string())
}

/// Installs a panic hook that dumps the flight recorder to stderr before
/// chaining to the previous hook — a crashing server leaves its last
/// seconds of history in the log. Idempotent per process.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let dump = dump_json();
            if dump.is_empty() {
                eprintln!("[exq:flight] recorder empty at panic");
            } else {
                eprintln!(
                    "[exq:flight] last {} event(s) before panic:",
                    dump.lines().count()
                );
                eprint!("{dump}");
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_the_ring() {
        event(Kind::Shed, "orders", 7, 3, 0);
        event(
            Kind::CheckpointEnd,
            "a-db-name-longer-than-twenty-four-bytes",
            12,
            900,
            0,
        );
        let snap = snapshot();
        let shed = snap
            .iter()
            .rfind(|e| e.kind == Kind::Shed && e.db == "orders");
        let shed = shed.expect("shed event present");
        assert_eq!((shed.a, shed.b), (7, 3));
        let ckpt = snap
            .iter()
            .rfind(|e| e.kind == Kind::CheckpointEnd)
            .expect("checkpoint event present");
        assert_eq!(
            ckpt.db, "a-db-name-longer-than-tw",
            "name truncates at {DB_BYTES}"
        );
        let dump = dump_json();
        let lines = validate_json_lines(&dump).expect("dump is valid JSON lines");
        assert!(lines >= 2);
        assert!(dump.contains("\"event\":\"shed\""));
        assert!(dump.contains("\"inflight\":7"));
    }

    #[test]
    fn ring_is_bounded() {
        for i in 0..(CAPACITY as u64 * 3) {
            event(Kind::Admit, "x", i, 0, 0);
        }
        let snap = snapshot();
        assert!(snap.len() <= CAPACITY);
        // Sequence numbers strictly increase within a snapshot.
        for pair in snap.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn json_lines_validator_accepts_and_rejects() {
        assert_eq!(
            validate_json_lines("{\"a\":1}\n{\"b\":[1,2,{\"c\":\"x\"}]}\n").unwrap(),
            2
        );
        assert_eq!(validate_json_lines("").unwrap(), 0);
        assert_eq!(validate_json_lines("null\n-1.5e3\n\"str\"\n").unwrap(), 3);
        assert!(validate_json_lines("{\"a\":1} trailing\n").is_err());
        assert!(validate_json_lines("{\"a\":}\n").is_err());
        assert!(validate_json_lines("{\"a\" 1}\n").is_err());
        assert!(validate_json_lines("\"unterminated\n").is_err());
        assert!(validate_json_lines("[1,2\n").is_err());
    }

    #[test]
    fn escaped_db_names_stay_parseable() {
        event(Kind::Busy, "we\"ird\\db", 100, 0, 0);
        let dump = dump_json();
        validate_json_lines(&dump).expect("escaped name parses");
        assert!(dump.contains("we\\\"ird\\\\db"));
    }
}
