//! Persistence: serialize the server's hosted state and the client's key
//! material to compact binary files, so a hosted database outlives the
//! process (and so the `exq` CLI can operate on real files).
//!
//! The format is a hand-rolled tagged binary layout (no external codec
//! dependencies in the core): little-endian integers, length-prefixed
//! strings/blobs, and a versioned magic header per artifact.
//!
//! Interval↔node alignment survives re-parsing because intervals are keyed
//! by the node's *pre-order position among elements and attributes*, which
//! is invariant under serialize→parse (text nodes are excluded: adjacent
//! text merging could shift their positions, and the server never looks up
//! text intervals).
//!
//! Crash safety: current-format (`..2` magic) artifacts end with a CRC32
//! over everything before it, verified on load — a truncated or bit-flipped
//! file yields a clean [`CoreError::Persist`], never garbage state. Saves
//! go through a temp file + `sync_all` + atomic rename, so a crash mid-save
//! leaves the previous artifact intact. Legacy `..1` files (no checksum)
//! still load.

use crate::client::Client;
use crate::encrypt::{ClientCryptoState, OpessAttr, ServerMetadata, ValueCodec};
use crate::error::CoreError;
use crate::server::Server;
use exq_crypto::opess::{ChunkCipher, PlanEntry};
use exq_crypto::{KeyChain, OpessPlan, SealedBlock};
use exq_index::dsi::Interval;
use exq_index::{BTree, BlockTable, DsiIndexTable};
use exq_xml::Document;
use exq_xpath::Path;
use std::collections::{HashMap, HashSet};

const SERVER_MAGIC: &[u8; 6] = b"EXQSV2";
const CLIENT_MAGIC: &[u8; 6] = b"EXQCL2";
/// Legacy pre-checksum formats, still loadable.
const SERVER_MAGIC_V1: &[u8; 6] = b"EXQSV1";
const CLIENT_MAGIC_V1: &[u8; 6] = b"EXQCL1";

/// Validates the artifact's magic and trailing checksum, returning the body
/// (between magic and checksum). Current-format files must end with a CRC32
/// over everything before it; legacy files carry no checksum.
pub(crate) fn checked_body<'a>(
    data: &'a [u8],
    magic: &[u8; 6],
    magic_v1: &[u8; 6],
    what: &str,
) -> Result<&'a [u8], CoreError> {
    let head = data.get(..6).ok_or_else(|| {
        CoreError::Persist(format!("not a {what} state file: shorter than its magic"))
    })?;
    if head == magic {
        let split = data
            .len()
            .checked_sub(4)
            .filter(|&s| s >= 6)
            .ok_or_else(|| CoreError::Persist(format!("{what} state file truncated")))?;
        let (payload, check) = data.split_at(split);
        let stored = u32::from_le_bytes([check[0], check[1], check[2], check[3]]);
        let computed = crate::codec::crc32(&[payload]);
        if stored != computed {
            return Err(CoreError::Persist(format!(
                "{what} state file corrupted: checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        Ok(&payload[6..])
    } else if head == magic_v1 {
        Ok(&data[6..])
    } else {
        Err(CoreError::Persist(format!("not a {what} state file")))
    }
}

/// Appends the trailing CRC32 to a serialized artifact.
pub(crate) fn seal_checksum(mut buf: Vec<u8>) -> Vec<u8> {
    let crc = crate::codec::crc32(&[&buf]);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Crash-safe write: temp file in the target's directory, `sync_all`, then
/// atomic rename over the destination. A crash at any point leaves either
/// the old artifact or the new one, never a torn mix.
pub(crate) fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> Result<(), CoreError> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(CoreError::Persist(e.to_string()));
    }
    Ok(())
}

// ---------------------------------------------------------------- codec --

/// Minimal byte writer (shared with the paged-store metadata codec).
#[derive(Default)]
pub(crate) struct W {
    pub(crate) buf: Vec<u8>,
}

impl W {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
    pub(crate) fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Minimal byte reader (shared with the paged-store metadata codec).
pub(crate) struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        R { buf, pos: 0 }
    }
    pub(crate) fn err(msg: &str) -> CoreError {
        CoreError::Persist(msg.to_owned())
    }
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::err("truncated input"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, CoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, CoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn u128(&mut self) -> Result<u128, CoreError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, CoreError> {
        let n = self.u64()? as usize;
        if n > self.buf.len() {
            return Err(Self::err("length prefix exceeds input"));
        }
        Ok(self.take(n)?.to_vec())
    }
    /// Reads an element count, bounding it by the remaining input (each
    /// element occupies at least `min_entry_size` bytes) so corrupted
    /// prefixes cannot trigger huge allocations.
    pub(crate) fn count(&mut self, min_entry_size: usize) -> Result<usize, CoreError> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_entry_size.max(1))
            .is_none_or(|need| need > remaining)
        {
            return Err(Self::err("count prefix exceeds input"));
        }
        Ok(n)
    }
    pub(crate) fn string(&mut self) -> Result<String, CoreError> {
        String::from_utf8(self.bytes()?).map_err(|_| Self::err("non-UTF-8 string"))
    }
    pub(crate) fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

pub(crate) fn interval(w: &mut W, iv: Interval) {
    w.u64(iv.lo);
    w.u64(iv.hi);
}

pub(crate) fn read_interval(r: &mut R) -> Result<Interval, CoreError> {
    let lo = r.u64()?;
    let hi = r.u64()?;
    if lo >= hi {
        return Err(R::err("degenerate interval"));
    }
    Ok(Interval::new(lo, hi))
}

// ---------------------------------------------------------------- server --

/// Memo of the serialized sealed-block section of a server artifact.
///
/// The block list is append-only (deletions tombstone ids, never remove
/// entries) and sealed blocks are immutable, so the encoding of blocks
/// `0..n` is a byte-stable prefix of the encoding of blocks `0..n+k`.
/// A save after an insert therefore only serializes the *new* blocks and
/// reuses the cached prefix — the mutation path's save cost becomes
/// O(update), not O(database). Cloning a server yields a fresh empty cache
/// (same policy as [`ServerCaches`](crate::cache::ServerCaches)).
#[derive(Default)]
pub(crate) struct BlockEncCache(std::sync::Mutex<EncCacheState>);

#[derive(Default)]
struct EncCacheState {
    encoded: Vec<u8>,
    count: usize,
}

impl Clone for BlockEncCache {
    fn clone(&self) -> Self {
        BlockEncCache::default()
    }
}

impl std::fmt::Debug for BlockEncCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.0.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("BlockEncCache")
            .field("count", &st.count)
            .field("bytes", &st.encoded.len())
            .finish()
    }
}

fn encode_block(buf: &mut Vec<u8>, b: &SealedBlock) {
    buf.extend_from_slice(&b.id.to_le_bytes());
    buf.extend_from_slice(&b.nonce);
    buf.extend_from_slice(&(b.ciphertext.len() as u64).to_le_bytes());
    buf.extend_from_slice(&b.ciphertext);
    buf.extend_from_slice(&b.tag);
}

impl BlockEncCache {
    /// Appends the encoding of `blocks` to `out`, extending the cached
    /// prefix with any blocks not yet encoded.
    pub(crate) fn encode_blocks(&self, blocks: &[std::sync::Arc<SealedBlock>], out: &mut Vec<u8>) {
        let mut st = self.0.lock().unwrap_or_else(|p| p.into_inner());
        if st.count > blocks.len() {
            // Defensive: the list shrank (never happens in practice) —
            // drop the memo rather than emit a stale prefix.
            st.encoded.clear();
            st.count = 0;
        }
        for b in &blocks[st.count..] {
            encode_block(&mut st.encoded, b);
        }
        st.count = blocks.len();
        out.extend_from_slice(&st.encoded);
    }
}

impl Server {
    /// Serializes the full hosted state.
    ///
    /// Fallible because a paged server reads its sealed blocks back through
    /// the store; an all-in-RAM server cannot actually fail here.
    pub fn save_bytes(&self) -> Result<Vec<u8>, CoreError> {
        let mut w = W::default();
        w.buf.extend_from_slice(SERVER_MAGIC);
        let visible_xml = self.visible_xml();
        w.string(&visible_xml);

        // Interval annotations by element/attribute pre-order position.
        let positions = self.interval_positions();
        w.u64(positions.len() as u64);
        for (pos, iv) in positions {
            w.u64(pos as u64);
            interval(&mut w, iv);
        }

        // DSI index table. The backing map iterates in per-instance hash
        // order; sort by tag so logically identical servers (e.g. before
        // and after a save/load round trip) serialize byte-identically.
        let dsi = &self.metadata().dsi_table;
        w.u64(dsi.tag_count() as u64);
        let mut dsi_entries: Vec<(&str, &[Interval])> = dsi.iter().collect();
        dsi_entries.sort_by_key(|&(tag, _)| tag);
        for (tag, ivs) in dsi_entries {
            w.string(tag);
            w.u64(ivs.len() as u64);
            for &iv in ivs {
                interval(&mut w, iv);
            }
        }

        // Block table.
        let bt = &self.metadata().block_table;
        w.u64(bt.len() as u64);
        for (iv, id) in bt.iter() {
            interval(&mut w, iv);
            w.u32(id);
        }

        // Value indexes.
        let vi = &self.metadata().value_indexes;
        w.u64(vi.len() as u64);
        let mut attrs: Vec<&String> = vi.keys().collect();
        attrs.sort();
        for attr in attrs {
            w.string(attr);
            let entries = vi[attr].iter();
            w.u64(entries.len() as u64);
            for (k, v) in entries {
                w.u128(k);
                w.u32(v);
            }
        }

        // Blocks (including tombstoned slots: ids are positional). The
        // encoding is served from the append-only prefix cache so saving
        // after an insert re-serializes only the new blocks.
        let blocks = self.collect_blocks()?;
        w.u64(blocks.len() as u64);
        self.enc_cache().encode_blocks(&blocks, &mut w.buf);
        let dead = self.dead_block_ids();
        w.u64(dead.len() as u64);
        for id in dead {
            w.u32(id);
        }
        Ok(seal_checksum(w.buf))
    }

    /// Restores a server from [`save_bytes`](Self::save_bytes) output.
    pub fn load_bytes(data: &[u8]) -> Result<Server, CoreError> {
        let body = checked_body(data, SERVER_MAGIC, SERVER_MAGIC_V1, "server")?;
        let mut r = R::new(body);
        let visible_xml = r.string()?;
        let visible = if visible_xml.is_empty() {
            Document::new()
        } else {
            Document::parse(&visible_xml)
                .map_err(|e| CoreError::Persist(format!("visible doc: {e}")))?
        };

        let n = r.count(24)?;
        let mut pos_intervals: HashMap<usize, Interval> = HashMap::with_capacity(n);
        for _ in 0..n {
            let pos = r.u64()? as usize;
            pos_intervals.insert(pos, read_interval(&mut r)?);
        }

        let mut dsi = DsiIndexTable::new();
        let tags = r.count(16)?;
        for _ in 0..tags {
            let tag = r.string()?;
            let k = r.count(16)?;
            for _ in 0..k {
                dsi.add(&tag, read_interval(&mut r)?);
            }
        }
        dsi.seal();

        let mut bt = BlockTable::new();
        let k = r.count(20)?;
        for _ in 0..k {
            let iv = read_interval(&mut r)?;
            let id = r.u32()?;
            bt.add(iv, id);
        }
        bt.seal();

        let mut value_indexes = HashMap::new();
        let k = r.count(16)?;
        for _ in 0..k {
            let attr = r.string()?;
            let n = r.count(20)?;
            let mut tree = BTree::new();
            for _ in 0..n {
                let key = r.u128()?;
                let val = r.u32()?;
                tree.insert(key, val);
            }
            value_indexes.insert(attr, tree);
        }

        let k = r.count(40)?;
        let mut blocks = Vec::with_capacity(k);
        for _ in 0..k {
            let id = r.u32()?;
            let nonce: [u8; 12] = r.take(12)?.try_into().unwrap();
            let ciphertext = r.bytes()?;
            let tag: [u8; 16] = r.take(16)?.try_into().unwrap();
            blocks.push(SealedBlock {
                id,
                nonce,
                ciphertext,
                tag,
            });
        }
        let k = r.count(4)?;
        let mut dead = HashSet::with_capacity(k);
        for _ in 0..k {
            dead.insert(r.u32()?);
        }
        if !r.finished() {
            return Err(R::err("trailing bytes"));
        }

        Ok(Server::from_parts(
            visible,
            pos_intervals,
            ServerMetadata {
                dsi_table: dsi,
                block_table: bt,
                value_indexes,
            },
            blocks,
            dead,
        ))
    }

    /// Saves to a file (crash-safe: temp file + fsync + atomic rename).
    pub fn save(&self, path: &std::path::Path) -> Result<(), CoreError> {
        atomic_write(path, &self.save_bytes()?)
    }

    /// Loads from a file.
    pub fn load(path: &std::path::Path) -> Result<Server, CoreError> {
        let data = std::fs::read(path).map_err(|e| CoreError::Persist(e.to_string()))?;
        Server::load_bytes(&data)
    }
}

// ---------------------------------------------------------------- client --

impl Client {
    /// Serializes the client's state (keys + vocabularies + OPESS plans).
    pub fn save_bytes(&self) -> Vec<u8> {
        let s = self.state();
        let mut w = W::default();
        w.buf.extend_from_slice(CLIENT_MAGIC);
        w.buf.extend_from_slice(&s.keys.master_key());

        string_set(&mut w, &s.encrypted_tags);
        string_set(&mut w, &s.plain_tags);

        let mut attrs: Vec<&String> = s.opess.keys().collect();
        attrs.sort();
        w.u64(attrs.len() as u64);
        for attr in attrs {
            let oa = &s.opess[attr];
            w.string(attr);
            match &oa.codec {
                ValueCodec::Numeric => w.u8(0),
                ValueCodec::Categorical(values) => {
                    w.u8(1);
                    w.u64(values.len() as u64);
                    for v in values {
                        w.string(v);
                    }
                }
            }
            let plan = &oa.plan;
            w.u32(plan.m());
            w.f64(plan.delta());
            w.u64(plan.weight_prefix().len() as u64);
            for &wp in plan.weight_prefix() {
                w.f64(wp);
            }
            w.u64(plan.entries().len() as u64);
            for e in plan.entries() {
                w.f64(e.plaintext);
                w.u32(e.count);
                w.u32(e.scale);
                w.u64(e.chunks.len() as u64);
                for c in &e.chunks {
                    w.u128(c.ciphertext);
                    w.u32(c.occurrences);
                }
            }
        }

        w.u64(s.scheme_paths.len() as u64);
        for p in &s.scheme_paths {
            w.string(&p.to_string());
        }
        w.u8(u8::from(s.lift_to_parent));
        seal_checksum(w.buf)
    }

    /// Restores a client from [`save_bytes`](Self::save_bytes) output.
    pub fn load_bytes(data: &[u8]) -> Result<Client, CoreError> {
        let body = checked_body(data, CLIENT_MAGIC, CLIENT_MAGIC_V1, "client")?;
        let mut r = R::new(body);
        let master: [u8; 32] = r.take(32)?.try_into().unwrap();
        let keys = KeyChain::new(master);

        let encrypted_tags = read_string_set(&mut r)?;
        let plain_tags = read_string_set(&mut r)?;

        let n = r.count(16)?;
        let mut opess = HashMap::with_capacity(n);
        for _ in 0..n {
            let attr = r.string()?;
            let codec = match r.u8()? {
                0 => ValueCodec::Numeric,
                1 => {
                    let k = r.count(8)?;
                    let mut values = Vec::with_capacity(k);
                    for _ in 0..k {
                        values.push(r.string()?);
                    }
                    ValueCodec::Categorical(values)
                }
                _ => return Err(R::err("unknown codec tag")),
            };
            let m = r.u32()?;
            let delta = r.f64()?;
            let k = r.count(8)?;
            let mut weights = Vec::with_capacity(k);
            for _ in 0..k {
                weights.push(r.f64()?);
            }
            let k = r.count(24)?;
            let mut entries = Vec::with_capacity(k);
            for _ in 0..k {
                let plaintext = r.f64()?;
                let count = r.u32()?;
                let scale = r.u32()?;
                let cn = r.count(20)?;
                let mut chunks = Vec::with_capacity(cn);
                for _ in 0..cn {
                    let ciphertext = r.u128()?;
                    let occurrences = r.u32()?;
                    chunks.push(ChunkCipher {
                        ciphertext,
                        occurrences,
                    });
                }
                entries.push(PlanEntry {
                    plaintext,
                    count,
                    chunks,
                    scale,
                });
            }
            let plan = OpessPlan::from_parts(keys.ope_key(&attr), m, weights, delta, entries);
            opess.insert(attr, OpessAttr { plan, codec });
        }

        let k = r.count(8)?;
        let mut scheme_paths = Vec::with_capacity(k);
        for _ in 0..k {
            let p = r.string()?;
            scheme_paths.push(Path::parse(&p).map_err(|e| CoreError::Persist(e.to_string()))?);
        }
        let lift_to_parent = r.u8()? != 0;
        if !r.finished() {
            return Err(R::err("trailing bytes"));
        }

        Ok(Client::new(ClientCryptoState {
            keys,
            encrypted_tags,
            plain_tags,
            opess,
            scheme_paths,
            lift_to_parent,
        }))
    }

    /// Saves to a file (crash-safe: temp file + fsync + atomic rename).
    pub fn save(&self, path: &std::path::Path) -> Result<(), CoreError> {
        atomic_write(path, &self.save_bytes())
    }

    /// Loads from a file.
    pub fn load(path: &std::path::Path) -> Result<Client, CoreError> {
        let data = std::fs::read(path).map_err(|e| CoreError::Persist(e.to_string()))?;
        Client::load_bytes(&data)
    }
}

fn string_set(w: &mut W, set: &HashSet<String>) {
    let mut v: Vec<&String> = set.iter().collect();
    v.sort();
    w.u64(v.len() as u64);
    for s in v {
        w.string(s);
    }
}

fn read_string_set(r: &mut R) -> Result<HashSet<String>, CoreError> {
    let n = r.count(8)?;
    let mut out = HashSet::with_capacity(n);
    for _ in 0..n {
        out.insert(r.string()?);
    }
    Ok(out)
}
