//! The transport layer: how encoded frames move between client and server.
//!
//! [`Transport`] abstracts the link. Two implementations:
//!
//! * [`InProcess`] — wraps a direct `Server` reference but still pushes
//!   every request and response through the frame codec, so byte accounting
//!   and decode hardening are identical to the networked path;
//! * [`TcpTransport`] — a real socket (std only, no async runtime), with
//!   connect retry + exponential backoff and per-request I/O timeouts.
//!
//! The server side is [`serve`]: an accept loop handing connections to a
//! small worker pool over an `Arc<RwLock<Server>>`. Read-style requests
//! (queries, block fetches) share the read lock and run concurrently;
//! mutations (insert/delete) take the write lock.
//!
//! Both sides treat the peer as untrusted at the framing layer: decode
//! errors never panic, and a connection that sends garbage framing is
//! answered with an error frame and closed.

use crate::codec::{
    trace_field_len, CodecError, Message, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN,
    TRACE_FIELD_LEN,
};
use crate::error::CoreError;
use crate::server::Server;
use crate::telemetry::{self, Counter};
use crate::update::{DeleteOutcome, InsertDelta, InsertionSlot};
use crate::wire::{ServerQuery, ServerResponse};
use exq_crypto::SealedBlock;
use exq_index::dsi::Interval;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Registry handles for wire-traffic counters, resolved once — the
/// steady-state cost per frame is three relaxed atomic adds.
struct WireMetrics {
    requests: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| WireMetrics {
        requests: telemetry::counter("exq_wire_requests_total"),
        bytes_sent: telemetry::counter("exq_wire_bytes_sent_total"),
        bytes_received: telemetry::counter("exq_wire_bytes_received_total"),
    })
}

/// Exact byte accounting for one transport: every frame that crossed the
/// link (or would have, for [`InProcess`]), measured in encoded bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
}

impl LinkStats {
    /// Traffic since an earlier snapshot.
    pub fn since(&self, earlier: &LinkStats) -> LinkStats {
        LinkStats {
            requests: self.requests - earlier.requests,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
        }
    }
}

/// A client-side link to a server.
///
/// `roundtrip` moves one request frame out and one response frame back; the
/// typed helpers wrap it with request construction and response matching.
/// Implementations must keep [`LinkStats`] exact: encoded frame lengths,
/// nothing estimated.
pub trait Transport {
    /// Sends one request and returns the raw response message (which may be
    /// an error frame — the typed helpers convert those to `Err`).
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError>;

    /// Cumulative traffic over this transport.
    fn stats(&self) -> LinkStats;

    /// Evaluate a translated query. Under an active trace, the roundtrip is
    /// a span and the server's returned spans are stitched in beneath it.
    fn send_query(&mut self, q: &ServerQuery) -> Result<ServerResponse, CoreError> {
        let guard = telemetry::span("wire.roundtrip");
        match self.roundtrip(&Message::Query(q.clone()))? {
            Message::Answer(mut r) => {
                let spans = std::mem::take(&mut r.spans);
                telemetry::adopt_spans(&spans, guard.id());
                Ok(r)
            }
            other => Err(unexpected("Answer", other)),
        }
    }

    /// Ship the whole hosted database (naive baseline).
    fn send_naive(&mut self) -> Result<ServerResponse, CoreError> {
        let guard = telemetry::span("wire.roundtrip");
        match self.roundtrip(&Message::NaiveQuery)? {
            Message::Answer(mut r) => {
                let spans = std::mem::take(&mut r.spans);
                telemetry::adopt_spans(&spans, guard.id());
                Ok(r)
            }
            other => Err(unexpected("Answer", other)),
        }
    }

    /// Fetch one sealed block.
    fn fetch_block(&mut self, id: u32) -> Result<Option<SealedBlock>, CoreError> {
        match self.roundtrip(&Message::FetchBlock(id))? {
            Message::Block(b) => Ok(b),
            other => Err(unexpected("Block", other)),
        }
    }

    /// Minimum or maximum ciphertext under an encrypted attribute.
    fn value_extreme(
        &mut self,
        attr_key: &str,
        max: bool,
    ) -> Result<Option<(u128, u32)>, CoreError> {
        let req = Message::ValueExtreme {
            attr_key: attr_key.to_owned(),
            max,
        };
        match self.roundtrip(&req)? {
            Message::Extreme(e) => Ok(e),
            other => Err(unexpected("Extreme", other)),
        }
    }

    /// Intervals matching a translated query (update path).
    fn locate(&mut self, q: &ServerQuery) -> Result<Vec<Interval>, CoreError> {
        match self.roundtrip(&Message::Locate(q.clone()))? {
            Message::Intervals(ivs) => Ok(ivs),
            other => Err(unexpected("Intervals", other)),
        }
    }

    /// Request an insertion slot under a parent interval.
    fn insertion_slot(&mut self, parent: Interval) -> Result<InsertionSlot, CoreError> {
        match self.roundtrip(&Message::InsertionSlotReq(parent))? {
            Message::Slot(s) => Ok(s),
            other => Err(unexpected("Slot", other)),
        }
    }

    /// Apply a prepared insertion.
    fn apply_insert(&mut self, delta: &InsertDelta) -> Result<(), CoreError> {
        match self.roundtrip(&Message::ApplyInsert(delta.clone()))? {
            Message::InsertOk => Ok(()),
            other => Err(unexpected("InsertOk", other)),
        }
    }

    /// Delete all subtrees matching a translated query.
    fn delete_where(&mut self, q: &ServerQuery) -> Result<DeleteOutcome, CoreError> {
        match self.roundtrip(&Message::DeleteWhere(q.clone()))? {
            Message::Deleted(outcome) => Ok(outcome),
            other => Err(unexpected("Deleted", other)),
        }
    }

    /// The server's cache counters (hits/misses/evictions, generation).
    fn cache_stats(&mut self) -> Result<crate::cache::CacheStatsSnapshot, CoreError> {
        match self.roundtrip(&Message::CacheStatsReq)? {
            Message::CacheStats(stats) => Ok(stats),
            other => Err(unexpected("CacheStats", other)),
        }
    }

    /// The server's metrics registry as Prometheus-style text.
    fn metrics_text(&mut self) -> Result<String, CoreError> {
        match self.roundtrip(&Message::MetricsReq)? {
            Message::MetricsText(text) => Ok(text),
            other => Err(unexpected("MetricsText", other)),
        }
    }
}

/// Error frames become their carried error; everything else is a protocol
/// violation.
fn unexpected(want: &str, got: Message) -> CoreError {
    match got {
        Message::Error(e) => e.into_core(),
        other => CoreError::Transport(format!(
            "expected {want} response, got message type {:#04x}",
            other.msg_type()
        )),
    }
}

// --------------------------------------------------------------- dispatch --

/// Answers a read-style request against a shared server. Mutating requests
/// are rejected (the caller must hold exclusive access for those).
pub fn answer_request(server: &Server, req: &Message) -> Result<Message, CoreError> {
    match req {
        Message::Query(q) => Ok(Message::Answer(server.answer(q))),
        Message::NaiveQuery => Ok(Message::Answer(server.answer_naive())),
        Message::FetchBlock(id) => Ok(Message::Block(server.fetch_block(*id))),
        Message::ValueExtreme { attr_key, max } => {
            Ok(Message::Extreme(server.value_extreme(attr_key, *max)))
        }
        Message::Locate(q) => Ok(Message::Intervals(server.locate(q))),
        Message::InsertionSlotReq(iv) => server.insertion_slot(*iv).map(Message::Slot),
        Message::CacheStatsReq => Ok(Message::CacheStats(server.cache_stats())),
        Message::MetricsReq => Ok(Message::MetricsText(telemetry::render())),
        Message::ApplyInsert(_) | Message::DeleteWhere(_) => Err(CoreError::Transport(
            "mutating request on a read-only server handle".into(),
        )),
        other => Err(CoreError::Transport(format!(
            "not a request: message type {:#04x}",
            other.msg_type()
        ))),
    }
}

/// Answers any request, including mutations.
pub fn apply_request(server: &mut Server, req: &Message) -> Result<Message, CoreError> {
    match req {
        Message::ApplyInsert(delta) => server.apply_insert(delta).map(|()| Message::InsertOk),
        Message::DeleteWhere(q) => Ok(Message::Deleted(server.delete_where(q))),
        other => answer_request(server, other),
    }
}

/// Runs a dispatch closure under a server-side trace scope for `trace`
/// (0 = untraced, inert scope); spans collected during dispatch ride back
/// on `Answer` responses so the client can stitch them into its tree.
/// Errors become error frames here so span collection can't be skipped.
fn dispatch_traced(trace: u64, dispatch: impl FnOnce() -> Result<Message, CoreError>) -> Message {
    let scope = telemetry::begin_trace(trace, telemetry::Side::Server);
    let result = dispatch();
    let spans = scope.finish();
    let mut reply = match result {
        Ok(msg) => msg,
        Err(e) => Message::Error(WireError::from_core(&e)),
    };
    if let Message::Answer(resp) = &mut reply {
        resp.spans = spans;
    }
    reply
}

// -------------------------------------------------------------- in-process --

enum ServerHandle<'a> {
    Shared(&'a Server),
    Exclusive(&'a mut Server),
}

/// The in-process transport: a direct server reference behind the full
/// frame codec. Every request is encoded, decoded, dispatched, and its
/// response encoded and decoded again — so hardening and byte accounting
/// match the TCP path bit for bit.
pub struct InProcess<'a> {
    server: ServerHandle<'a>,
    stats: LinkStats,
}

impl<'a> InProcess<'a> {
    /// Read-only link: queries, block fetches, aggregates. Mutating
    /// requests are answered with an error frame.
    pub fn shared(server: &'a Server) -> InProcess<'a> {
        InProcess {
            server: ServerHandle::Shared(server),
            stats: LinkStats::default(),
        }
    }

    /// Full link including insert/delete.
    pub fn exclusive(server: &'a mut Server) -> InProcess<'a> {
        InProcess {
            server: ServerHandle::Exclusive(server),
            stats: LinkStats::default(),
        }
    }
}

impl Transport for InProcess<'_> {
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError> {
        let frame = req.encode_frame_traced(telemetry::current_trace());
        self.stats.requests += 1;
        self.stats.bytes_sent += frame.len() as u64;
        // Decode our own frame: the server must only ever see what survives
        // the codec, exactly as over a socket.
        let (decoded, trace, version) = Message::decode_frame_full(&frame)?;
        // `dispatch_traced` pushes a *fresh* collector: the server runs on
        // the client's thread here, and the shield keeps server spans out
        // of the client's collector (they arrive via the response instead,
        // exactly as over TCP).
        let resp = dispatch_traced(trace, || match &mut self.server {
            ServerHandle::Shared(s) => answer_request(s, &decoded),
            ServerHandle::Exclusive(s) => apply_request(s, &decoded),
        });
        let resp_frame = resp.encode_frame_v(version, 0);
        self.stats.bytes_received += resp_frame.len() as u64;
        let m = wire_metrics();
        m.requests.inc();
        m.bytes_sent.add(frame.len() as u64);
        m.bytes_received.add(resp_frame.len() as u64);
        Ok(Message::decode_frame(&resp_frame)?)
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

// --------------------------------------------------------------------- tcp --

/// Connection/retry/timeout knobs for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Timeout for each connect attempt.
    pub connect_timeout: Duration,
    /// Total connect attempts before giving up.
    pub connect_attempts: u32,
    /// Sleep before the second attempt; doubles each further attempt.
    pub retry_backoff: Duration,
    /// Per-request read/write timeout.
    pub io_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            connect_attempts: 5,
            retry_backoff: Duration::from_millis(50),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// A blocking TCP client link speaking the frame protocol.
pub struct TcpTransport {
    stream: TcpStream,
    peer: SocketAddr,
    config: TcpConfig,
    stats: LinkStats,
}

impl TcpTransport {
    /// Connects with retry and exponential backoff.
    pub fn connect(addr: impl ToSocketAddrs, config: TcpConfig) -> Result<TcpTransport, CoreError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| CoreError::Transport(format!("address resolution failed: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(CoreError::Transport("address resolved to nothing".into()));
        }
        let mut backoff = config.retry_backoff;
        let mut last_err = String::new();
        for attempt in 0..config.connect_attempts.max(1) {
            if attempt > 0 {
                thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            for peer in &addrs {
                match TcpStream::connect_timeout(peer, config.connect_timeout) {
                    Ok(stream) => {
                        stream.set_nodelay(true).ok();
                        stream
                            .set_read_timeout(Some(config.io_timeout))
                            .map_err(|e| CoreError::Transport(e.to_string()))?;
                        stream
                            .set_write_timeout(Some(config.io_timeout))
                            .map_err(|e| CoreError::Transport(e.to_string()))?;
                        return Ok(TcpTransport {
                            stream,
                            peer: *peer,
                            config,
                            stats: LinkStats::default(),
                        });
                    }
                    Err(e) => last_err = e.to_string(),
                }
            }
        }
        Err(CoreError::Transport(format!(
            "connect to {addrs:?} failed after {} attempts: {last_err}",
            config.connect_attempts.max(1)
        )))
    }

    /// Connects with default [`TcpConfig`].
    pub fn connect_default(addr: impl ToSocketAddrs) -> Result<TcpTransport, CoreError> {
        TcpTransport::connect(addr, TcpConfig::default())
    }

    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }
}

impl Transport for TcpTransport {
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError> {
        let frame = req.encode_frame_traced(telemetry::current_trace());
        self.stream
            .write_all(&frame)
            .and_then(|_| self.stream.flush())
            .map_err(|e| CoreError::Transport(format!("send to {} failed: {e}", self.peer)))?;
        self.stats.requests += 1;
        self.stats.bytes_sent += frame.len() as u64;

        let mut resp_frame = vec![0u8; FRAME_HEADER_LEN];
        self.stream
            .read_exact(&mut resp_frame)
            .map_err(|e| CoreError::Transport(format!("receive from {} failed: {e}", self.peer)))?;
        let header: [u8; FRAME_HEADER_LEN] = resp_frame[..].try_into().expect("sized vec");
        let (version, _, payload_len) = Message::parse_header(&header)?;
        resp_frame.resize(FRAME_HEADER_LEN + trace_field_len(version) + payload_len, 0);
        self.stream
            .read_exact(&mut resp_frame[FRAME_HEADER_LEN..])
            .map_err(|e| CoreError::Transport(format!("receive from {} failed: {e}", self.peer)))?;
        self.stats.bytes_received += resp_frame.len() as u64;
        let m = wire_metrics();
        m.requests.inc();
        m.bytes_sent.add(frame.len() as u64);
        m.bytes_received.add(resp_frame.len() as u64);
        // Sanity note: config retained for future reconnect support.
        let _ = &self.config;
        Ok(Message::decode_frame(&resp_frame)?)
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }
}

// ------------------------------------------------------------------- serve --

/// Server-side knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-`read` socket timeout. Between frames this is only the polling
    /// cadence for the stop flag (an idle connection is never dropped for
    /// slowness); it also bounds how long shutdown can take.
    pub poll_interval: Duration,
    /// Total time a peer gets to deliver the *rest* of a frame once its
    /// first byte has arrived. A slow-but-live client dribbling bytes keeps
    /// the connection; one stalled mid-frame past this budget is dropped.
    pub io_timeout: Duration,
    /// Intra-query worker threads (`0` = auto via `EXQ_THREADS` /
    /// available parallelism); applied to the served [`Server`].
    pub threads: usize,
    /// Cache entries per layer: `Some(0)` disables caching, `None` resolves
    /// from `EXQ_CACHE` / the default; applied to the served [`Server`].
    pub cache_entries: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            poll_interval: Duration::from_millis(200),
            io_timeout: Duration::from_secs(30),
            threads: 0,
            cache_entries: None,
        }
    }
}

/// A running server; dropping it (or calling [`ServeHandle::shutdown`])
/// stops the accept loop and joins every thread.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
    server: Arc<RwLock<Server>>,
}

impl ServeHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cache counters of the served instance (for `exq serve` logging).
    pub fn cache_stats(&self) -> crate::cache::CacheStatsSnapshot {
        match self.server.read() {
            Ok(guard) => guard.cache_stats(),
            Err(poisoned) => poisoned.into_inner().cache_stats(),
        }
    }

    /// Stops accepting, drains workers, joins threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `accept`; a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Runs the frame protocol over `listener` against a shared server.
///
/// Read-style requests are answered under the read lock (concurrently);
/// insert/delete take the write lock. Returns immediately; the returned
/// handle owns the accept and worker threads.
pub fn serve(
    listener: TcpListener,
    server: Arc<RwLock<Server>>,
    config: ServeConfig,
) -> std::io::Result<ServeHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    // Apply the intra-query parallelism and cache knobs to the served
    // instance.
    match server.write() {
        Ok(mut guard) => {
            guard.set_threads(config.threads);
            guard.set_cache_entries(config.cache_entries);
        }
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            guard.set_threads(config.threads);
            guard.set_cache_entries(config.cache_entries);
        }
    }
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let mut threads = Vec::with_capacity(config.workers.max(1) + 1);

    for _ in 0..config.workers.max(1) {
        let rx = Arc::clone(&conn_rx);
        let srv = Arc::clone(&server);
        let stop_flag = Arc::clone(&stop);
        let poll_interval = config.poll_interval;
        let io_timeout = config.io_timeout;
        threads.push(thread::spawn(move || loop {
            // Lock is held only for the recv; a worker going down with a
            // panic would poison it, so recover defensively.
            let next = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(poisoned) => poisoned.into_inner().recv(),
            };
            match next {
                Ok(stream) => {
                    handle_connection(stream, &srv, &stop_flag, poll_interval, io_timeout)
                }
                Err(_) => return, // accept loop gone
            }
        }));
    }

    {
        let stop_flag = Arc::clone(&stop);
        threads.push(thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    return; // drops conn_tx, draining the workers
                }
                if let Ok(stream) = conn {
                    if conn_tx.send(stream).is_err() {
                        return;
                    }
                }
            }
        }));
    }

    Ok(ServeHandle {
        addr,
        stop,
        threads,
        server,
    })
}

/// Serves one connection until EOF, shutdown, a framing error, or a
/// mid-frame stall longer than `io_timeout`.
fn handle_connection(
    stream: TcpStream,
    server: &RwLock<Server>,
    stop: &AtomicBool,
    poll_interval: Duration,
    io_timeout: Duration,
) {
    let mut stream = stream;
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(poll_interval)).is_err() {
        return;
    }
    loop {
        // Waiting for a frame's first byte is *idle* time: poll the stop
        // flag forever, never drop for slowness. Once any byte of a frame
        // has arrived the peer owes us the rest within `io_timeout`.
        let mut header = [0u8; FRAME_HEADER_LEN];
        match read_exact_or_stop(&mut stream, &mut header, stop, io_timeout, false) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed | ReadOutcome::Stopped => return,
        }
        let (version, _, payload_len) = match Message::parse_header(&header) {
            Ok(v) => v,
            Err(e) => {
                // Framing is unrecoverable: answer once and drop the link.
                // The legacy frame version is understood by every peer.
                send_error(&mut stream, &e, crate::codec::LEGACY_PROTOCOL_VERSION);
                return;
            }
        };
        // v2 frames carry the trace-id field between header and payload.
        let mut frame = vec![0u8; FRAME_HEADER_LEN + trace_field_len(version) + payload_len];
        frame[..FRAME_HEADER_LEN].copy_from_slice(&header);
        // The payload read is mid-frame from its first moment: the header
        // already arrived, so the full-frame budget is already running.
        match read_exact_or_stop(
            &mut stream,
            &mut frame[FRAME_HEADER_LEN..],
            stop,
            io_timeout,
            true,
        ) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed | ReadOutcome::Stopped => return,
        }
        let reply = match Message::decode_frame_full(&frame) {
            Err(e) => {
                send_error(&mut stream, &e, version);
                return;
            }
            Ok((req, trace, _)) => dispatch_traced(trace, || {
                if req.is_mutation() {
                    match server.write() {
                        Ok(mut guard) => apply_request(&mut guard, &req),
                        Err(poisoned) => apply_request(&mut poisoned.into_inner(), &req),
                    }
                } else {
                    match server.read() {
                        Ok(guard) => answer_request(&guard, &req),
                        Err(poisoned) => answer_request(&poisoned.into_inner(), &req),
                    }
                }
            }),
        };
        // Reply in the request's protocol version so legacy peers can
        // decode the response.
        let frame = reply.encode_frame_v(version, 0);
        debug_assert!(frame.len() <= FRAME_HEADER_LEN + TRACE_FIELD_LEN + MAX_FRAME_LEN);
        if stream
            .write_all(&frame)
            .and_then(|_| stream.flush())
            .is_err()
        {
            return;
        }
    }
}

enum ReadOutcome {
    Ok,
    Closed,
    Stopped,
}

/// `read_exact` that keeps polling across short read timeouts so idle
/// connections still notice shutdown promptly, while holding a stalled
/// peer to the mid-frame budget.
///
/// Two timeout regimes, chosen by whether we are inside a frame:
///
/// * **idle** (`mid_frame == false` and nothing read yet) — each poll
///   timeout just re-checks the stop flag; a connection may sit here
///   indefinitely between requests;
/// * **mid-frame** (`mid_frame == true`, or as soon as the first byte of
///   this buffer lands) — a deadline of `io_timeout` starts; any progress
///   (fresh bytes) resets it, so a slow-but-live writer dribbling a large
///   frame is fine, but a peer that goes silent mid-frame is dropped once
///   the budget elapses.
fn read_exact_or_stop(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    io_timeout: Duration,
    mid_frame: bool,
) -> ReadOutcome {
    let mut filled = 0;
    let mut deadline = if mid_frame {
        Some(Instant::now() + io_timeout)
    } else {
        None
    };
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return ReadOutcome::Stopped;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => {
                filled += n;
                // Progress restarts the stall budget.
                deadline = Some(Instant::now() + io_timeout);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return ReadOutcome::Closed;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Ok
}

fn send_error(stream: &mut TcpStream, err: &CodecError, version: u8) {
    let core: CoreError = err.clone().into();
    let frame = Message::Error(WireError::from_core(&core)).encode_frame_v(version, 0);
    let _ = stream.write_all(&frame).and_then(|_| stream.flush());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WireCodec;

    #[test]
    fn link_stats_deltas() {
        let a = LinkStats {
            requests: 2,
            bytes_sent: 100,
            bytes_received: 900,
        };
        let b = LinkStats {
            requests: 5,
            bytes_sent: 180,
            bytes_received: 1400,
        };
        assert_eq!(
            b.since(&a),
            LinkStats {
                requests: 3,
                bytes_sent: 80,
                bytes_received: 500,
            }
        );
    }

    #[test]
    fn unexpected_error_frame_surfaces_core_error() {
        let err = unexpected(
            "Answer",
            Message::Error(WireError::from_core(&CoreError::Query("bad".into()))),
        );
        assert_eq!(err, CoreError::Query("bad".into()));
        let err = unexpected("Answer", Message::InsertOk);
        assert!(matches!(err, CoreError::Transport(_)));
    }

    #[test]
    fn in_process_counts_exact_frame_bytes() {
        // A server over the tiniest possible database.
        let doc = exq_xml::Document::parse("<r><a/></r>").unwrap();
        let hosted = crate::system::Outsourcer::new(crate::system::OutsourceConfig::default())
            .outsource(&doc, &[], crate::scheme::SchemeKind::Opt, 3)
            .unwrap();
        let (_, server) = hosted.split();
        let mut t = InProcess::shared(&server);
        let before = t.stats();
        assert_eq!(before, LinkStats::default());
        let resp = t.send_naive().unwrap();
        let stats = t.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(
            stats.bytes_sent as usize,
            Message::NaiveQuery.encode_frame().len()
        );
        assert_eq!(
            stats.bytes_received as usize,
            FRAME_HEADER_LEN + TRACE_FIELD_LEN + resp.encoded_len()
        );
        assert_eq!(stats.bytes_received as usize, resp.payload_bytes());
    }

    #[test]
    fn shared_handle_rejects_mutations() {
        let doc = exq_xml::Document::parse("<r><a/></r>").unwrap();
        let hosted = crate::system::Outsourcer::new(crate::system::OutsourceConfig::default())
            .outsource(&doc, &[], crate::scheme::SchemeKind::Opt, 3)
            .unwrap();
        let (_, server) = hosted.split();
        let mut t = InProcess::shared(&server);
        let q = ServerQuery {
            steps: vec![crate::wire::SStep {
                axis: crate::wire::SAxis::Descendant,
                tags: vec!["a".into()],
                preds: vec![],
            }],
            anchor: 0,
        };
        let err = t.delete_where(&q).unwrap_err();
        assert!(matches!(err, CoreError::Transport(_)), "got {err:?}");
    }
}
