//! The transport layer: how encoded frames move between client and server.
//!
//! [`Transport`] abstracts the link. Two implementations:
//!
//! * [`InProcess`] — wraps a direct `Server` reference but still pushes
//!   every request and response through the frame codec, so byte accounting
//!   and decode hardening are identical to the networked path;
//! * [`TcpTransport`] — a real socket (std only, no async runtime), with
//!   connect retry + exponential backoff and per-request I/O timeouts.
//!
//! The server side is [`serve_multi`]: an accept loop handing connections
//! to a small worker pool over a [`TenantRegistry`] — one process hosting
//! many named, independently-keyed sealed databases. Each wire-v4 frame
//! names the db it addresses (empty = the default db, which is also where
//! v1–v3 peers land); read-style requests share that tenant's read lock
//! and run concurrently, mutations take its write lock. The single-db
//! [`serve`] entry point wraps the caller's `Arc<RwLock<Server>>` as the
//! sole default tenant.
//!
//! Both sides treat the peer as untrusted at the framing layer: decode
//! errors never panic, and a connection that sends garbage framing is
//! answered with an error frame and closed.
//!
//! Fault tolerance: the serve loop enforces an optional max-in-flight
//! limit and per-request deadline, answering [`Message::Busy`] instead of
//! queueing unboundedly (cache-hit queries are admitted ahead of misses),
//! and keeps a per-tenant [`ReplayTable`] so a mutation replayed by the
//! client-side retry layer ([`crate::retry::Retry`]) is applied at most
//! once. Admission is *fair-share*: on top of the global in-flight limit,
//! each tenant is capped (its own quota, or `max_inflight` split evenly
//! across tenants), so one hot tenant's Busy storm cannot starve another
//! tenant's share of the server.

use crate::codec::{
    frame_extra_len, CodecError, DecodedFrame, Message, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
use crate::error::CoreError;
use crate::server::Server;
use crate::telemetry::{self, Counter, Gauge};
use crate::tenant::{Tenant, TenantRegistry, DEFAULT_DB};
use crate::update::{DeleteOutcome, InsertDelta, InsertionSlot};
use crate::wire::{ServerQuery, ServerResponse};
use exq_crypto::SealedBlock;
use exq_index::dsi::Interval;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Registry handles for wire-traffic counters, resolved once — the
/// steady-state cost per frame is three relaxed atomic adds.
struct WireMetrics {
    requests: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
}

fn wire_metrics() -> &'static WireMetrics {
    static METRICS: OnceLock<WireMetrics> = OnceLock::new();
    METRICS.get_or_init(|| WireMetrics {
        requests: telemetry::counter("exq_wire_requests_total"),
        bytes_sent: telemetry::counter("exq_wire_bytes_sent_total"),
        bytes_received: telemetry::counter("exq_wire_bytes_received_total"),
    })
}

/// Registry handles for the fault-tolerance counters on the serving side.
struct FtMetrics {
    /// Requests refused at admission because the server was saturated.
    shed: Arc<Counter>,
    /// Requests admitted but refused because the server could not be
    /// acquired within the deadline.
    deadline_shed: Arc<Counter>,
    /// Mutations answered from the replay table instead of re-applied.
    replay_hits: Arc<Counter>,
    /// Currently admitted requests.
    inflight: Arc<Gauge>,
}

fn ft_metrics() -> &'static FtMetrics {
    static METRICS: OnceLock<FtMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FtMetrics {
        shed: telemetry::counter("exq_server_shed_total"),
        deadline_shed: telemetry::counter("exq_server_deadline_shed_total"),
        replay_hits: telemetry::counter("exq_replay_hits_total"),
        inflight: telemetry::gauge("exq_server_inflight"),
    })
}

/// Registry handles for the accept-path counters shared by the blocking
/// serve loop and the event loop.
pub(crate) struct AcceptMetrics {
    /// `accept(2)` failures (fd exhaustion, aborted handshakes, …).
    pub(crate) accept_errors: Arc<Counter>,
    /// Accepted connections refused with `Busy` because the pending queue
    /// (blocking loop) or dispatch queue (event loop) was full.
    pub(crate) accept_rejected: Arc<Counter>,
    /// Connections accepted and waiting for a worker (blocking loop only;
    /// the event loop serves every connection from one thread).
    pub(crate) queue_depth: Arc<Gauge>,
}

pub(crate) fn accept_metrics() -> &'static AcceptMetrics {
    static METRICS: OnceLock<AcceptMetrics> = OnceLock::new();
    METRICS.get_or_init(|| AcceptMetrics {
        accept_errors: telemetry::counter("exq_accept_errors_total"),
        accept_rejected: telemetry::counter("exq_accept_rejected_total"),
        queue_depth: telemetry::gauge("exq_accept_queue_depth"),
    })
}

/// Exact byte accounting for one transport: every frame that crossed the
/// link (or would have, for [`InProcess`]), measured in encoded bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
}

impl LinkStats {
    /// Traffic since an earlier snapshot.
    pub fn since(&self, earlier: &LinkStats) -> LinkStats {
        LinkStats {
            requests: self.requests - earlier.requests,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
        }
    }
}

/// A client-side link to a server.
///
/// `roundtrip` moves one request frame out and one response frame back; the
/// typed helpers wrap it with request construction and response matching.
/// Implementations must keep [`LinkStats`] exact: encoded frame lengths,
/// nothing estimated.
pub trait Transport {
    /// Sends one request and returns the raw response message (which may be
    /// an error frame — the typed helpers convert those to `Err`).
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError>;

    /// Cumulative traffic over this transport.
    fn stats(&self) -> LinkStats;

    /// Sets the request id stamped on the *next* outbound frame (v3 frames
    /// only; 0 = unassigned). The retry layer keeps the id stable across
    /// attempts of one logical request so the server's [`ReplayTable`] can
    /// deduplicate replayed mutations. Transports without frame-level ids
    /// ignore it.
    fn set_next_request_id(&mut self, _id: u64) {}

    /// Liveness probe: one `Ping`/`Pong` roundtrip, returning its duration.
    /// The retry layer uses this after a reconnect to tell a dead server
    /// (ping fails) from a slow one (ping answers while a big query would
    /// not have).
    fn ping(&mut self) -> Result<Duration, CoreError> {
        let started = Instant::now();
        match self.roundtrip(&Message::Ping)? {
            Message::Pong => Ok(started.elapsed()),
            other => Err(unexpected("Pong", other)),
        }
    }

    /// Evaluate a translated query. Under an active trace, the roundtrip is
    /// a span and the server's returned spans are stitched in beneath it.
    fn send_query(&mut self, q: &ServerQuery) -> Result<ServerResponse, CoreError> {
        let guard = telemetry::span("wire.roundtrip");
        match self.roundtrip(&Message::Query(q.clone()))? {
            Message::Answer(mut r) => {
                let spans = std::mem::take(&mut r.spans);
                telemetry::adopt_spans(&spans, guard.id());
                Ok(r)
            }
            other => Err(unexpected("Answer", other)),
        }
    }

    /// Ship the whole hosted database (naive baseline).
    fn send_naive(&mut self) -> Result<ServerResponse, CoreError> {
        let guard = telemetry::span("wire.roundtrip");
        match self.roundtrip(&Message::NaiveQuery)? {
            Message::Answer(mut r) => {
                let spans = std::mem::take(&mut r.spans);
                telemetry::adopt_spans(&spans, guard.id());
                Ok(r)
            }
            other => Err(unexpected("Answer", other)),
        }
    }

    /// Fetch one sealed block.
    fn fetch_block(&mut self, id: u32) -> Result<Option<SealedBlock>, CoreError> {
        match self.roundtrip(&Message::FetchBlock(id))? {
            Message::Block(b) => Ok(b),
            other => Err(unexpected("Block", other)),
        }
    }

    /// Minimum or maximum ciphertext under an encrypted attribute.
    fn value_extreme(
        &mut self,
        attr_key: &str,
        max: bool,
    ) -> Result<Option<(u128, u32)>, CoreError> {
        let req = Message::ValueExtreme {
            attr_key: attr_key.to_owned(),
            max,
        };
        match self.roundtrip(&req)? {
            Message::Extreme(e) => Ok(e),
            other => Err(unexpected("Extreme", other)),
        }
    }

    /// Intervals matching a translated query (update path).
    fn locate(&mut self, q: &ServerQuery) -> Result<Vec<Interval>, CoreError> {
        match self.roundtrip(&Message::Locate(q.clone()))? {
            Message::Intervals(ivs) => Ok(ivs),
            other => Err(unexpected("Intervals", other)),
        }
    }

    /// Request an insertion slot under a parent interval.
    fn insertion_slot(&mut self, parent: Interval) -> Result<InsertionSlot, CoreError> {
        match self.roundtrip(&Message::InsertionSlotReq(parent))? {
            Message::Slot(s) => Ok(s),
            other => Err(unexpected("Slot", other)),
        }
    }

    /// Apply a prepared insertion.
    fn apply_insert(&mut self, delta: &InsertDelta) -> Result<(), CoreError> {
        match self.roundtrip(&Message::ApplyInsert(delta.clone()))? {
            Message::InsertOk => Ok(()),
            other => Err(unexpected("InsertOk", other)),
        }
    }

    /// Delete all subtrees matching a translated query.
    fn delete_where(&mut self, q: &ServerQuery) -> Result<DeleteOutcome, CoreError> {
        match self.roundtrip(&Message::DeleteWhere(q.clone()))? {
            Message::Deleted(outcome) => Ok(outcome),
            other => Err(unexpected("Deleted", other)),
        }
    }

    /// The server's cache counters (hits/misses/evictions, generation).
    fn cache_stats(&mut self) -> Result<crate::cache::CacheStatsSnapshot, CoreError> {
        match self.roundtrip(&Message::CacheStatsReq)? {
            Message::CacheStats(stats) => Ok(stats),
            other => Err(unexpected("CacheStats", other)),
        }
    }

    /// The server's metrics registry as Prometheus-style text.
    fn metrics_text(&mut self) -> Result<String, CoreError> {
        match self.roundtrip(&Message::MetricsReq)? {
            Message::MetricsText(text) => Ok(text),
            other => Err(unexpected("MetricsText", other)),
        }
    }

    /// The server's flight-recorder dump as JSON lines (oldest event
    /// first). Pre-v5 servers answer with a typed error.
    fn flight_dump(&mut self) -> Result<String, CoreError> {
        match self.roundtrip(&Message::FlightReq)? {
            Message::FlightDump(text) => Ok(text),
            other => Err(unexpected("FlightDump", other)),
        }
    }
}

/// A transport that can re-establish its link after a failure. The
/// client-side retry layer ([`crate::retry::Retry`]) calls
/// [`Reconnect::reconnect`] between attempts when a roundtrip failed with
/// a transport or codec error, since the underlying connection may be dead.
pub trait Reconnect: Transport {
    /// Drops the current link (if any) and establishes a fresh one.
    /// Cumulative [`LinkStats`] survive the reconnect.
    fn reconnect(&mut self) -> Result<(), CoreError>;
}

/// Error frames become their carried error; everything else is a protocol
/// violation.
fn unexpected(want: &str, got: Message) -> CoreError {
    match got {
        Message::Error(e) => e.into_core(),
        other => CoreError::Transport(format!(
            "expected {want} response, got message type {:#04x}",
            other.msg_type()
        )),
    }
}

// --------------------------------------------------------------- dispatch --

/// Answers a read-style request against a shared server. Mutating requests
/// are rejected (the caller must hold exclusive access for those).
pub fn answer_request(server: &Server, req: &Message) -> Result<Message, CoreError> {
    match req {
        Message::Query(q) => server.answer(q).map(Message::Answer),
        Message::NaiveQuery => server.answer_naive().map(Message::Answer),
        Message::FetchBlock(id) => server.fetch_block(*id).map(Message::Block),
        Message::ValueExtreme { attr_key, max } => {
            Ok(Message::Extreme(server.value_extreme(attr_key, *max)))
        }
        Message::Locate(q) => Ok(Message::Intervals(server.locate(q))),
        Message::InsertionSlotReq(iv) => server.insertion_slot(*iv).map(Message::Slot),
        Message::CacheStatsReq => Ok(Message::CacheStats(server.cache_stats())),
        Message::MetricsReq => {
            // A scrape must read *current* occupancy, not the gauges as of
            // the last mutation: republish this server's storage gauges
            // before rendering. (The serve loop additionally refreshes
            // every registered tenant.)
            if let Some(db) = server.paged_store() {
                db.publish_metrics();
            }
            Ok(Message::MetricsText(telemetry::render()))
        }
        Message::FlightReq => Ok(Message::FlightDump(crate::flight::dump_json())),
        Message::Ping => Ok(Message::Pong),
        Message::ApplyInsert(_) | Message::DeleteWhere(_) => Err(CoreError::Transport(
            "mutating request on a read-only server handle".into(),
        )),
        other => Err(CoreError::Transport(format!(
            "not a request: message type {:#04x}",
            other.msg_type()
        ))),
    }
}

/// Answers any request, including mutations.
pub fn apply_request(server: &mut Server, req: &Message) -> Result<Message, CoreError> {
    match req {
        Message::ApplyInsert(delta) => server.apply_insert(delta).map(|()| Message::InsertOk),
        Message::DeleteWhere(q) => server.delete_where(q).map(Message::Deleted),
        other => answer_request(server, other),
    }
}

/// Recorded replies retained for mutation deduplication. Generously larger
/// than any plausible number of concurrently retrying mutations.
pub const REPLAY_CAPACITY: usize = 1024;

/// The server-side at-most-once ledger: request id → the reply produced
/// when that mutation was first applied. A retried mutation (same id, sent
/// again because the client never saw the reply) is answered from the
/// ledger instead of being applied twice.
///
/// Bounded FIFO: old entries are evicted once [`REPLAY_CAPACITY`] newer
/// mutations have completed, by which point the original client has long
/// exhausted its retry budget.
pub struct ReplayTable {
    inner: Mutex<ReplayInner>,
    capacity: usize,
}

#[derive(Default)]
struct ReplayInner {
    replies: HashMap<u64, Message>,
    order: VecDeque<u64>,
}

impl ReplayTable {
    pub fn new(capacity: usize) -> ReplayTable {
        ReplayTable {
            inner: Mutex::new(ReplayInner::default()),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ReplayInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The recorded reply for `req_id`, if that mutation already ran.
    pub fn get(&self, req_id: u64) -> Option<Message> {
        self.lock().replies.get(&req_id).cloned()
    }

    /// Records the reply for a completed mutation, evicting the oldest
    /// entry when full.
    pub fn record(&self, req_id: u64, reply: Message) {
        let mut inner = self.lock();
        if inner.replies.insert(req_id, reply).is_none() {
            inner.order.push_back(req_id);
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.replies.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.lock().replies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ReplayTable {
    fn default() -> ReplayTable {
        ReplayTable::new(REPLAY_CAPACITY)
    }
}

/// [`apply_request`] with at-most-once replay protection: a mutation
/// carrying a nonzero request id that the table has already seen returns
/// its recorded reply instead of being re-applied. Must be called with the
/// same exclusive access as `apply_request` — the check-then-record is only
/// race-free because mutations serialize on the server's write lock.
pub fn apply_request_keyed(
    server: &mut Server,
    replay: &ReplayTable,
    req_id: u64,
    req: &Message,
) -> Result<Message, CoreError> {
    if req.is_mutation() && req_id != 0 {
        if let Some(reply) = replay.get(req_id) {
            ft_metrics().replay_hits.inc();
            return Ok(reply);
        }
        let reply = apply_request(server, req)?;
        // Errors are not recorded: applying a mutation is atomic, so a
        // deterministic failure simply fails again on replay.
        replay.record(req_id, reply.clone());
        return Ok(reply);
    }
    apply_request(server, req)
}

/// Runs a dispatch closure under a server-side trace scope for `trace`
/// (0 = untraced, inert scope); spans collected during dispatch ride back
/// on `Answer` responses so the client can stitch them into its tree.
/// Errors become error frames here so span collection can't be skipped.
/// When trace-all is on, untraced frames get a server-local trace id —
/// mutations and raw pipeline clients never stamp their frames, and a
/// server operator who asked for everything should still see them.
fn dispatch_traced(trace: u64, dispatch: impl FnOnce() -> Result<Message, CoreError>) -> Message {
    let trace = if trace == 0 && telemetry::tracing_wanted() {
        telemetry::new_trace_id()
    } else {
        trace
    };
    let scope = telemetry::begin_trace(trace, telemetry::Side::Server);
    let result = dispatch();
    let spans = scope.finish();
    let mut reply = match result {
        Ok(msg) => msg,
        Err(e) => Message::Error(WireError::from_core(&e)),
    };
    if let Message::Answer(resp) = &mut reply {
        resp.spans = spans;
    }
    reply
}

// -------------------------------------------------------------- in-process --

enum ServerHandle<'a> {
    Shared(&'a Server),
    Exclusive(&'a mut Server),
}

/// The in-process transport: a direct server reference behind the full
/// frame codec. Every request is encoded, decoded, dispatched, and its
/// response encoded and decoded again — so hardening and byte accounting
/// match the TCP path bit for bit.
pub struct InProcess<'a> {
    server: ServerHandle<'a>,
    stats: LinkStats,
    /// At-most-once ledger for mutations, honored exactly like the serve
    /// loop's so retry semantics are testable without sockets.
    replay: ReplayTable,
    next_req_id: u64,
}

impl<'a> InProcess<'a> {
    /// Read-only link: queries, block fetches, aggregates. Mutating
    /// requests are answered with an error frame.
    pub fn shared(server: &'a Server) -> InProcess<'a> {
        InProcess {
            server: ServerHandle::Shared(server),
            stats: LinkStats::default(),
            replay: ReplayTable::default(),
            next_req_id: 0,
        }
    }

    /// Full link including insert/delete.
    pub fn exclusive(server: &'a mut Server) -> InProcess<'a> {
        InProcess {
            server: ServerHandle::Exclusive(server),
            stats: LinkStats::default(),
            replay: ReplayTable::default(),
            next_req_id: 0,
        }
    }
}

impl Transport for InProcess<'_> {
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError> {
        let req_id = std::mem::take(&mut self.next_req_id);
        let frame = req.encode_frame_req(
            crate::codec::PROTOCOL_VERSION,
            telemetry::current_trace(),
            req_id,
        );
        self.stats.requests += 1;
        self.stats.bytes_sent += frame.len() as u64;
        // Decode our own frame: the server must only ever see what survives
        // the codec, exactly as over a socket.
        let d = Message::decode_frame_ext(&frame)?;
        // `dispatch_traced` pushes a *fresh* collector: the server runs on
        // the client's thread here, and the shield keeps server spans out
        // of the client's collector (they arrive via the response instead,
        // exactly as over TCP).
        let replay = &self.replay;
        let resp = dispatch_traced(d.trace, || match &mut self.server {
            ServerHandle::Shared(s) => answer_request(s, &d.msg),
            ServerHandle::Exclusive(s) => apply_request_keyed(s, replay, d.req_id, &d.msg),
        });
        // Replies echo the request's trace and request ids so a pipelining
        // client can correlate them; the in-process link keeps the exact
        // same bytes-on-the-wire semantics as the serve loop.
        let resp_frame = resp.encode_frame_req(d.version, d.trace, d.req_id);
        self.stats.bytes_received += resp_frame.len() as u64;
        let m = wire_metrics();
        m.requests.inc();
        m.bytes_sent.add(frame.len() as u64);
        m.bytes_received.add(resp_frame.len() as u64);
        Ok(Message::decode_frame(&resp_frame)?)
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn set_next_request_id(&mut self, id: u64) {
        self.next_req_id = id;
    }
}

impl Reconnect for InProcess<'_> {
    /// An in-process link has no connection to lose.
    fn reconnect(&mut self) -> Result<(), CoreError> {
        Ok(())
    }
}

// --------------------------------------------------------------------- tcp --

/// Connection/retry/timeout knobs for [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Timeout for each connect attempt.
    pub connect_timeout: Duration,
    /// Total connect attempts before giving up.
    pub connect_attempts: u32,
    /// Sleep before the second attempt; doubles each further attempt.
    pub retry_backoff: Duration,
    /// Per-request read/write timeout.
    pub io_timeout: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            connect_attempts: 5,
            retry_backoff: Duration::from_millis(50),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// A blocking TCP client link speaking the frame protocol. The resolved
/// peer addresses and config are retained so the link can be re-dialed
/// mid-session ([`Reconnect::reconnect`]) after a failure.
pub struct TcpTransport {
    stream: TcpStream,
    peer: SocketAddr,
    addrs: Vec<SocketAddr>,
    config: TcpConfig,
    stats: LinkStats,
    next_req_id: u64,
    /// Database the frames address on a multi-tenant server (empty = the
    /// server's default db).
    db: String,
}

/// One dial pass over the resolved addresses, with retry + backoff.
fn dial(addrs: &[SocketAddr], config: &TcpConfig) -> Result<(TcpStream, SocketAddr), CoreError> {
    let mut backoff = config.retry_backoff;
    let mut last_err = String::new();
    for attempt in 0..config.connect_attempts.max(1) {
        if attempt > 0 {
            thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        for peer in addrs {
            match TcpStream::connect_timeout(peer, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(config.io_timeout))
                        .map_err(|e| CoreError::Transport(e.to_string()))?;
                    stream
                        .set_write_timeout(Some(config.io_timeout))
                        .map_err(|e| CoreError::Transport(e.to_string()))?;
                    return Ok((stream, *peer));
                }
                Err(e) => last_err = e.to_string(),
            }
        }
    }
    Err(CoreError::Transport(format!(
        "connect to {addrs:?} failed after {} attempts: {last_err}",
        config.connect_attempts.max(1)
    )))
}

impl TcpTransport {
    /// Connects with retry and exponential backoff.
    pub fn connect(addr: impl ToSocketAddrs, config: TcpConfig) -> Result<TcpTransport, CoreError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| CoreError::Transport(format!("address resolution failed: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(CoreError::Transport("address resolved to nothing".into()));
        }
        let (stream, peer) = dial(&addrs, &config)?;
        Ok(TcpTransport {
            stream,
            peer,
            addrs,
            config,
            stats: LinkStats::default(),
            next_req_id: 0,
            db: String::new(),
        })
    }

    /// Connects with default [`TcpConfig`].
    pub fn connect_default(addr: impl ToSocketAddrs) -> Result<TcpTransport, CoreError> {
        TcpTransport::connect(addr, TcpConfig::default())
    }

    /// Addresses every subsequent frame to the named database on a
    /// multi-tenant server (builder form). Rejects invalid db ids up
    /// front, before anything hits the wire.
    pub fn with_db(mut self, db: &str) -> Result<TcpTransport, CoreError> {
        crate::tenant::validate_db_id(db)?;
        self.db = db.to_owned();
        Ok(self)
    }

    /// The database this transport addresses (empty = server default).
    pub fn db(&self) -> &str {
        &self.db
    }

    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }
}

impl Transport for TcpTransport {
    fn roundtrip(&mut self, req: &Message) -> Result<Message, CoreError> {
        let req_id = std::mem::take(&mut self.next_req_id);
        let frame = req.encode_frame_db(
            crate::codec::PROTOCOL_VERSION,
            telemetry::current_trace(),
            req_id,
            &self.db,
        )?;
        self.stream
            .write_all(&frame)
            .and_then(|_| self.stream.flush())
            .map_err(|e| CoreError::Transport(format!("send to {} failed: {e}", self.peer)))?;
        self.stats.requests += 1;
        self.stats.bytes_sent += frame.len() as u64;

        let mut header = [0u8; FRAME_HEADER_LEN];
        self.stream
            .read_exact(&mut header)
            .map_err(|e| CoreError::Transport(format!("receive from {} failed: {e}", self.peer)))?;
        let (version, _, payload_len) = Message::parse_header(&header)?;
        let mut resp_frame = vec![0u8; FRAME_HEADER_LEN + frame_extra_len(version) + payload_len];
        resp_frame[..FRAME_HEADER_LEN].copy_from_slice(&header);
        self.stream
            .read_exact(&mut resp_frame[FRAME_HEADER_LEN..])
            .map_err(|e| CoreError::Transport(format!("receive from {} failed: {e}", self.peer)))?;
        self.stats.bytes_received += resp_frame.len() as u64;
        let m = wire_metrics();
        m.requests.inc();
        m.bytes_sent.add(frame.len() as u64);
        m.bytes_received.add(resp_frame.len() as u64);
        let d = Message::decode_frame_ext(&resp_frame)?;
        // Servers echo the request id; a nonzero mismatch means this reply
        // answers some *other* request (a stale frame from a previous
        // exchange, say) and must not be attributed to this one. Zero is
        // tolerated for pre-echo servers.
        if req_id != 0 && d.req_id != 0 && d.req_id != req_id {
            return Err(CoreError::Transport(format!(
                "reply correlation mismatch: sent request id {req_id}, reply carries {}",
                d.req_id
            )));
        }
        Ok(d.msg)
    }

    fn stats(&self) -> LinkStats {
        self.stats
    }

    fn set_next_request_id(&mut self, id: u64) {
        self.next_req_id = id;
    }
}

impl Reconnect for TcpTransport {
    /// Re-dials the stored peer addresses with the original config,
    /// replacing the (possibly dead) stream. Traffic stats carry over; any
    /// half-read response on the old stream is abandoned with it.
    fn reconnect(&mut self) -> Result<(), CoreError> {
        let (stream, peer) = dial(&self.addrs, &self.config)?;
        self.stream = stream;
        self.peer = peer;
        Ok(())
    }
}

// ---------------------------------------------------------------- pipeline --

/// A pipelining TCP client link: many requests in flight on one
/// connection, correlated by the v3+ request-id field that server replies
/// echo. Where [`TcpTransport`] is strictly request→reply, a `Pipeline`
/// decouples [`Pipeline::submit`] from [`Pipeline::recv`], so a client can
/// keep the wire full instead of paying a full round trip per request.
///
/// Requires protocol v3 or newer (the first dialect with request ids);
/// naming a database requires v4+, and [`Pipeline::batch`] requires v5.
pub struct Pipeline {
    stream: TcpStream,
    peer: SocketAddr,
    addrs: Vec<SocketAddr>,
    config: TcpConfig,
    version: u8,
    db: String,
    next_id: u64,
    /// Requests submitted but not yet matched to a reply.
    outstanding: usize,
    stats: LinkStats,
}

impl Pipeline {
    /// Connects with retry and exponential backoff, speaking the current
    /// protocol version.
    pub fn connect(addr: impl ToSocketAddrs, config: TcpConfig) -> Result<Pipeline, CoreError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| CoreError::Transport(format!("address resolution failed: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(CoreError::Transport("address resolved to nothing".into()));
        }
        let (stream, peer) = dial(&addrs, &config)?;
        Ok(Pipeline {
            stream,
            peer,
            addrs,
            config,
            version: crate::codec::PROTOCOL_VERSION,
            db: String::new(),
            next_id: 1,
            outstanding: 0,
            stats: LinkStats::default(),
        })
    }

    /// Connects with default [`TcpConfig`].
    pub fn connect_default(addr: impl ToSocketAddrs) -> Result<Pipeline, CoreError> {
        Pipeline::connect(addr, TcpConfig::default())
    }

    /// Speaks an explicit protocol version (builder form) — v3 or newer,
    /// since pipelining needs the request-id field to correlate replies.
    pub fn with_version(mut self, version: u8) -> Result<Pipeline, CoreError> {
        if !(crate::codec::V3_PROTOCOL_VERSION..=crate::codec::PROTOCOL_VERSION).contains(&version)
        {
            return Err(CoreError::Transport(format!(
                "pipelining requires protocol v{}..=v{}, got v{version}",
                crate::codec::V3_PROTOCOL_VERSION,
                crate::codec::PROTOCOL_VERSION
            )));
        }
        if !self.db.is_empty() && version < crate::codec::V4_PROTOCOL_VERSION {
            return Err(CoreError::Transport(
                "a named database needs protocol v4 or newer".into(),
            ));
        }
        self.version = version;
        Ok(self)
    }

    /// Addresses every subsequent frame to the named database (v4+).
    pub fn with_db(mut self, db: &str) -> Result<Pipeline, CoreError> {
        crate::tenant::validate_db_id(db)?;
        if !db.is_empty() && self.version < crate::codec::V4_PROTOCOL_VERSION {
            return Err(CoreError::Transport(
                "a named database needs protocol v4 or newer".into(),
            ));
        }
        self.db = db.to_owned();
        Ok(self)
    }

    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Cumulative traffic over this pipeline.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Requests submitted but not yet answered.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submits one request without waiting for its reply, returning the
    /// request id its reply will carry.
    pub fn submit(&mut self, req: &Message) -> Result<u64, CoreError> {
        let id = self.next_id;
        self.next_id += 1;
        self.submit_as(req, id)?;
        Ok(id)
    }

    /// Submits one request under a caller-chosen (nonzero) request id —
    /// the retry layer keeps ids stable across resubmissions of the same
    /// logical request.
    pub fn submit_as(&mut self, req: &Message, req_id: u64) -> Result<(), CoreError> {
        if req_id == 0 {
            return Err(CoreError::Transport(
                "pipelined requests need a nonzero request id".into(),
            ));
        }
        let frame =
            req.encode_frame_db(self.version, telemetry::current_trace(), req_id, &self.db)?;
        self.stream
            .write_all(&frame)
            .and_then(|_| self.stream.flush())
            .map_err(|e| CoreError::Transport(format!("send to {} failed: {e}", self.peer)))?;
        self.next_id = self.next_id.max(req_id + 1);
        self.outstanding += 1;
        self.stats.requests += 1;
        self.stats.bytes_sent += frame.len() as u64;
        let m = wire_metrics();
        m.requests.inc();
        m.bytes_sent.add(frame.len() as u64);
        Ok(())
    }

    /// Receives the next reply frame, whatever request it answers,
    /// returning the echoed request id alongside the message.
    pub fn recv(&mut self) -> Result<(u64, Message), CoreError> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.stream
            .read_exact(&mut header)
            .map_err(|e| CoreError::Transport(format!("receive from {} failed: {e}", self.peer)))?;
        let (version, _, payload_len) = Message::parse_header(&header)?;
        let mut frame = vec![0u8; FRAME_HEADER_LEN + frame_extra_len(version) + payload_len];
        frame[..FRAME_HEADER_LEN].copy_from_slice(&header);
        self.stream
            .read_exact(&mut frame[FRAME_HEADER_LEN..])
            .map_err(|e| CoreError::Transport(format!("receive from {} failed: {e}", self.peer)))?;
        self.stats.bytes_received += frame.len() as u64;
        wire_metrics().bytes_received.add(frame.len() as u64);
        let d = Message::decode_frame_ext(&frame)?;
        self.outstanding = self.outstanding.saturating_sub(1);
        Ok((d.req_id, d.msg))
    }

    /// Submits every request back-to-back, then drains replies, matching
    /// them to requests by id. Returns the replies in submission order —
    /// byte-identical to what serial roundtrips would have produced, just
    /// without the per-request round-trip wait.
    pub fn roundtrip_many(&mut self, reqs: &[Message]) -> Result<Vec<Message>, CoreError> {
        let ids: Vec<u64> = reqs
            .iter()
            .map(|req| self.submit(req))
            .collect::<Result<_, _>>()?;
        let mut by_id: HashMap<u64, Message> = HashMap::with_capacity(ids.len());
        while by_id.len() < ids.len() {
            let (id, msg) = self.recv()?;
            if !ids.contains(&id) || by_id.insert(id, msg).is_some() {
                return Err(CoreError::Transport(format!(
                    "reply carries unknown or duplicate request id {id}"
                )));
            }
        }
        Ok(ids
            .into_iter()
            .map(|id| by_id.remove(&id).expect("collected above"))
            .collect())
    }

    /// Submits the group as one v5 [`Message::Batch`] frame and unpacks
    /// the [`Message::BatchAnswer`], returning per-item replies in order.
    /// A whole-batch `Busy` or `Error` reply surfaces as the error for the
    /// call.
    pub fn batch(&mut self, reqs: &[Message]) -> Result<Vec<Message>, CoreError> {
        if self.version < crate::codec::PROTOCOL_VERSION {
            return Err(CoreError::Transport(
                "batch frames need protocol v5 or newer".into(),
            ));
        }
        let id = self.submit(&Message::Batch(reqs.to_vec()))?;
        let (got, msg) = self.recv()?;
        if got != id && got != 0 {
            return Err(CoreError::Transport(format!(
                "batch reply carries request id {got}, expected {id}"
            )));
        }
        match msg {
            Message::BatchAnswer(items) => {
                if items.len() == reqs.len() {
                    Ok(items)
                } else {
                    Err(CoreError::Transport(format!(
                        "batch answer has {} items for {} requests",
                        items.len(),
                        reqs.len()
                    )))
                }
            }
            other => Err(unexpected("BatchAnswer", other)),
        }
    }

    /// Drops the connection and dials afresh. Outstanding requests are
    /// abandoned (their replies died with the old stream); the caller
    /// resubmits what it still needs, reusing the original ids so the
    /// server-side replay table can deduplicate.
    pub fn reconnect(&mut self) -> Result<(), CoreError> {
        let (stream, peer) = dial(&self.addrs, &self.config)?;
        self.stream = stream;
        self.peer = peer;
        self.outstanding = 0;
        Ok(())
    }
}

// ------------------------------------------------------------------- serve --

/// Server-side knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-`read` socket timeout. Between frames this is only the polling
    /// cadence for the stop flag (an idle connection is never dropped for
    /// slowness); it also bounds how long shutdown can take.
    pub poll_interval: Duration,
    /// Total time a peer gets to deliver the *rest* of a frame once its
    /// first byte has arrived. A slow-but-live client dribbling bytes keeps
    /// the connection; one stalled mid-frame past this budget is dropped.
    pub io_timeout: Duration,
    /// Intra-query worker threads (`0` = auto via `EXQ_THREADS` /
    /// available parallelism); applied to the served [`Server`].
    pub threads: usize,
    /// Cache entries per layer: `Some(0)` disables caching, `None` resolves
    /// from `EXQ_CACHE` / the default; applied to the served [`Server`].
    pub cache_entries: Option<usize>,
    /// Maximum concurrently admitted requests across all connections
    /// (`0` = unlimited). At the limit, new work is shed with
    /// [`Message::Busy`] — except cache-hit queries and cheap stats
    /// requests, which are still admitted.
    pub max_inflight: usize,
    /// Maximum concurrently admitted requests *per database* (`0` = auto:
    /// each tenant gets a fair share of `max_inflight`, split evenly).
    /// Keeps one hot tenant's burst from occupying every admission slot
    /// and starving quiet tenants.
    pub max_inflight_per_db: usize,
    /// Per-request deadline on acquiring the server (`ZERO` = none). A
    /// request that cannot take its lock within the deadline is answered
    /// [`Message::Busy`] instead of queueing behind a long writer.
    pub deadline: Duration,
    /// The `retry_after_ms` hint carried in `Busy` replies.
    pub retry_after: Duration,
    /// Accepted connections allowed to wait for a worker (blocking serve
    /// loop) or dispatched requests allowed to wait for one (event loop)
    /// before new arrivals are refused with `Busy` instead of queueing
    /// unboundedly (`0` = auto: 8× `workers`, at least 32).
    pub accept_backlog: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            poll_interval: Duration::from_millis(200),
            io_timeout: Duration::from_secs(30),
            threads: 0,
            cache_entries: None,
            max_inflight: 0,
            max_inflight_per_db: 0,
            deadline: Duration::ZERO,
            retry_after: Duration::from_millis(25),
            accept_backlog: 0,
        }
    }
}

impl ServeConfig {
    /// The effective bound on the acceptor→worker queue.
    pub(crate) fn backlog(&self) -> usize {
        if self.accept_backlog > 0 {
            self.accept_backlog
        } else {
            (self.workers.max(1) * 8).max(32)
        }
    }
}

/// Admission state shared by every connection of one [`serve_multi`]
/// instance. Per-tenant state (replay tables, per-db in-flight counters)
/// lives inside the registry's [`Tenant`]s.
pub(crate) struct ServeShared {
    /// The databases this instance hosts.
    pub(crate) registry: Arc<TenantRegistry>,
    /// Requests currently being dispatched across all tenants
    /// (admission-controlled).
    pub(crate) inflight: AtomicUsize,
}

/// Panic-safe in-flight accounting: decrements the global and per-tenant
/// counters (and mirrors the gauge) even if dispatch panics.
struct InflightGuard<'a> {
    shared: &'a ServeShared,
    tenant: &'a Tenant,
}

impl<'a> InflightGuard<'a> {
    fn enter(shared: &'a ServeShared, tenant: &'a Tenant) -> InflightGuard<'a> {
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        tenant.enter_inflight();
        ft_metrics().inflight.add(1);
        InflightGuard { shared, tenant }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        self.tenant.leave_inflight();
        ft_metrics().inflight.add(-1);
    }
}

/// The per-db admission cap in effect: an explicit `max_inflight_per_db`
/// wins; otherwise `max_inflight` is split evenly across tenants (at
/// least 1 each). `0` = no per-db cap.
fn fair_share(config: &ServeConfig, tenants: usize) -> usize {
    if config.max_inflight_per_db > 0 {
        config.max_inflight_per_db
    } else if config.max_inflight > 0 && tenants > 0 {
        (config.max_inflight / tenants).max(1)
    } else {
        0
    }
}

/// A running server; dropping it (or calling [`ServeHandle::shutdown`])
/// stops the accept loop and joins every thread.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
    registry: Arc<TenantRegistry>,
}

impl ServeHandle {
    /// Assembles a handle around externally spawned serve threads (the
    /// event loop lives in [`crate::evloop`] but shares this handle so
    /// callers shut both loop styles down identically).
    pub(crate) fn assemble(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        threads: Vec<thread::JoinHandle<()>>,
        registry: Arc<TenantRegistry>,
    ) -> ServeHandle {
        ServeHandle {
            addr,
            stop,
            threads,
            registry,
        }
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted databases.
    pub fn registry(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// Cache counters of the default database (for `exq serve` logging).
    pub fn cache_stats(&self) -> crate::cache::CacheStatsSnapshot {
        match self.registry.resolve("") {
            Ok(tenant) => tenant.cache_stats(),
            Err(_) => crate::cache::CacheStatsSnapshot::default(),
        }
    }

    /// Cache counters broken out per database, sorted by name.
    pub fn cache_stats_per_db(&self) -> Vec<(String, crate::cache::CacheStatsSnapshot)> {
        self.registry
            .tenants()
            .into_iter()
            .map(|t| (t.name().to_owned(), t.cache_stats()))
            .collect()
    }

    /// Stops accepting, drains workers, joins threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `accept`; a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Runs the frame protocol over `listener` against a shared server.
///
/// The server becomes the sole (default) database of a single-tenant
/// registry; frames that don't name a db — and all v1–v3 frames — route
/// to it, so existing single-database deployments behave exactly as
/// before. Read-style requests are answered under the read lock
/// (concurrently); insert/delete take the write lock. Returns
/// immediately; the returned handle owns the accept and worker threads.
pub fn serve(
    listener: TcpListener,
    server: Arc<RwLock<Server>>,
    config: ServeConfig,
) -> std::io::Result<ServeHandle> {
    let registry =
        Arc::new(TenantRegistry::single(DEFAULT_DB, server).expect("default db id is valid"));
    serve_multi(listener, registry, config)
}

/// Raises the kernel accept backlog on an already-listening socket.
///
/// `TcpListener::bind` hardcodes a backlog of 128; a burst of ~1000
/// simultaneous connects (E20 at scale) overflows the SYN queue and the
/// excess either times out or sees `ECONNREFUSED` before the accept loop
/// ever runs. POSIX allows re-calling `listen(2)` on a listening socket
/// to grow the backlog, so that is exactly what this does — the kernel
/// still clamps to `net.core.somaxconn`. Best-effort: a failure keeps the
/// default backlog rather than refusing to serve.
#[cfg(unix)]
pub(crate) fn tune_listen_backlog(listener: &TcpListener, config: &ServeConfig) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn listen(fd: std::ffi::c_int, backlog: std::ffi::c_int) -> std::ffi::c_int;
    }
    let want = config.backlog().max(1024).min(i32::MAX as usize) as std::ffi::c_int;
    if unsafe { listen(listener.as_raw_fd(), want) } != 0 {
        telemetry::log(
            telemetry::Level::Warn,
            &format!(
                "listen backlog {want} not applied: {}",
                std::io::Error::last_os_error()
            ),
        );
    }
}

#[cfg(not(unix))]
pub(crate) fn tune_listen_backlog(_listener: &TcpListener, _config: &ServeConfig) {}

/// Runs the frame protocol over `listener` against a registry of sealed
/// databases. v4 frames route by the db id they carry (empty = the
/// registry's default db); v1–v3 frames always hit the default db.
/// Unknown db ids are answered with a typed tenant error, never a panic
/// or a dropped connection.
pub fn serve_multi(
    listener: TcpListener,
    registry: Arc<TenantRegistry>,
    config: ServeConfig,
) -> std::io::Result<ServeHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    tune_listen_backlog(&listener, &config);
    apply_tenant_knobs(&registry, &config);
    // Bounded: connections past the backlog are answered `Busy` by the
    // accept thread instead of queueing forever behind pinned workers.
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.backlog());
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let shared = Arc::new(ServeShared {
        registry: Arc::clone(&registry),
        inflight: AtomicUsize::new(0),
    });
    let mut threads = Vec::with_capacity(config.workers.max(1) + 1);

    for _ in 0..config.workers.max(1) {
        let rx = Arc::clone(&conn_rx);
        let stop_flag = Arc::clone(&stop);
        let shr = Arc::clone(&shared);
        let cfg = config.clone();
        threads.push(thread::spawn(move || loop {
            // Lock is held only for the recv; a worker going down with a
            // panic would poison it, so recover defensively.
            let next = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(poisoned) => poisoned.into_inner().recv(),
            };
            match next {
                Ok(stream) => {
                    accept_metrics().queue_depth.add(-1);
                    handle_connection(stream, &shr, &stop_flag, &cfg)
                }
                Err(_) => return, // accept loop gone
            }
        }));
    }

    {
        let stop_flag = Arc::clone(&stop);
        let cfg = config.clone();
        threads.push(thread::spawn(move || {
            accept_loop(&listener, &conn_tx, &stop_flag, &cfg);
        }));
    }

    Ok(ServeHandle {
        addr,
        stop,
        threads,
        registry,
    })
}

/// Applies the intra-query parallelism and cache knobs to every hosted
/// instance (shared by the blocking serve loop and the event loop).
pub(crate) fn apply_tenant_knobs(registry: &TenantRegistry, config: &ServeConfig) {
    for tenant in registry.tenants() {
        match tenant.server.write() {
            Ok(mut guard) => {
                guard.set_threads(config.threads);
                guard.set_cache_entries(config.cache_entries);
            }
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.set_threads(config.threads);
                guard.set_cache_entries(config.cache_entries);
            }
        }
    }
}

/// Smallest/largest sleep after a failed `accept(2)`. Errors like fd
/// exhaustion (EMFILE) persist for a while: without backoff the accept
/// thread would spin at 100% CPU re-reporting the same failure.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

/// The blocking accept loop: hand connections to workers through the
/// bounded queue, refuse with `Busy` past the bound, and back off
/// (bounded, exponential) on accept errors instead of busy-spinning.
fn accept_loop(
    listener: &TcpListener,
    conn_tx: &mpsc::SyncSender<TcpStream>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    let metrics = accept_metrics();
    let mut backoff = ACCEPT_BACKOFF_MIN;
    let mut consecutive_errors = 0u64;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return; // drops conn_tx, draining the workers
        }
        match conn {
            Ok(stream) => {
                backoff = ACCEPT_BACKOFF_MIN;
                consecutive_errors = 0;
                match conn_tx.try_send(stream) {
                    Ok(()) => {
                        metrics.queue_depth.add(1);
                    }
                    Err(mpsc::TrySendError::Full(stream)) => {
                        metrics.accept_rejected.inc();
                        refuse_busy(stream, config.retry_after);
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => return,
                }
            }
            Err(_) => {
                metrics.accept_errors.inc();
                consecutive_errors += 1;
                crate::flight::event(
                    crate::flight::Kind::AcceptError,
                    "",
                    consecutive_errors,
                    0,
                    0,
                );
                thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// Best-effort `Busy` to a connection refused at the accept queue, then
/// close. Encoded as v3 — the oldest dialect with a `Busy` frame — since
/// the peer has not spoken yet; the write is bounded so a peer that never
/// reads cannot pin the accept thread.
pub(crate) fn refuse_busy(stream: TcpStream, retry_after: Duration) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    let frame = busy_reply(crate::codec::V3_PROTOCOL_VERSION, retry_after)
        .encode_frame_v(crate::codec::V3_PROTOCOL_VERSION, 0);
    let _ = stream.write_all(&frame);
}

/// Serves one connection until EOF, shutdown, a framing error, or a
/// mid-frame stall longer than `config.io_timeout`.
fn handle_connection(
    stream: TcpStream,
    shared: &ServeShared,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    let io_timeout = config.io_timeout;
    let mut stream = stream;
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(config.poll_interval)).is_err() {
        return;
    }
    // Writes poll at the same cadence as reads so a peer that stops
    // reading is held to the mid-frame stall budget instead of pinning
    // this worker in `write_all` forever.
    if stream
        .set_write_timeout(Some(config.poll_interval))
        .is_err()
    {
        return;
    }
    loop {
        // Waiting for a frame's first byte is *idle* time: poll the stop
        // flag forever, never drop for slowness. Once any byte of a frame
        // has arrived the peer owes us the rest within `io_timeout`.
        let mut header = [0u8; FRAME_HEADER_LEN];
        match read_exact_or_stop(&mut stream, &mut header, stop, io_timeout, false) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed | ReadOutcome::Stopped => return,
        }
        let (version, _, payload_len) = match Message::parse_header(&header) {
            Ok(v) => v,
            Err(e) => {
                // Framing is unrecoverable: answer once and drop the link.
                // The legacy frame version is understood by every peer.
                send_error(
                    &mut stream,
                    &e,
                    crate::codec::LEGACY_PROTOCOL_VERSION,
                    0,
                    0,
                    stop,
                    io_timeout,
                );
                return;
            }
        };
        // Frames beyond v1 carry extra fields between header and payload.
        let mut frame = vec![0u8; FRAME_HEADER_LEN + frame_extra_len(version) + payload_len];
        frame[..FRAME_HEADER_LEN].copy_from_slice(&header);
        // The payload read is mid-frame from its first moment: the header
        // already arrived, so the full-frame budget is already running.
        match read_exact_or_stop(
            &mut stream,
            &mut frame[FRAME_HEADER_LEN..],
            stop,
            io_timeout,
            true,
        ) {
            ReadOutcome::Ok => {}
            ReadOutcome::Closed | ReadOutcome::Stopped => return,
        }
        let (reply, trace, req_id) = match Message::decode_frame_ext(&frame) {
            Err(e) => {
                // The payload failed to decode but the framing fields may
                // still be intact: echo what can be salvaged so even the
                // error reply correlates for a pipelining client.
                let (trace, req_id) = salvage_frame_ids(&frame, version);
                send_error(&mut stream, &e, version, trace, req_id, stop, io_timeout);
                return;
            }
            Ok(d) => (serve_one(shared, config, &d), d.trace, d.req_id),
        };
        // Reply in the request's protocol version so legacy peers can
        // decode the response, echoing the request's trace and request ids
        // so a client with several requests in flight can correlate.
        let frame = reply.encode_frame_req(version, trace, req_id);
        debug_assert!(
            frame.len() <= FRAME_HEADER_LEN + crate::codec::FRAME_EXTRA_LEN + MAX_FRAME_LEN
        );
        if !write_all_or_stop(&mut stream, &frame, stop, io_timeout) {
            return;
        }
    }
}

/// Best-effort extraction of the trace and request ids from a raw frame
/// whose payload failed to decode: the framing fields sit at fixed offsets
/// for a given version, so they survive payload-level corruption. (After a
/// checksum failure the ids are untrustworthy, but echoing them is
/// harmless — the worst case is what always happened before: an error the
/// client cannot correlate.)
pub(crate) fn salvage_frame_ids(frame: &[u8], version: u8) -> (u64, u64) {
    use crate::codec::{TRACE_FIELD_LEN, V2_PROTOCOL_VERSION, V3_PROTOCOL_VERSION};
    let mut trace = 0u64;
    let mut req_id = 0u64;
    let trace_pos = FRAME_HEADER_LEN;
    if version >= V2_PROTOCOL_VERSION && frame.len() >= trace_pos + 8 {
        trace = u64::from_le_bytes(frame[trace_pos..trace_pos + 8].try_into().unwrap());
    }
    let id_pos = FRAME_HEADER_LEN + TRACE_FIELD_LEN;
    if version >= V3_PROTOCOL_VERSION && frame.len() >= id_pos + 8 {
        req_id = u64::from_le_bytes(frame[id_pos..id_pos + 8].try_into().unwrap());
    }
    (trace, req_id)
}

/// `write_all` with the same two-regime discipline as the read side: short
/// socket timeouts keep the stop flag responsive, progress resets the
/// stall budget, and a peer that stops draining its receive window is
/// dropped once `io_timeout` passes without a byte leaving. Returns
/// `false` if the connection should be closed.
fn write_all_or_stop(
    stream: &mut TcpStream,
    buf: &[u8],
    stop: &AtomicBool,
    io_timeout: Duration,
) -> bool {
    let mut written = 0;
    let mut deadline = Instant::now() + io_timeout;
    while written < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        match stream.write(&buf[written..]) {
            Ok(0) => return false,
            Ok(n) => {
                written += n;
                deadline = Instant::now() + io_timeout;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    stream.flush().is_ok()
}

/// How long a deadline-bounded lock acquisition sleeps between attempts.
const LOCK_POLL: Duration = Duration::from_micros(500);

/// The `Busy` reply in the requester's dialect: older peers don't know the
/// `Busy` frame, so they get a transport-class error carrying the hint.
pub(crate) fn busy_reply(version: u8, retry_after: Duration) -> Message {
    let retry_after_ms = retry_after.as_millis().min(u32::MAX as u128) as u32;
    crate::flight::event(crate::flight::Kind::Busy, "", retry_after_ms as u64, 0, 0);
    if version >= crate::codec::V3_PROTOCOL_VERSION {
        Message::Busy { retry_after_ms }
    } else {
        Message::Error(WireError::from_core(&CoreError::Transport(format!(
            "server busy; retry after {retry_after_ms}ms"
        ))))
    }
}

/// Request-class half of the admission policy: given that *some* in-flight
/// limit has been hit, is this request sheddable? Cheap stats requests are
/// always admitted (they answer from atomics); queries are admitted only
/// if the response cache already holds their answer — shedding expensive
/// misses while still serving hits keeps goodput up under overload.
fn shed_class(req: &Message, cache_hit: impl FnOnce() -> bool) -> bool {
    match req {
        Message::CacheStatsReq | Message::MetricsReq | Message::FlightReq => false,
        Message::Query(_) => !cache_hit(),
        _ => true,
    }
}

/// Admission policy at a single in-flight limit (the single-tenant view;
/// [`serve_one`] combines the global and per-db limits via [`shed_class`]).
#[cfg(test)]
fn should_shed(
    req: &Message,
    inflight: usize,
    max_inflight: usize,
    cache_hit: impl FnOnce() -> bool,
) -> bool {
    if max_inflight == 0 || inflight < max_inflight {
        return false;
    }
    shed_class(req, cache_hit)
}

/// Probes whether the response cache holds `q` without blocking: a held
/// write lock means the answer may be invalidated anyway, so treat it as a
/// miss.
fn probe_cache_hit(server: &RwLock<Server>, req: &Message) -> bool {
    let Message::Query(q) = req else { return false };
    match server.try_read() {
        Ok(guard) => guard.has_cached_response(q),
        Err(_) => false,
    }
}

/// Acquires the read lock, giving up after `deadline` (ZERO = wait
/// forever). Poisoning is recovered as elsewhere in the serve loop.
fn read_lock_within(
    server: &RwLock<Server>,
    deadline: Duration,
) -> Option<RwLockReadGuard<'_, Server>> {
    if deadline.is_zero() {
        return Some(match server.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        });
    }
    let until = Instant::now() + deadline;
    loop {
        match server.try_read() {
            Ok(guard) => return Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => return Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => {
                if Instant::now() >= until {
                    return None;
                }
                thread::sleep(LOCK_POLL);
            }
        }
    }
}

/// Write-lock counterpart of [`read_lock_within`].
fn write_lock_within(
    server: &RwLock<Server>,
    deadline: Duration,
) -> Option<RwLockWriteGuard<'_, Server>> {
    if deadline.is_zero() {
        return Some(match server.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        });
    }
    let until = Instant::now() + deadline;
    loop {
        match server.try_write() {
            Ok(guard) => return Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => return Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => {
                if Instant::now() >= until {
                    return None;
                }
                thread::sleep(LOCK_POLL);
            }
        }
    }
}

/// Dispatches one decoded request under admission control: resolves the
/// frame's db to a tenant (typed error for unknown dbs), sheds at the
/// global *or* per-db in-flight limit, bounds lock acquisition by the
/// deadline, and answers mutations through the tenant's own replay table
/// for at-most-once semantics.
pub(crate) fn serve_one(shared: &ServeShared, config: &ServeConfig, d: &DecodedFrame) -> Message {
    // Liveness probes answer instantly, without the server lock or an
    // admission slot: a saturated server is alive, not dead.
    if matches!(d.msg, Message::Ping) {
        return Message::Pong;
    }
    if let Message::Batch(items) = &d.msg {
        return serve_batch(shared, config, d, items);
    }
    let tenant = match shared.registry.resolve(&d.db) {
        Ok(t) => t,
        Err(e) => return Message::Error(WireError::from_core(&e)),
    };
    tenant.note_request();
    // Health gate: a degraded db refuses mutations (reads keep serving
    // from pool + page file), a faulted db refuses data traffic entirely.
    // Diagnostics always pass so operators can see what is wrong.
    if !matches!(
        d.msg,
        Message::MetricsReq | Message::FlightReq | Message::CacheStatsReq
    ) {
        if let Err(e) = tenant.admit_health(d.msg.is_mutation()) {
            return Message::Error(WireError::from_core(&e));
        }
    }
    let server = &tenant.server;
    let inflight = shared.inflight.load(Ordering::SeqCst);
    let over_global = config.max_inflight != 0 && inflight >= config.max_inflight;
    let db_cap = tenant.effective_cap(fair_share(config, shared.registry.len()));
    let over_db = db_cap != 0 && tenant.inflight() >= db_cap;
    if (over_global || over_db) && shed_class(&d.msg, || probe_cache_hit(server, &d.msg)) {
        ft_metrics().shed.inc();
        tenant.note_shed();
        crate::flight::event(
            crate::flight::Kind::Shed,
            tenant.name(),
            inflight as u64,
            db_cap as u64,
            0,
        );
        return busy_reply(d.version, config.retry_after);
    }
    if matches!(d.msg, Message::MetricsReq) {
        // Scrape-time freshness for every hosted db, not just this one.
        shared.registry.refresh_store_gauges();
    }
    let _guard = InflightGuard::enter(shared, &tenant);
    crate::flight::event(
        crate::flight::Kind::Admit,
        tenant.name(),
        shared.inflight.load(Ordering::SeqCst) as u64,
        0,
        0,
    );
    let deadline = config.deadline;
    let started = Instant::now();
    let mut profile = None;
    let reply = dispatch_traced(d.trace, || {
        telemetry::profile_begin();
        let result = if d.msg.is_mutation() {
            match write_lock_within(server, deadline) {
                Some(mut guard) => {
                    let r = apply_request_keyed(&mut guard, &tenant.replay, d.req_id, &d.msg);
                    // A persistence failure on the mutation path means the
                    // WAL (or store) is not accepting writes: flip this db
                    // to read-only now rather than waiting for the
                    // checkpointer to find out.
                    if let Err(CoreError::Persist(m)) = &r {
                        tenant.set_degraded(m);
                    }
                    r
                }
                None => {
                    ft_metrics().deadline_shed.inc();
                    Ok(busy_reply(d.version, config.retry_after))
                }
            }
        } else {
            match read_lock_within(server, deadline) {
                Some(guard) => answer_request(&guard, &d.msg),
                None => {
                    ft_metrics().deadline_shed.inc();
                    Ok(busy_reply(d.version, config.retry_after))
                }
            }
        };
        profile = finish_profile(&tenant, &result);
        result
    });
    let total = started.elapsed();
    telemetry::record_span(&format!("db.{}", tenant.name()), total);
    note_slow(tenant.name(), total, profile.as_ref());
    reply
}

/// Closes out one dispatched request's resource profile. Must run inside
/// the dispatch closure (the trace scope is still open there, so the
/// `profile.*` spans ride back on the `Answer`): stamps the reply's
/// shipped blocks and cache outcome into the profile, folds it into the
/// tenant's per-db totals — exactly once per request, which is what makes
/// `sum(profiles) == registry counters` hold — and records each field as
/// a `profile.*` span whose nanosecond value carries the raw count.
fn finish_profile(
    tenant: &Tenant,
    result: &Result<Message, CoreError>,
) -> Option<telemetry::QueryProfile> {
    match result {
        Ok(Message::Answer(resp)) => telemetry::with_profile(|p| {
            p.blocks_shipped += resp.blocks.len() as u64;
            p.cache_hit = resp.served_from_cache;
        }),
        Ok(Message::BatchAnswer(items)) => telemetry::with_profile(|p| {
            let mut answers = 0u64;
            let mut cached = 0u64;
            for item in items {
                if let Message::Answer(r) = item {
                    answers += 1;
                    p.blocks_shipped += r.blocks.len() as u64;
                    cached += r.served_from_cache as u64;
                }
            }
            p.cache_hit = answers > 0 && cached == answers;
        }),
        _ => {}
    }
    let profile = telemetry::profile_take()?;
    tenant.note_profile(&profile);
    if telemetry::current_trace() != 0 {
        for (name, value) in profile.span_fields() {
            if value > 0 {
                telemetry::record_span(name, Duration::from_nanos(value));
            }
        }
    }
    Some(profile)
}

/// Slow-request accounting shared by both serve paths: the annotated
/// slow-query log line plus a flight-recorder event.
fn note_slow(db: &str, total: Duration, profile: Option<&telemetry::QueryProfile>) {
    telemetry::note_server_query(db, total, profile);
    let threshold = telemetry::slow_threshold_ns();
    let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
    if threshold > 0 && total_ns >= threshold {
        crate::flight::event(
            crate::flight::Kind::SlowQuery,
            db,
            total_ns / 1000,
            profile.map_or(0, |p| p.pages_faulted),
            profile.map_or(0, |p| p.blocks_shipped),
        );
    }
}

/// Dispatches a [`Message::Batch`]: the whole group shares one tenant
/// resolution, one admission decision (a single in-flight slot), one
/// cache-probe pass, and one read-lock acquisition. Items are answered in
/// submission order inside a [`Message::BatchAnswer`]; a failing item
/// becomes an `Error` entry without sinking its siblings. Mutations and
/// nested batches never reach here — the codec rejects them at decode.
fn serve_batch(
    shared: &ServeShared,
    config: &ServeConfig,
    d: &DecodedFrame,
    items: &[Message],
) -> Message {
    let tenant = match shared.registry.resolve(&d.db) {
        Ok(t) => t,
        Err(e) => return Message::Error(WireError::from_core(&e)),
    };
    tenant.note_request();
    // Batches are read-only by construction (the codec rejects nested
    // mutations), so they pass on degraded dbs — but not on faulted ones,
    // unless every item is a diagnostic.
    let all_diagnostic = items.iter().all(|m| {
        matches!(
            m,
            Message::MetricsReq | Message::FlightReq | Message::CacheStatsReq | Message::Ping
        )
    });
    if !all_diagnostic {
        if let Err(e) = tenant.admit_health(false) {
            return Message::Error(WireError::from_core(&e));
        }
    }
    let server = &tenant.server;
    let inflight = shared.inflight.load(Ordering::SeqCst);
    let over_global = config.max_inflight != 0 && inflight >= config.max_inflight;
    let db_cap = tenant.effective_cap(fair_share(config, shared.registry.len()));
    let over_db = db_cap != 0 && tenant.inflight() >= db_cap;
    if (over_global || over_db) && !batch_all_cheap(server, items) {
        ft_metrics().shed.inc();
        tenant.note_shed();
        crate::flight::event(
            crate::flight::Kind::Shed,
            tenant.name(),
            inflight as u64,
            db_cap as u64,
            0,
        );
        return busy_reply(d.version, config.retry_after);
    }
    if items.iter().any(|m| matches!(m, Message::MetricsReq)) {
        shared.registry.refresh_store_gauges();
    }
    let _guard = InflightGuard::enter(shared, &tenant);
    crate::flight::event(
        crate::flight::Kind::Admit,
        tenant.name(),
        shared.inflight.load(Ordering::SeqCst) as u64,
        0,
        0,
    );
    let started = Instant::now();
    let mut profile = None;
    let reply = dispatch_traced(d.trace, || {
        telemetry::profile_begin();
        let result = match read_lock_within(server, config.deadline) {
            Some(guard) => Ok(Message::BatchAnswer(
                items
                    .iter()
                    .map(|item| {
                        answer_request(&guard, item)
                            .unwrap_or_else(|e| Message::Error(WireError::from_core(&e)))
                    })
                    .collect(),
            )),
            None => {
                ft_metrics().deadline_shed.inc();
                Ok(busy_reply(d.version, config.retry_after))
            }
        };
        profile = finish_profile(&tenant, &result);
        result
    });
    let total = started.elapsed();
    telemetry::record_span(&format!("db.{}", tenant.name()), total);
    note_slow(tenant.name(), total, profile.as_ref());
    reply
}

/// One cache-probe pass over a batch: under load the batch is still
/// admitted only if *every* item is cheap — a stats request, or a query
/// the response cache already answers. A single `try_read` guard probes
/// all items, so the pass costs one lock attempt regardless of batch size.
fn batch_all_cheap(server: &RwLock<Server>, items: &[Message]) -> bool {
    let Ok(guard) = server.try_read() else {
        return false;
    };
    items.iter().all(|item| match item {
        Message::CacheStatsReq | Message::MetricsReq | Message::FlightReq | Message::Ping => true,
        Message::Query(q) => guard.has_cached_response(q),
        _ => false,
    })
}

enum ReadOutcome {
    Ok,
    Closed,
    Stopped,
}

/// `read_exact` that keeps polling across short read timeouts so idle
/// connections still notice shutdown promptly, while holding a stalled
/// peer to the mid-frame budget.
///
/// Two timeout regimes, chosen by whether we are inside a frame:
///
/// * **idle** (`mid_frame == false` and nothing read yet) — each poll
///   timeout just re-checks the stop flag; a connection may sit here
///   indefinitely between requests;
/// * **mid-frame** (`mid_frame == true`, or as soon as the first byte of
///   this buffer lands) — a deadline of `io_timeout` starts; any progress
///   (fresh bytes) resets it, so a slow-but-live writer dribbling a large
///   frame is fine, but a peer that goes silent mid-frame is dropped once
///   the budget elapses.
fn read_exact_or_stop(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    io_timeout: Duration,
    mid_frame: bool,
) -> ReadOutcome {
    let mut filled = 0;
    let mut deadline = if mid_frame {
        Some(Instant::now() + io_timeout)
    } else {
        None
    };
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return ReadOutcome::Stopped;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => {
                filled += n;
                // Progress restarts the stall budget.
                deadline = Some(Instant::now() + io_timeout);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    return ReadOutcome::Closed;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Ok
}

fn send_error(
    stream: &mut TcpStream,
    err: &CodecError,
    version: u8,
    trace: u64,
    req_id: u64,
    stop: &AtomicBool,
    io_timeout: Duration,
) {
    let core: CoreError = err.clone().into();
    let frame =
        Message::Error(WireError::from_core(&core)).encode_frame_req(version, trace, req_id);
    write_all_or_stop(stream, &frame, stop, io_timeout);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::WireCodec;

    #[test]
    fn link_stats_deltas() {
        let a = LinkStats {
            requests: 2,
            bytes_sent: 100,
            bytes_received: 900,
        };
        let b = LinkStats {
            requests: 5,
            bytes_sent: 180,
            bytes_received: 1400,
        };
        assert_eq!(
            b.since(&a),
            LinkStats {
                requests: 3,
                bytes_sent: 80,
                bytes_received: 500,
            }
        );
    }

    #[test]
    fn unexpected_error_frame_surfaces_core_error() {
        let err = unexpected(
            "Answer",
            Message::Error(WireError::from_core(&CoreError::Query("bad".into()))),
        );
        assert_eq!(err, CoreError::Query("bad".into()));
        let err = unexpected("Answer", Message::InsertOk);
        assert!(matches!(err, CoreError::Transport(_)));
    }

    #[test]
    fn in_process_counts_exact_frame_bytes() {
        // A server over the tiniest possible database.
        let doc = exq_xml::Document::parse("<r><a/></r>").unwrap();
        let hosted = crate::system::Outsourcer::new(crate::system::OutsourceConfig::default())
            .outsource(&doc, &[], crate::scheme::SchemeKind::Opt, 3)
            .unwrap();
        let (_, server) = hosted.split();
        let mut t = InProcess::shared(&server);
        let before = t.stats();
        assert_eq!(before, LinkStats::default());
        let resp = t.send_naive().unwrap();
        let stats = t.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(
            stats.bytes_sent as usize,
            Message::NaiveQuery.encode_frame().len()
        );
        assert_eq!(
            stats.bytes_received as usize,
            FRAME_HEADER_LEN + crate::codec::FRAME_EXTRA_LEN + resp.encoded_len()
        );
        assert_eq!(stats.bytes_received as usize, resp.payload_bytes());
    }

    #[test]
    fn replay_table_dedupes_and_evicts() {
        let table = ReplayTable::new(2);
        assert!(table.is_empty());
        table.record(1, Message::InsertOk);
        table.record(2, Message::InsertOk);
        assert_eq!(table.get(1), Some(Message::InsertOk));
        // Re-recording the same id must not consume a second slot.
        table.record(1, Message::InsertOk);
        assert_eq!(table.len(), 2);
        // A third distinct id evicts the oldest.
        table.record(3, Message::InsertOk);
        assert_eq!(table.len(), 2);
        assert!(table.get(1).is_none());
        assert!(table.get(2).is_some());
        assert!(table.get(3).is_some());
    }

    #[test]
    fn shed_policy_prefers_cache_hits_and_stats() {
        let q = Message::Query(ServerQuery {
            steps: vec![],
            anchor: 0,
        });
        // No limit, or below the limit: never shed.
        assert!(!should_shed(&q, 100, 0, || false));
        assert!(!should_shed(&q, 3, 4, || false));
        // At the limit: cache misses shed, hits admitted.
        assert!(should_shed(&q, 4, 4, || false));
        assert!(!should_shed(&q, 4, 4, || true));
        // Stats requests always admitted; other work sheds.
        assert!(!should_shed(&Message::CacheStatsReq, 4, 4, || false));
        assert!(!should_shed(&Message::MetricsReq, 4, 4, || false));
        assert!(should_shed(&Message::NaiveQuery, 4, 4, || false));
    }

    #[test]
    fn busy_reply_downgrades_for_legacy_peers() {
        let v3 = busy_reply(crate::codec::PROTOCOL_VERSION, Duration::from_millis(25));
        assert_eq!(v3, Message::Busy { retry_after_ms: 25 });
        let v1 = busy_reply(
            crate::codec::LEGACY_PROTOCOL_VERSION,
            Duration::from_millis(25),
        );
        assert!(matches!(v1, Message::Error(_)), "got {v1:?}");
    }

    #[test]
    fn shared_handle_rejects_mutations() {
        let doc = exq_xml::Document::parse("<r><a/></r>").unwrap();
        let hosted = crate::system::Outsourcer::new(crate::system::OutsourceConfig::default())
            .outsource(&doc, &[], crate::scheme::SchemeKind::Opt, 3)
            .unwrap();
        let (_, server) = hosted.split();
        let mut t = InProcess::shared(&server);
        let q = ServerQuery {
            steps: vec![crate::wire::SStep {
                axis: crate::wire::SAxis::Descendant,
                tags: vec!["a".into()],
                preds: vec![],
            }],
            anchor: 0,
        };
        let err = t.delete_where(&q).unwrap_err();
        assert!(matches!(err, CoreError::Transport(_)), "got {err:?}");
    }
}
