//! Aggregate queries (§6.4).
//!
//! Thanks to the order-preserving value index, MIN and MAX over an encrypted
//! attribute are answered by fetching only the *one block* that contains the
//! extreme occurrence: the server finds the smallest/largest ciphertext in
//! the attribute's B-tree, ships the block it points to, and the client
//! decrypts just that block. COUNT, as the paper notes, cannot be computed
//! from the index (splitting and scaling deliberately destroy occurrence
//! counts), so it falls back to the full secure query path and counts the
//! post-processed results.

use crate::client::Client;
use crate::error::CoreError;
use crate::server::Server;
use exq_crypto::open_block;
use exq_xml::Document;
use exq_xpath::{eval_document, Path};

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    Min,
    Max,
    Count,
}

/// The result of an aggregate query.
#[derive(Debug, Clone)]
pub struct AggregateOutcome {
    /// The aggregate value (string form; numeric attributes render as
    /// numbers).
    pub value: Option<String>,
    /// Blocks the client had to decrypt (0 when the attribute is plaintext,
    /// 1 for MIN/MAX over an encrypted attribute).
    pub blocks_decrypted: usize,
}

impl Server {
    /// The live block holding the extreme ciphertext of an (encrypted)
    /// indexed attribute, or `None` if the attribute has no value index or
    /// every entry points at deleted data. Entries referencing tombstoned
    /// blocks (update support) are skipped.
    pub fn value_extreme(&self, attr_key: &str, max: bool) -> Option<(u128, u32)> {
        let tree = self.metadata().value_indexes.get(attr_key)?;
        // Fast path: the raw extreme is usually live.
        let raw = if max {
            tree.max_entry()
        } else {
            tree.min_entry()
        };
        if let Some((_, b)) = raw {
            // Liveness probe only — no need to page the block in.
            if self.block_live(b) {
                return raw;
            }
        }
        // Slow path after deletions: scan in key order for a live entry.
        let entries = tree.iter();
        let mut it: Box<dyn Iterator<Item = (u128, u32)>> = if max {
            Box::new(entries.into_iter().rev())
        } else {
            Box::new(entries.into_iter())
        };
        it.find(|&(_, b)| self.block_live(b))
    }
}

impl Client {
    /// Evaluates `agg` over the values selected by `value_path` (a path
    /// whose final step names the attribute, e.g. `//policy/@coverage` or
    /// `//age`) over an in-process link.
    pub fn aggregate(
        &self,
        server: &Server,
        value_path: &str,
        agg: Aggregate,
    ) -> Result<AggregateOutcome, CoreError> {
        let mut link = crate::transport::InProcess::shared(server);
        self.aggregate_via(&mut link, value_path, agg)
    }

    /// [`Client::aggregate`] over an arbitrary transport.
    pub fn aggregate_via(
        &self,
        transport: &mut dyn crate::transport::Transport,
        value_path: &str,
        agg: Aggregate,
    ) -> Result<AggregateOutcome, CoreError> {
        let path = Path::parse(value_path).map_err(|e| CoreError::Query(e.to_string()))?;
        let attr_key = attr_key(&path)
            .ok_or_else(|| CoreError::Query("aggregate path must end in a name".into()))?;

        match agg {
            Aggregate::Count => {
                // Splitting + scaling make COUNT impossible on the index;
                // run the full secure query and count (paper §6.4).
                let outcome = self.query_via(transport, value_path)?;
                Ok(AggregateOutcome {
                    value: Some(outcome.results.len().to_string()),
                    blocks_decrypted: outcome.blocks_shipped,
                })
            }
            Aggregate::Min | Aggregate::Max => {
                let want_max = agg == Aggregate::Max;
                if let Some(opess) = self.state().opess.get(&attr_key) {
                    // Encrypted attribute: one B-tree probe, one block.
                    let enc = self.state().keys.tag_cipher().encrypt(&attr_key);
                    let Some((_, block_id)) = transport.value_extreme(&enc, want_max)? else {
                        return Ok(AggregateOutcome {
                            value: None,
                            blocks_decrypted: 0,
                        });
                    };
                    let block = transport
                        .fetch_block(block_id)?
                        .ok_or_else(|| CoreError::Response("extreme block missing".into()))?;
                    let bytes = open_block(&self.state().keys.block_key(), &block)
                        .map_err(|e| CoreError::Block(e.to_string()))?;
                    let xml =
                        String::from_utf8(bytes).map_err(|e| CoreError::Block(e.to_string()))?;
                    let doc = Document::parse(&xml).map_err(|e| CoreError::Block(e.to_string()))?;
                    let value = extreme_in_fragment(&doc, &attr_key, want_max, &opess.codec);
                    Ok(AggregateOutcome {
                        value,
                        blocks_decrypted: 1,
                    })
                } else {
                    // Plaintext attribute: evaluate via the normal secure
                    // path (everything relevant is server-visible anyway).
                    let outcome = self.query_via(transport, value_path)?;
                    let texts: Vec<&str> =
                        outcome.results.iter().map(|r| extract_text(r)).collect();
                    let codec = crate::encrypt::ValueCodec::build(&texts);
                    let value = outcome
                        .results
                        .iter()
                        .map(|r| extract_text(r))
                        .filter_map(|v| codec.encode(v).map(|x| (x, v.to_owned())))
                        .max_by(|a, b| {
                            // total_cmp: a literal "NaN" value must not panic.
                            let ord = a.0.total_cmp(&b.0);
                            if want_max {
                                ord
                            } else {
                                ord.reverse()
                            }
                        })
                        .map(|(_, v)| v);
                    Ok(AggregateOutcome {
                        value,
                        blocks_decrypted: 0,
                    })
                }
            }
        }
    }
}

/// The attribute key (`name` or `@name`) named by a path's final step.
fn attr_key(path: &Path) -> Option<String> {
    let last = path.steps.last()?;
    match (&last.axis, &last.test) {
        (exq_xpath::Axis::Attribute, exq_xpath::NodeTest::Name(n)) => Some(format!("@{n}")),
        (_, exq_xpath::NodeTest::Name(n)) => Some(n.clone()),
        _ => None,
    }
}

/// Extremum of an attribute's occurrences inside a decrypted fragment.
fn extreme_in_fragment(
    doc: &Document,
    attr_key: &str,
    want_max: bool,
    codec: &crate::encrypt::ValueCodec,
) -> Option<String> {
    let query = match attr_key.strip_prefix('@') {
        Some(name) => format!("//@{name}"),
        None => format!("//{attr_key}"),
    };
    let path = Path::parse(&query).ok()?;
    eval_document(doc, &path)
        .into_iter()
        .map(|n| doc.text_value(n))
        .filter_map(|v| codec.encode(&v).map(|x| (x, v)))
        .max_by(|a, b| {
            // total_cmp: a literal "NaN" value must not panic.
            let ord = a.0.total_cmp(&b.0);
            if want_max {
                ord
            } else {
                ord.reverse()
            }
        })
        .map(|(_, v)| v)
}

/// Results render as `<tag>value</tag>` or bare values; extract the value.
fn extract_text(rendered: &str) -> &str {
    if let (Some(start), Some(end)) = (rendered.find('>'), rendered.rfind('<')) {
        if start < end {
            return &rendered[start + 1..end];
        }
    }
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::SecurityConstraint;
    use crate::scheme::SchemeKind;
    use crate::system::{OutsourceConfig, Outsourcer};

    fn hosted() -> (Client, Server) {
        let doc = Document::parse(
            r#"<hospital>
                <patient><pname>Betty</pname><age>35</age>
                  <insurance><policy coverage="1000000">34221</policy></insurance></patient>
                <patient><pname>Matt</pname><age>40</age>
                  <insurance><policy coverage="5000">78543</policy></insurance></patient>
                <patient><pname>Zoe</pname><age>29</age>
                  <insurance><policy coverage="10000">91111</policy></insurance></patient>
               </hospital>"#,
        )
        .unwrap();
        let cs = vec![
            SecurityConstraint::parse("//insurance").unwrap(),
            SecurityConstraint::parse("//patient:(/pname, //policy)").unwrap(),
        ];
        Outsourcer::new(OutsourceConfig::default())
            .outsource(&doc, &cs, SchemeKind::Opt, 5)
            .unwrap()
            .split()
    }

    #[test]
    fn min_max_over_encrypted_attribute() {
        let (client, server) = hosted();
        let max = client
            .aggregate(&server, "//policy/@coverage", Aggregate::Max)
            .unwrap();
        assert_eq!(max.value.as_deref(), Some("1000000"));
        assert_eq!(max.blocks_decrypted, 1);
        let min = client
            .aggregate(&server, "//policy/@coverage", Aggregate::Min)
            .unwrap();
        assert_eq!(min.value.as_deref(), Some("5000"));
        assert_eq!(min.blocks_decrypted, 1);
    }

    #[test]
    fn min_max_over_plain_attribute() {
        let (client, server) = hosted();
        let max = client.aggregate(&server, "//age", Aggregate::Max).unwrap();
        assert_eq!(max.value.as_deref(), Some("40"));
        assert_eq!(max.blocks_decrypted, 0);
        let min = client.aggregate(&server, "//age", Aggregate::Min).unwrap();
        assert_eq!(min.value.as_deref(), Some("29"));
    }

    #[test]
    fn count_falls_back_to_full_query() {
        let (client, server) = hosted();
        let c = client
            .aggregate(&server, "//policy", Aggregate::Count)
            .unwrap();
        assert_eq!(c.value.as_deref(), Some("3"));
    }

    #[test]
    fn extremes_skip_deleted_blocks() {
        let (client, mut server) = hosted();
        // Delete Betty, whose policy held the maximum coverage.
        let out = client.delete(&mut server, "//patient[age = 35]").unwrap();
        assert_eq!(out.deleted, 1);
        let max = client
            .aggregate(&server, "//policy/@coverage", Aggregate::Max)
            .unwrap();
        assert_eq!(max.value.as_deref(), Some("10000"));
        let min = client
            .aggregate(&server, "//policy/@coverage", Aggregate::Min)
            .unwrap();
        assert_eq!(min.value.as_deref(), Some("5000"));
    }

    #[test]
    fn missing_attribute() {
        let (client, server) = hosted();
        let r = client
            .aggregate(&server, "//nonexistent", Aggregate::Max)
            .unwrap();
        assert_eq!(r.value, None);
    }
}
