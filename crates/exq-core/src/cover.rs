//! The constraint graph and weighted vertex-cover solvers (§4.2).
//!
//! Enforcing a set of association SCs means choosing, per constraint, one of
//! its two endpoint paths to encrypt. Modeling endpoint paths as weighted
//! vertices (weight = encryption cost) and constraints as edges turns
//! optimal secure encryption scheme selection into minimum weighted vertex
//! cover — which is how the paper proves NP-hardness (Theorem 4.2, reduction
//! from VERTEX COVER).
//!
//! Three solvers are provided:
//!
//! * [`solve_exact`] — branch-and-bound exact minimum (the `opt` scheme of
//!   §7.1; constraint graphs are small, so exponential worst case is fine);
//! * [`solve_clarkson`] — Clarkson's modified greedy 2-approximation \[10\]
//!   (the `app` scheme);
//! * [`solve_matching`] — the classic maximal-matching 2-approximation,
//!   kept as an ablation baseline.

use crate::constraints::SecurityConstraint;
use exq_xml::Document;
use exq_xpath::{eval_document, Path};
use std::collections::HashMap;

/// A vertex: an absolute endpoint path plus its encryption cost.
#[derive(Debug, Clone)]
pub struct CoverVertex {
    pub path: Path,
    /// Encryption cost: total subtree size of all bound nodes, plus one
    /// decoy node per bound leaf (the |S| metric of Definition 4.1).
    pub weight: u64,
    /// How many document nodes the path binds.
    pub bound_nodes: usize,
}

/// The constraint graph (Figure 8): a vertex per distinct association
/// endpoint, an edge per association SC.
#[derive(Debug, Clone, Default)]
pub struct ConstraintGraph {
    pub vertices: Vec<CoverVertex>,
    pub edges: Vec<(usize, usize)>,
}

impl ConstraintGraph {
    /// Builds the graph from the association SCs in `constraints`, weighting
    /// vertices by their encryption cost on `doc`. Node-type SCs do not
    /// appear in the graph (they are unconditionally encrypted).
    pub fn build(doc: &Document, constraints: &[SecurityConstraint]) -> ConstraintGraph {
        let mut g = ConstraintGraph::default();
        let mut index: HashMap<String, usize> = HashMap::new();
        for sc in constraints {
            let Some((p1, p2)) = sc.endpoint_paths() else {
                continue;
            };
            let a = g.intern_vertex(doc, &mut index, p1);
            let b = g.intern_vertex(doc, &mut index, p2);
            if a != b && !g.edges.contains(&(a, b)) && !g.edges.contains(&(b, a)) {
                g.edges.push((a, b));
            }
        }
        g
    }

    fn intern_vertex(
        &mut self,
        doc: &Document,
        index: &mut HashMap<String, usize>,
        path: Path,
    ) -> usize {
        let key = path.to_string();
        if let Some(&i) = index.get(&key) {
            return i;
        }
        let bound = eval_document(doc, &path);
        let weight: u64 = bound
            .iter()
            .map(|&n| doc.subtree_size(n) as u64 + 1) // +1 models the decoy
            .sum();
        let v = CoverVertex {
            path,
            // A path binding nothing still costs a token amount so the
            // solvers have a total order.
            weight: weight.max(1),
            bound_nodes: bound.len(),
        };
        let i = self.vertices.len();
        self.vertices.push(v);
        index.insert(key, i);
        i
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total weight of a cover.
    pub fn cover_weight(&self, cover: &[usize]) -> u64 {
        cover.iter().map(|&v| self.vertices[v].weight).sum()
    }

    /// Does `cover` touch every edge?
    pub fn is_cover(&self, cover: &[usize]) -> bool {
        self.edges
            .iter()
            .all(|&(a, b)| cover.contains(&a) || cover.contains(&b))
    }
}

/// Exact minimum-weight vertex cover by branch and bound over edges.
pub fn solve_exact(g: &ConstraintGraph) -> Vec<usize> {
    let mut best: Option<(u64, Vec<usize>)> = None;
    let mut chosen = vec![false; g.vertices.len()];
    branch(g, 0, 0, &mut chosen, &mut best);
    let mut cover = best.map(|(_, c)| c).unwrap_or_default();
    cover.sort_unstable();
    cover
}

fn branch(
    g: &ConstraintGraph,
    edge_idx: usize,
    weight: u64,
    chosen: &mut Vec<bool>,
    best: &mut Option<(u64, Vec<usize>)>,
) {
    if best.as_ref().is_some_and(|(bw, _)| weight >= *bw) {
        return; // bound
    }
    // Find the next uncovered edge.
    let mut i = edge_idx;
    while i < g.edges.len() {
        let (a, b) = g.edges[i];
        if !chosen[a] && !chosen[b] {
            break;
        }
        i += 1;
    }
    if i == g.edges.len() {
        let cover: Vec<usize> = chosen
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| c.then_some(v))
            .collect();
        if best.as_ref().is_none_or(|(bw, _)| weight < *bw) {
            *best = Some((weight, cover));
        }
        return;
    }
    let (a, b) = g.edges[i];
    for v in [a, b] {
        chosen[v] = true;
        branch(g, i + 1, weight + g.vertices[v].weight, chosen, best);
        chosen[v] = false;
    }
}

/// Clarkson's modified greedy for weighted vertex cover (2-approximation):
/// repeatedly take the vertex minimizing residual-weight / residual-degree,
/// charging its ratio to the neighbors.
pub fn solve_clarkson(g: &ConstraintGraph) -> Vec<usize> {
    let n = g.vertices.len();
    let mut residual_w: Vec<f64> = g.vertices.iter().map(|v| v.weight as f64).collect();
    let mut alive_edges: Vec<(usize, usize)> = g.edges.clone();
    let mut cover = Vec::new();
    let mut in_cover = vec![false; n];
    while !alive_edges.is_empty() {
        let mut degree = vec![0usize; n];
        for &(a, b) in &alive_edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        let v = (0..n)
            .filter(|&v| !in_cover[v] && degree[v] > 0)
            .min_by(|&x, &y| {
                let rx = residual_w[x] / degree[x] as f64;
                let ry = residual_w[y] / degree[y] as f64;
                rx.partial_cmp(&ry).unwrap()
            })
            .expect("alive edge implies an uncovered endpoint");
        let ratio = residual_w[v] / degree[v] as f64;
        for &(a, b) in &alive_edges {
            if a == v {
                residual_w[b] -= ratio;
            } else if b == v {
                residual_w[a] -= ratio;
            }
        }
        in_cover[v] = true;
        cover.push(v);
        alive_edges.retain(|&(a, b)| a != v && b != v);
    }
    cover.sort_unstable();
    cover
}

/// Maximal-matching 2-approximation (unweighted flavor): for each uncovered
/// edge, take both endpoints.
pub fn solve_matching(g: &ConstraintGraph) -> Vec<usize> {
    let mut in_cover = vec![false; g.vertices.len()];
    for &(a, b) in &g.edges {
        if !in_cover[a] && !in_cover[b] {
            in_cover[a] = true;
            in_cover[b] = true;
        }
    }
    in_cover
        .iter()
        .enumerate()
        .filter_map(|(v, &c)| c.then_some(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            r#"<hospital>
                <patient><pname>Betty</pname><SSN>763895</SSN>
                  <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat></patient>
                <patient><pname>Matt</pname><SSN>276543</SSN>
                  <treat><disease>leukemia</disease><doctor>Brown</doctor></treat>
                  <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat></patient>
               </hospital>"#,
        )
        .unwrap()
    }

    fn constraints() -> Vec<SecurityConstraint> {
        [
            "//patient:(/pname, /SSN)",
            "//patient:(/pname, //disease)",
            "//treat:(/disease, /doctor)",
        ]
        .iter()
        .map(|s| SecurityConstraint::parse(s).unwrap())
        .collect()
    }

    #[test]
    fn graph_shape() {
        let d = doc();
        let g = ConstraintGraph::build(&d, &constraints());
        // endpoints: patient/pname, patient/SSN, patient//disease,
        // treat/disease, treat/doctor
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 3);
        // weights reflect document counts: pname binds 2 nodes (subtree 2 each +1 decoy)
        let pname = g
            .vertices
            .iter()
            .find(|v| v.path.to_string() == "//patient/pname")
            .unwrap();
        assert_eq!(pname.bound_nodes, 2);
        assert_eq!(pname.weight, 2 * 3);
    }

    #[test]
    fn node_type_scs_excluded() {
        let d = doc();
        let scs = vec![SecurityConstraint::parse("//treat").unwrap()];
        let g = ConstraintGraph::build(&d, &scs);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(solve_exact(&g).is_empty());
    }

    #[test]
    fn exact_is_a_cover_and_minimal() {
        let d = doc();
        let g = ConstraintGraph::build(&d, &constraints());
        let c = solve_exact(&g);
        assert!(g.is_cover(&c));
        // Brute-force verify minimality over all subsets.
        let n = g.vertex_count();
        let best = (0u32..1 << n)
            .filter_map(|mask| {
                let set: Vec<usize> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
                g.is_cover(&set).then(|| g.cover_weight(&set))
            })
            .min()
            .unwrap();
        assert_eq!(g.cover_weight(&c), best);
    }

    #[test]
    fn clarkson_within_twice_optimal() {
        let d = doc();
        let g = ConstraintGraph::build(&d, &constraints());
        let opt = g.cover_weight(&solve_exact(&g));
        let app = solve_clarkson(&g);
        assert!(g.is_cover(&app));
        assert!(g.cover_weight(&app) <= 2 * opt);
    }

    #[test]
    fn matching_is_a_cover() {
        let d = doc();
        let g = ConstraintGraph::build(&d, &constraints());
        let m = solve_matching(&g);
        assert!(g.is_cover(&m));
    }

    #[test]
    fn random_graphs_agree_on_coverness() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..9);
            let mut g = ConstraintGraph::default();
            for i in 0..n {
                g.vertices.push(CoverVertex {
                    path: Path::parse(&format!("//v{i}")).unwrap(),
                    weight: rng.gen_range(1..50),
                    bound_nodes: 1,
                });
            }
            for a in 0..n {
                for b in a + 1..n {
                    if rng.gen_bool(0.4) {
                        g.edges.push((a, b));
                    }
                }
            }
            let exact = solve_exact(&g);
            let clarkson = solve_clarkson(&g);
            let matching = solve_matching(&g);
            assert!(g.is_cover(&exact));
            assert!(g.is_cover(&clarkson));
            assert!(g.is_cover(&matching));
            assert!(g.cover_weight(&exact) <= g.cover_weight(&clarkson));
            assert!(g.cover_weight(&clarkson) <= 2 * g.cover_weight(&exact));
        }
    }

    #[test]
    fn empty_graph() {
        let g = ConstraintGraph::default();
        assert!(solve_exact(&g).is_empty());
        assert!(solve_clarkson(&g).is_empty());
        assert!(solve_matching(&g).is_empty());
        assert!(g.is_cover(&[]));
    }

    #[test]
    fn shared_endpoint_dedup() {
        // Two SCs sharing an endpoint produce 3 vertices, 2 edges.
        let d = doc();
        let scs = vec![
            SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap(),
            SecurityConstraint::parse("//patient:(/pname, //doctor)").unwrap(),
        ];
        let g = ConstraintGraph::build(&d, &scs);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        // Optimal cover is the shared pname vertex alone if cheapest.
        let c = solve_exact(&g);
        assert!(g.is_cover(&c));
    }
}
