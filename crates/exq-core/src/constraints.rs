//! Security constraints (§3.2).
//!
//! A security constraint (SC) is the data owner's specification of what must
//! be protected from the server:
//!
//! * a **node-type** constraint `p` (e.g. `//insurance`) classifies the whole
//!   subtree (tag, content, structure) of every node `p` binds to;
//! * an **association** constraint `p : (q1, q2)` (e.g.
//!   `//patient:(/pname, /SSN)`) classifies, for every node `x` bound by `p`,
//!   the association between the values that `q1` and `q2` bind to under `x`.
//!
//! Each SC *captures* a set of queries whose (non-)emptiness on the hosted
//! database must be protected; [`SecurityConstraint::captured_association_holds`]
//! implements the
//! `D ⊨ A` check for association queries `p[q1 = v1][q2 = v2]`.

use crate::error::CoreError;
use exq_xml::{Document, NodeId};
use exq_xpath::{eval_document, eval_from, Path};
use std::fmt;

/// A security constraint.
///
/// ```
/// use exq_core::SecurityConstraint;
/// let node_type = SecurityConstraint::parse("//insurance").unwrap();
/// assert!(!node_type.is_association());
/// let assoc = SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap();
/// let (q1, q2) = assoc.endpoint_paths().unwrap();
/// assert_eq!(q1.to_string(), "//patient/pname");
/// assert_eq!(q2.to_string(), "//patient/SSN");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SecurityConstraint {
    /// `p` — protect every element subtree bound by `p`.
    NodeType(Path),
    /// `p : (q1, q2)` — protect the association between the values bound by
    /// `q1` and `q2` in the context of each node bound by `p`.
    Association { context: Path, q1: Path, q2: Path },
}

impl SecurityConstraint {
    /// Parses the paper's SC syntax: either an XPath `p`, or
    /// `p:(q1, q2)` with relative paths `q1`, `q2`.
    pub fn parse(input: &str) -> Result<SecurityConstraint, CoreError> {
        let input = input.trim();
        match input.find(":(") {
            None => {
                let p =
                    Path::parse(input).map_err(|e| CoreError::ConstraintSyntax(e.to_string()))?;
                Ok(SecurityConstraint::NodeType(p))
            }
            Some(pos) => {
                let ctx = &input[..pos];
                let rest = input[pos + 2..]
                    .strip_suffix(')')
                    .ok_or_else(|| CoreError::ConstraintSyntax("missing `)`".into()))?;
                let mut parts = rest.splitn(2, ',');
                let q1 = parts
                    .next()
                    .ok_or_else(|| CoreError::ConstraintSyntax("missing q1".into()))?;
                let q2 = parts
                    .next()
                    .ok_or_else(|| CoreError::ConstraintSyntax("missing q2".into()))?;
                let parse = |s: &str| {
                    Path::parse(s.trim()).map_err(|e| CoreError::ConstraintSyntax(e.to_string()))
                };
                Ok(SecurityConstraint::Association {
                    context: parse(ctx)?,
                    q1: parse(q1)?,
                    q2: parse(q2)?,
                })
            }
        }
    }

    /// Is this an association-type constraint?
    pub fn is_association(&self) -> bool {
        matches!(self, SecurityConstraint::Association { .. })
    }

    /// For a node-type SC: the nodes that must be entirely encrypted.
    /// For an association SC: empty (association SCs are enforced through
    /// endpoint encryption chosen by the vertex-cover solver).
    pub fn node_targets(&self, doc: &Document) -> Vec<NodeId> {
        match self {
            SecurityConstraint::NodeType(p) => eval_document(doc, p),
            SecurityConstraint::Association { .. } => Vec::new(),
        }
    }

    /// For an association SC: the two *absolute endpoint paths*
    /// `p/q1` and `p/q2` whose bound node sets are the encryption choices.
    pub fn endpoint_paths(&self) -> Option<(Path, Path)> {
        match self {
            SecurityConstraint::NodeType(_) => None,
            SecurityConstraint::Association { context, q1, q2 } => {
                Some((context.join(q1), context.join(q2)))
            }
        }
    }

    /// `D ⊨ p[q1 = v1][q2 = v2]`: does some context node bound by `p` have a
    /// `q1` binding with value `v1` *and* a `q2` binding with value `v2`?
    pub fn captured_association_holds(&self, doc: &Document, v1: &str, v2: &str) -> bool {
        let SecurityConstraint::Association { context, q1, q2 } = self else {
            return false;
        };
        eval_document(doc, context).into_iter().any(|x| {
            eval_from(doc, q1, &[x])
                .iter()
                .any(|&n| doc.text_value(n) == v1)
                && eval_from(doc, q2, &[x])
                    .iter()
                    .any(|&n| doc.text_value(n) == v2)
        })
    }

    /// All value pairs `(v1, v2)` for which the captured association query
    /// holds — i.e. everything this SC says must be protected.
    pub fn sensitive_pairs(&self, doc: &Document) -> Vec<(String, String)> {
        let SecurityConstraint::Association { context, q1, q2 } = self else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for x in eval_document(doc, context) {
            for &a in &eval_from(doc, q1, &[x]) {
                for &b in &eval_from(doc, q2, &[x]) {
                    let pair = (doc.text_value(a), doc.text_value(b));
                    if !out.contains(&pair) {
                        out.push(pair);
                    }
                }
            }
        }
        out
    }

    /// Checks that this SC is enforced by the set of encrypted subtree roots
    /// `encrypted_roots`: every classified node must lie inside (or be) an
    /// encrypted subtree; for associations, *for each context binding*, at
    /// least one endpoint's bound nodes must all be encrypted.
    pub fn is_enforced(&self, doc: &Document, encrypted_roots: &[NodeId]) -> bool {
        let inside = |n: NodeId| {
            encrypted_roots
                .iter()
                .any(|&r| r == n || doc.ancestors(n).contains(&r))
        };
        match self {
            SecurityConstraint::NodeType(p) => eval_document(doc, p).into_iter().all(inside),
            SecurityConstraint::Association { context, q1, q2 } => {
                eval_document(doc, context).into_iter().all(|x| {
                    let n1 = eval_from(doc, q1, &[x]);
                    let n2 = eval_from(doc, q2, &[x]);
                    // If either endpoint has no bindings there is no
                    // association to protect in this context.
                    if n1.is_empty() || n2.is_empty() {
                        return true;
                    }
                    n1.iter().all(|&n| inside(n)) || n2.iter().all(|&n| inside(n))
                })
            }
        }
    }
}

impl fmt::Display for SecurityConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityConstraint::NodeType(p) => write!(f, "{p}"),
            SecurityConstraint::Association { context, q1, q2 } => {
                write!(f, "{context}:({q1}, {q2})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            r#"<hospital>
                <patient><pname>Betty</pname><SSN>763895</SSN>
                  <treat><disease>diarrhea</disease><doctor>Smith</doctor></treat>
                  <insurance><policy>34221</policy></insurance></patient>
                <patient><pname>Matt</pname><SSN>276543</SSN>
                  <treat><disease>leukemia</disease><doctor>Brown</doctor></treat></patient>
               </hospital>"#,
        )
        .unwrap()
    }

    #[test]
    fn parse_node_type() {
        let sc = SecurityConstraint::parse("//insurance").unwrap();
        assert!(matches!(sc, SecurityConstraint::NodeType(_)));
        assert_eq!(sc.to_string(), "//insurance");
    }

    #[test]
    fn parse_association() {
        let sc = SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap();
        assert!(sc.is_association());
        let (e1, e2) = sc.endpoint_paths().unwrap();
        assert_eq!(e1.to_string(), "//patient/pname");
        assert_eq!(e2.to_string(), "//patient/SSN");
    }

    #[test]
    fn parse_association_with_descendant_endpoint() {
        let sc = SecurityConstraint::parse("//patient:(/pname, //disease)").unwrap();
        let (_, e2) = sc.endpoint_paths().unwrap();
        assert_eq!(e2.to_string(), "//patient//disease");
    }

    #[test]
    fn parse_errors() {
        assert!(SecurityConstraint::parse("//patient:(/pname").is_err());
        assert!(SecurityConstraint::parse("//patient:(").is_err());
        assert!(SecurityConstraint::parse("//[").is_err());
    }

    #[test]
    fn node_targets() {
        let d = doc();
        let sc = SecurityConstraint::parse("//insurance").unwrap();
        assert_eq!(sc.node_targets(&d).len(), 1);
        let assoc = SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap();
        assert!(assoc.node_targets(&d).is_empty());
    }

    #[test]
    fn captured_association() {
        let d = doc();
        let sc = SecurityConstraint::parse("//patient:(/pname, //disease)").unwrap();
        assert!(sc.captured_association_holds(&d, "Betty", "diarrhea"));
        assert!(sc.captured_association_holds(&d, "Matt", "leukemia"));
        assert!(!sc.captured_association_holds(&d, "Betty", "leukemia"));
        assert!(!sc.captured_association_holds(&d, "Zoe", "diarrhea"));
    }

    #[test]
    fn sensitive_pairs() {
        let d = doc();
        let sc = SecurityConstraint::parse("//patient:(/pname, /SSN)").unwrap();
        let pairs = sc.sensitive_pairs(&d);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&("Betty".into(), "763895".into())));
    }

    #[test]
    fn enforcement_node_type() {
        let d = doc();
        let sc = SecurityConstraint::parse("//insurance").unwrap();
        let ins = d.elements_by_tag("insurance");
        assert!(sc.is_enforced(&d, &ins));
        // Encrypting the patient (an ancestor) also enforces it.
        let patients = d.elements_by_tag("patient");
        assert!(sc.is_enforced(&d, &patients));
        assert!(!sc.is_enforced(&d, &[]));
    }

    #[test]
    fn enforcement_association_either_endpoint() {
        let d = doc();
        let sc = SecurityConstraint::parse("//patient:(/pname, //disease)").unwrap();
        let pnames = d.elements_by_tag("pname");
        let diseases = d.elements_by_tag("disease");
        assert!(sc.is_enforced(&d, &pnames));
        assert!(sc.is_enforced(&d, &diseases));
        // Encrypting only one patient's pname is not enough.
        assert!(!sc.is_enforced(&d, &pnames[..1]));
    }

    #[test]
    fn enforcement_vacuous_context() {
        let d = doc();
        let sc = SecurityConstraint::parse("//visit:(/a, /b)").unwrap();
        assert!(sc.is_enforced(&d, &[]));
    }
}
