//! Unified error type for the core crate.

use std::fmt;

/// Errors surfaced by the core system.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A security-constraint expression failed to parse.
    ConstraintSyntax(String),
    /// An XPath expression failed to parse.
    Query(String),
    /// The document is empty or malformed for the requested operation.
    EmptyDocument,
    /// OPESS plan construction failed for an attribute.
    Opess(String),
    /// A sealed block failed to decrypt/authenticate.
    Block(String),
    /// Response payload could not be parsed back into a document.
    Response(String),
    /// Persistence (save/load) failure.
    Persist(String),
    /// A wire frame failed to encode/decode (see `codec`).
    Codec(String),
    /// A transport-level failure: connect, send, receive, or timeout.
    Transport(String),
    /// A multi-tenant registry failure: unknown, duplicate, or invalid
    /// database name.
    Tenant(String),
    /// The database is temporarily refusing this class of request —
    /// degraded (read-only) after a storage fault, or faulted entirely.
    /// `retry_after_ms` hints when a client might probe again; retrying
    /// sooner cannot help, so the retry policy treats this as
    /// non-retriable.
    Unavailable {
        /// Suggested wait before the next attempt, in milliseconds.
        retry_after_ms: u32,
        /// Human-readable cause (e.g. "degraded: wal append failed").
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ConstraintSyntax(m) => write!(f, "security constraint syntax: {m}"),
            CoreError::Query(m) => write!(f, "query error: {m}"),
            CoreError::EmptyDocument => write!(f, "document has no root element"),
            CoreError::Opess(m) => write!(f, "OPESS error: {m}"),
            CoreError::Block(m) => write!(f, "block decryption error: {m}"),
            CoreError::Response(m) => write!(f, "malformed server response: {m}"),
            CoreError::Persist(m) => write!(f, "persistence error: {m}"),
            CoreError::Codec(m) => write!(f, "wire codec error: {m}"),
            CoreError::Transport(m) => write!(f, "transport error: {m}"),
            CoreError::Tenant(m) => write!(f, "tenant error: {m}"),
            CoreError::Unavailable {
                retry_after_ms,
                reason,
            } => write!(f, "unavailable (retry after {retry_after_ms}ms): {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}
