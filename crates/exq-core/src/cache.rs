//! Server-side caching with generation-based invalidation.
//!
//! Deterministic tag and OPESS encryption means identical client queries
//! translate to byte-identical [`ServerQuery`]s, so the server hot path is
//! memoizable: a response cache keyed on the encrypted query's canonical
//! encoding, and a cross-query value-range cache keyed on
//! `(attr, lo, hi)`. Both are guarded by a monotonically increasing
//! *generation*: every mutation path bumps it, and a cached entry is only
//! served when its stored generation matches the server's current one —
//! stale entries die lazily, without scanning.
//!
//! Concurrency: queries run under the serve loop's `RwLock` **read** guard,
//! so caches use interior mutability — each cache is split into shards,
//! each behind its own `Mutex`, so concurrent readers rarely contend on the
//! same lock. Mutations hold the write lock, so a query never interleaves
//! with a generation bump; tagging entries with the generation captured at
//! query start is therefore race-free.
//!
//! Security: the caches store only data the server already derives from
//! the ciphertext it hosts (encoded encrypted queries, pruned skeletons,
//! sealed block references, block-id sets). An adversary with server access
//! learns nothing from the cache it could not recompute — no new leakage.
//!
//! [`ServerQuery`]: crate::wire::ServerQuery

use crate::telemetry;
use crate::wire::ServerResponse;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment knob for the total cache capacity (entries per cache).
/// `0` disables caching entirely; unset or unparsable falls back to
/// [`DEFAULT_CACHE_ENTRIES`]. The CLI's `--cache-entries` overrides it.
pub const CACHE_ENV: &str = "EXQ_CACHE";

/// Default total entries per cache layer when neither the environment nor
/// the CLI says otherwise.
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// Shard count: enough to keep concurrent readers off each other's locks,
/// small enough that per-shard capacity stays meaningful.
const SHARDS: usize = 8;

/// Resolves the cache capacity: explicit value if given, else `EXQ_CACHE`,
/// else the default. `0` means caching is off.
pub fn resolve_cache_entries(explicit: Option<usize>) -> usize {
    explicit.unwrap_or_else(default_cache_entries)
}

/// The `EXQ_CACHE` environment value, or the default.
pub fn default_cache_entries() -> usize {
    std::env::var(CACHE_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_CACHE_ENTRIES)
}

/// Point-in-time cache counters, reported over the wire (`CacheStats`) and
/// in `exq serve` logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Current server generation (bumps on every mutation).
    pub generation: u64,
    /// Configured capacity per cache layer (0 = caching off).
    pub capacity: u64,
    pub response_hits: u64,
    pub response_misses: u64,
    pub response_evictions: u64,
    pub response_entries: u64,
    pub range_hits: u64,
    pub range_misses: u64,
    pub range_evictions: u64,
    pub range_entries: u64,
}

impl CacheStatsSnapshot {
    /// Response-cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn response_hit_rate(&self) -> f64 {
        let total = self.response_hits + self.response_misses;
        if total == 0 {
            0.0
        } else {
            self.response_hits as f64 / total as f64
        }
    }

    /// Range-cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn range_hit_rate(&self) -> f64 {
        let total = self.range_hits + self.range_misses;
        if total == 0 {
            0.0
        } else {
            self.range_hits as f64 / total as f64
        }
    }
}

struct Entry<V> {
    value: V,
    generation: u64,
    /// Last-touch tick for LRU eviction (per shard).
    stamp: u64,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    tick: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            tick: 0,
        }
    }
}

/// Process-wide registry mirrors of one cache layer's counters. The
/// unlabeled `exq_cache_<layer>_*` names aggregate across every instance
/// the process ever created; when a db label is attached (multi-tenant
/// serving), a second `{db="<name>"}`-labeled series is kept and becomes
/// the *authoritative* source for snapshots — so the `CacheStats` wire
/// message and the `MetricsReq` registry scrape literally read the same
/// atomics and cannot drift, and counts survive `set_capacity`.
struct CacheMetrics {
    hits: Arc<telemetry::Counter>,
    misses: Arc<telemetry::Counter>,
    evictions: Arc<telemetry::Counter>,
    db: Option<DbCacheMetrics>,
}

/// The per-db labeled counter handles of one cache layer.
struct DbCacheMetrics {
    hits: Arc<telemetry::Counter>,
    misses: Arc<telemetry::Counter>,
    evictions: Arc<telemetry::Counter>,
}

impl CacheMetrics {
    fn new(layer: &str) -> Self {
        CacheMetrics {
            hits: telemetry::counter(&format!("exq_cache_{layer}_hits_total")),
            misses: telemetry::counter(&format!("exq_cache_{layer}_misses_total")),
            evictions: telemetry::counter(&format!("exq_cache_{layer}_evictions_total")),
            db: None,
        }
    }

    fn labeled(layer: &str, db: &str) -> Self {
        let mut m = Self::new(layer);
        m.db = Some(DbCacheMetrics {
            hits: telemetry::counter(&format!("exq_cache_{layer}_hits_total{{db=\"{db}\"}}")),
            misses: telemetry::counter(&format!("exq_cache_{layer}_misses_total{{db=\"{db}\"}}")),
            evictions: telemetry::counter(&format!(
                "exq_cache_{layer}_evictions_total{{db=\"{db}\"}}"
            )),
        });
        m
    }
}

/// A sharded, generation-tagged LRU cache usable through `&self`.
pub struct GenCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    /// Per-shard capacity (total capacity split over [`SHARDS`]).
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Set for the server's named layers, `None` for ad-hoc caches (tests).
    metrics: Option<CacheMetrics>,
}

impl<K: Hash + Eq + Clone, V: Clone> GenCache<K, V> {
    /// `capacity` is the total entry budget across all shards; `0` turns
    /// the cache off (gets always miss silently, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        GenCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            metrics: None,
        }
    }

    /// Like [`GenCache::new`], but also mirrors hit/miss/eviction counts
    /// into the global telemetry registry as
    /// `exq_cache_<layer>_{hits,misses,evictions}_total`.
    pub fn with_metrics(capacity: usize, layer: &str) -> Self {
        let mut c = Self::new(capacity);
        c.metrics = Some(CacheMetrics::new(layer));
        c
    }

    /// Like [`GenCache::with_metrics`], but additionally keeps a
    /// `{db="<name>"}`-labeled registry series that is the authoritative
    /// source for [`GenCache::counters`] — per-tenant counts that survive
    /// capacity changes and always agree with the metrics scrape.
    fn with_db_metrics(capacity: usize, layer: &str, db: &str) -> Self {
        let mut c = Self::new(capacity);
        c.metrics = Some(CacheMetrics::labeled(layer, db));
        c
    }

    pub fn enabled(&self) -> bool {
        self.per_shard > 0
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached value if present *and* tagged with the current
    /// generation; a stale entry is removed on sight.
    pub fn get(&self, key: &K, generation: u64) -> Option<V> {
        if !self.enabled() {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(e) if e.generation == generation => {
                e.stamp = tick;
                let v = e.value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                    if let Some(db) = &m.db {
                        db.hits.inc();
                    }
                }
                Some(v)
            }
            Some(_) => {
                shard.map.remove(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                    if let Some(db) = &m.db {
                        db.misses.inc();
                    }
                }
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                    if let Some(db) = &m.db {
                        db.misses.inc();
                    }
                }
                None
            }
        }
    }

    /// Whether `key` is present under the current generation, without
    /// promoting the entry in LRU order or touching hit/miss counters.
    /// Used by the serve loop's admission control, where a probe must not
    /// distort the cache statistics of the query it is deciding about.
    pub fn peek(&self, key: &K, generation: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let shard = self.shard(key).lock().expect("cache shard poisoned");
        matches!(shard.map.get(key), Some(e) if e.generation == generation)
    }

    /// Inserts a value tagged with `generation`, evicting the
    /// least-recently-used entry of the target shard when full.
    pub fn insert(&self, key: K, value: V, generation: u64) {
        if !self.enabled() {
            return;
        }
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let stamp = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard {
            // O(shard) scan — shards are small by construction, and
            // eviction only triggers on inserts into a full shard.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                shard.map.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                    if let Some(db) = &m.db {
                        db.evictions.inc();
                    }
                }
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                generation,
                stamp,
            },
        );
    }

    /// Live entries across all shards (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn counters(&self) -> (u64, u64, u64) {
        // Db-labeled layers report their registry series — the same atomics
        // the `MetricsReq` scrape renders, so the two paths cannot drift.
        if let Some(db) = self.metrics.as_ref().and_then(|m| m.db.as_ref()) {
            return (db.hits.get(), db.misses.get(), db.evictions.get());
        }
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// The server's cache layers plus the shared generation counter.
///
/// Runtime-only state: not persisted, and `Clone` yields a *fresh empty*
/// set of caches with the same capacity (cloning a server must never share
/// or copy cache contents — the clone revalidates from its own data).
pub struct ServerCaches {
    generation: AtomicU64,
    capacity: usize,
    /// Tenant name whose labeled registry series back these layers, if any.
    db_label: Option<String>,
    /// Encoded `ServerQuery` bytes → full response.
    pub responses: GenCache<Vec<u8>, Arc<ServerResponse>>,
    /// `(attr, lo, hi)` → resolved block-id set.
    pub ranges: GenCache<(String, u128, u128), Arc<HashSet<u32>>>,
}

impl ServerCaches {
    pub fn new(capacity: usize) -> Self {
        ServerCaches {
            generation: AtomicU64::new(0),
            capacity,
            db_label: None,
            responses: GenCache::with_metrics(capacity, "response"),
            ranges: GenCache::with_metrics(capacity, "range"),
        }
    }

    fn make_layer<K: Hash + Eq + Clone, V: Clone>(
        capacity: usize,
        layer: &str,
        db_label: Option<&str>,
    ) -> GenCache<K, V> {
        match db_label {
            Some(db) => GenCache::with_db_metrics(capacity, layer, db),
            None => GenCache::with_metrics(capacity, layer),
        }
    }

    /// Attaches a tenant label: both layers are rebuilt backed by
    /// `{db="<name>"}`-labeled registry counters, making per-db cache stats
    /// scrapeable and snapshot counters registry-authoritative.
    pub fn set_db_label(&mut self, db: &str) {
        self.db_label = Some(db.to_owned());
        self.responses = Self::make_layer(self.capacity, "response", self.db_label.as_deref());
        self.ranges = Self::make_layer(self.capacity, "range", self.db_label.as_deref());
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The current generation. Captured at query start; entries written
    /// under an older generation are never served.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Invalidates every cached entry by advancing the generation. Called
    /// by every mutation path (insert, delete, universe rebuild).
    pub fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// Replaces both cache layers with fresh ones of the new capacity
    /// (local counters reset, generation and db label preserved; a
    /// db-labeled instance keeps counting in its registry series).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.responses = Self::make_layer(capacity, "response", self.db_label.as_deref());
        self.ranges = Self::make_layer(capacity, "range", self.db_label.as_deref());
    }

    pub fn snapshot(&self) -> CacheStatsSnapshot {
        let (rh, rm, re) = self.responses.counters();
        let (gh, gm, ge) = self.ranges.counters();
        CacheStatsSnapshot {
            generation: self.generation(),
            capacity: self.capacity as u64,
            response_hits: rh,
            response_misses: rm,
            response_evictions: re,
            response_entries: self.responses.len() as u64,
            range_hits: gh,
            range_misses: gm,
            range_evictions: ge,
            range_entries: self.ranges.len() as u64,
        }
    }
}

impl Default for ServerCaches {
    fn default() -> Self {
        ServerCaches::new(default_cache_entries())
    }
}

impl Clone for ServerCaches {
    fn clone(&self) -> Self {
        // The clone is a *new instance*: it gets fresh unlabeled layers
        // even if the original was db-labeled, so two instances never share
        // one tenant's registry series.
        let fresh = ServerCaches::new(self.capacity);
        fresh.generation.store(self.generation(), Ordering::Release);
        fresh
    }
}

impl std::fmt::Debug for ServerCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCaches")
            .field("stats", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> GenCache<u32, String> {
        GenCache::new(cap)
    }

    #[test]
    fn hit_after_insert_same_generation() {
        let c = cache(16);
        c.insert(1, "a".into(), 0);
        assert_eq!(c.get(&1, 0), Some("a".into()));
        let (h, m, _) = c.counters();
        assert_eq!((h, m), (1, 0));
    }

    #[test]
    fn stale_generation_misses_and_drops() {
        let c = cache(16);
        c.insert(1, "a".into(), 0);
        assert_eq!(c.get(&1, 1), None, "bumped generation must miss");
        assert_eq!(c.len(), 0, "stale entry must be removed on sight");
        assert_eq!(c.get(&1, 0), None, "entry is gone even for the old gen");
    }

    #[test]
    fn zero_capacity_disables() {
        let c = cache(0);
        assert!(!c.enabled());
        c.insert(1, "a".into(), 0);
        assert_eq!(c.get(&1, 0), None);
        let (h, m, e) = c.counters();
        assert_eq!((h, m, e), (0, 0, 0), "disabled cache must not count");
    }

    #[test]
    fn lru_eviction_in_shard() {
        // Capacity 8 → per-shard 1: any two keys in the same shard evict.
        let c = cache(8);
        for k in 0..64u32 {
            c.insert(k, format!("{k}"), 0);
        }
        let total = c.len();
        assert!(total <= 8, "capacity exceeded: {total}");
        let (_, _, ev) = c.counters();
        assert_eq!(ev as usize, 64 - total);
    }

    #[test]
    fn lru_prefers_recently_touched() {
        // One shard of capacity 1: insert a, touch it, insert b (same
        // shard? not guaranteed) — instead verify against a single-shard
        // equivalent by using many inserts of two alternating keys.
        let c = cache(8);
        c.insert(1, "a".into(), 0);
        assert_eq!(c.get(&1, 0), Some("a".into()));
        // Re-inserting the same key must not evict anything.
        c.insert(1, "a2".into(), 0);
        let (_, _, ev) = c.counters();
        assert_eq!(ev, 0);
        assert_eq!(c.get(&1, 0), Some("a2".into()));
    }

    #[test]
    fn snapshot_counters() {
        let mut s = ServerCaches::new(4);
        assert!(s.enabled());
        s.responses.insert(vec![1, 2], Arc::new(resp()), 0);
        assert!(s.responses.get(&vec![1, 2], 0).is_some());
        assert!(s.responses.get(&vec![9], 0).is_none());
        s.ranges
            .insert(("age".into(), 1, 2), Arc::new(HashSet::new()), 0);
        let snap = s.snapshot();
        assert_eq!(snap.response_hits, 1);
        assert_eq!(snap.response_misses, 1);
        assert_eq!(snap.response_entries, 1);
        assert_eq!(snap.range_entries, 1);
        assert_eq!(snap.capacity, 4);
        assert!((snap.response_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(snap.range_hit_rate(), 0.0);

        s.bump_generation();
        assert_eq!(s.generation(), 1);
        s.set_capacity(0);
        assert!(!s.enabled());
        let snap = s.snapshot();
        assert_eq!(snap.generation, 1, "set_capacity keeps the generation");
        assert_eq!(snap.response_hits, 0, "set_capacity resets counters");
    }

    #[test]
    fn db_labeled_counters_are_registry_backed() {
        let mut s = ServerCaches::new(4);
        s.set_db_label("cachetest-db");
        s.responses.insert(vec![1], Arc::new(resp()), 0);
        assert!(s.responses.get(&vec![1], 0).is_some());
        assert!(s.responses.get(&vec![2], 0).is_none());
        let snap = s.snapshot();
        assert_eq!((snap.response_hits, snap.response_misses), (1, 1));
        // The snapshot and the metrics scrape read the same atomics.
        let text = telemetry::render();
        assert!(
            text.contains("exq_cache_response_hits_total{db=\"cachetest-db\"} 1"),
            "labeled series missing from scrape: {text}"
        );
        // Unlike unlabeled instances, labeled counters survive capacity
        // changes — the registry series is the source of truth.
        s.set_capacity(8);
        let snap = s.snapshot();
        assert_eq!(snap.response_hits, 1);
        assert_eq!(snap.response_misses, 1);
    }

    #[test]
    fn clone_is_fresh_but_same_config() {
        let s = ServerCaches::new(4);
        s.responses.insert(vec![1], Arc::new(resp()), 0);
        s.bump_generation();
        let c = s.clone();
        assert_eq!(c.capacity(), 4);
        assert_eq!(c.generation(), 1);
        assert!(c.responses.is_empty(), "clone must not share entries");
    }

    fn resp() -> ServerResponse {
        ServerResponse {
            pruned_xml: String::new(),
            blocks: Vec::new(),
            translate_time: std::time::Duration::ZERO,
            process_time: std::time::Duration::ZERO,
            served_from_cache: false,
            spans: Vec::new(),
        }
    }
}
