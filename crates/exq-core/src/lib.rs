//! The paper's contribution: secure query evaluation over encrypted XML.
//!
//! This crate wires the substrates (`exq-xml`, `exq-xpath`, `exq-crypto`,
//! `exq-index`) into the system of Wang & Lakshmanan (VLDB 2006):
//!
//! * [`constraints`] — security constraints (§3.2): node-type (`//insurance`)
//!   and association (`//patient:(/pname, /SSN)`) constraints;
//! * [`cover`] — the constraint graph and weighted vertex-cover solvers
//!   behind optimal/approximate secure encryption schemes (§4.2; exact
//!   optimal selection is NP-hard, Theorem 4.2);
//! * [`scheme`] — encryption schemes (§3.1, §4.1): which subtrees to encrypt
//!   and which get decoys, plus the experimental Top/Sub/App/Opt variants;
//! * [`encrypt`] — the data-owner side: block sealing, decoy insertion, and
//!   construction of the server metadata (DSI index table, encryption block
//!   table, OPESS value indexes) (§4.1, §5);
//! * [`server`] — the untrusted server: structural joins over DSI intervals,
//!   B-tree range lookups, and pruned-response assembly (§6.2);
//! * [`client`] — query translation (§6.1), decryption, decoy removal, and
//!   post-processing (§6.4);
//! * [`system`] — the end-to-end hosted-database wrapper with per-phase
//!   timing and a simulated client/server link (Figure 1), plus the naive
//!   ship-everything baseline of §7.3;
//! * [`analysis`] — the security analysis: exact candidate-database counts
//!   (Theorems 4.1/5.1/5.2), frequency- and size-based attack simulators
//!   (§3.3), and the query-answering belief tracker (Theorem 6.1);
//! * [`telemetry`] — the observability layer: a global metrics registry,
//!   query-scoped trace spans stitched across the wire, per-query resource
//!   profiles, and Prometheus-style / JSON-lines exporters;
//! * [`flight`] — the always-on flight recorder: a lock-free ring of recent
//!   operational events (admissions, sheds, checkpoints, slow fsyncs)
//!   dumped over the wire (`FlightReq`) or to stderr on panic;
//! * [`fault`] / [`retry`] — the fault-tolerance layer: seeded fault
//!   injection (message-level wrapper and a TCP chaos proxy) and safe
//!   client-side retry with reconnect, backoff + jitter, and at-most-once
//!   mutation replay;
//! * [`store`] — the out-of-core storage engine: sealed blocks and DSI
//!   posting lists in a paged file behind a pinning buffer pool, a
//!   write-ahead log for O(update) mutations, and a background
//!   checkpointer that folds the log into pages off the serving path.

pub mod aggregate;
pub mod analysis;
pub mod cache;
pub mod client;
pub mod codec;
pub mod constraints;
pub mod cover;
pub mod encrypt;
pub mod error;
pub mod evloop;
pub mod fault;
pub mod flight;
pub mod persist;
pub mod pool;
pub mod retry;
pub mod scheme;
pub mod server;
pub mod store;
pub mod system;
pub mod telemetry;
pub mod tenant;
pub mod transport;
pub mod update;
pub mod wire;

pub use client::Client;
pub use codec::{CodecError, Message, WireCodec};
pub use constraints::SecurityConstraint;
pub use error::CoreError;
pub use evloop::serve_event;
pub use fault::{ChaosProxy, FaultConfig, FaultTransport, ProxyFaults};
pub use retry::{Retry, RetryConfig};
pub use scheme::{EncryptionScheme, SchemeKind};
pub use server::Server;
pub use system::{HostedDatabase, OutsourceConfig, Outsourcer, QueryOutcome};
pub use tenant::{Tenant, TenantRegistry, DEFAULT_DB};
pub use transport::{
    serve, serve_multi, InProcess, Pipeline, Reconnect, ServeConfig, ServeHandle, TcpTransport,
    Transport,
};
